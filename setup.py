"""Packaging for the LDP range-query reproduction.

The only hard runtime dependency is numpy.  The numba JIT kernel backend
(:mod:`repro.core.kernels.numba_backend`) is deliberately an *extra*
(``pip install .[accel]``): every code path falls back to the numpy
reference kernels when numba is absent, so the base install stays light.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Parse the version instead of importing the package: setup.py must work
# in build front-ends that have not installed numpy yet.
_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="ldp-range-queries",
    version=VERSION,
    description=(
        "Answering range queries under local differential privacy: "
        "hierarchical and wavelet (Haar) decompositions over LDP "
        "frequency oracles, with a streaming aggregation service"
    ),
    long_description=(Path(__file__).parent / "ARCHITECTURE.md").read_text(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        # Opt-in JIT kernel backend; selected via REPRO_KERNEL_BACKEND=numba
        # or kernel_backend="numba" -- never required for correctness.
        "accel": ["numba>=0.57"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro-cli=repro.cli:main"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Programming Language :: Python :: 3.13",
        "Topic :: Scientific/Engineering",
    ],
)
