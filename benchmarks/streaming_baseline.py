#!/usr/bin/env python3
"""Distill the streaming benchmarks into a committed baseline document.

Runs ``bench_streaming.py`` under pytest-benchmark in a subprocess (so the
kernel backend can be pinned through ``REPRO_KERNEL_BACKEND`` without
mutating this interpreter) and distills the raw benchmark JSON into the
compact, diff-able document committed as ``BENCH_streaming.json``:

* ``ingest``: server-side fold throughput (reports/sec) per protocol;
* ``encode``: client-side privatization throughput (reports/sec) per
  protocol, timed apart from ingest;
* ``merge_ms``: shard-merge latency by shard count;
* ``kernel_backend``: which backend produced the numbers -- the committed
  baseline is always the ``numpy`` reference backend, and the CI accel job
  re-runs with ``--backend numba`` to measure the JIT speedup on the same
  machine.

Run with:  python benchmarks/streaming_baseline.py [--backend numpy|numba]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = Path(__file__).resolve().parent / "bench_streaming.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_streaming.json"

#: Maps ``test_bench_<kind>_<key>`` suffixes to the document keys.
_PROTOCOL_KEYS = {
    "flat_oue": "flat-oue",
    "hh_oue": "hh-oue",
    "haar": "haar",
    "flat_olh": "flat-olh",
    "grid2d": "grid2d",
}


def run_benchmarks(backend: str | None, pytest_args: list[str]) -> dict:
    """Run bench_streaming.py in a subprocess and return the raw JSON."""
    env = dict(os.environ)
    if backend is not None:
        env["REPRO_KERNEL_BACKEND"] = backend
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_FILE),
            "--benchmark-only",
            "--benchmark-json",
            str(raw_path),
            "-q",
            *pytest_args,
        ]
        completed = subprocess.run(command, env=env, cwd=REPO_ROOT)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {completed.returncode})")
        return json.loads(raw_path.read_text())


def distill(raw: dict) -> dict:
    """Reduce pytest-benchmark output to the committed baseline schema."""
    ingest: dict = {}
    encode: dict = {}
    merge_ms: dict = {}
    backends = set()
    for entry in raw.get("benchmarks", []):
        name = entry["name"]
        extra = entry.get("extra_info", {})
        if "kernel_backend" in extra:
            backends.add(extra["kernel_backend"])
        if name.startswith("test_bench_ingest_"):
            key = _PROTOCOL_KEYS[name[len("test_bench_ingest_"):]]
            ingest[key] = extra["reports_per_sec"]
        elif name.startswith("test_bench_encode_"):
            key = _PROTOCOL_KEYS[name[len("test_bench_encode_"):]]
            encode[key] = extra["encode_reports_per_sec"]
        elif name.startswith("test_bench_merge_vs_shard_count"):
            merge_ms[str(extra["n_shards"])] = round(
                entry["stats"]["mean"] * 1e3, 3
            )
    if len(backends) > 1:
        raise SystemExit(f"benchmarks ran under mixed backends: {sorted(backends)}")
    from repro import __version__

    return {
        "schema": 2,
        "note": (
            "ingest/encode measured with the cross-epoch OLH hash cache "
            "disabled (bench_streaming pins it off so repeated rounds "
            "exercise the decode kernels, not the cache)"
        ),
        "version": __version__,
        "python": platform.python_version(),
        "kernel_backend": backends.pop() if backends else "numpy",
        "ingest": ingest,
        "encode": encode,
        "merge_ms": merge_ms,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel backend to pin via REPRO_KERNEL_BACKEND (default: inherit)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (e.g. -k 'not merge')",
    )
    args = parser.parse_args()
    document = distill(run_benchmarks(args.backend, args.pytest_args))
    args.output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    for kind in ("ingest", "encode"):
        for key, rate in sorted(document[kind].items()):
            print(f"{kind:>6} {key:<10} {rate:>12,.0f} reports/sec")
    print(f"backend={document['kernel_backend']}  wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
