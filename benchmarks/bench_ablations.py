"""Benchmarks for the three design-choice ablations listed in DESIGN.md."""

from conftest import run_once

from repro.experiments.ablations import (
    format_ablation,
    run_consistency_ablation,
    run_prefix_vs_range,
    run_sampling_vs_splitting,
)


def test_ablation_sampling_vs_splitting(benchmark, bench_config):
    """A1: the paper's level sampling vs centralized-style budget splitting."""
    rows = run_once(benchmark, run_sampling_vs_splitting, bench_config)
    print()
    print(format_ablation(rows, "Ablation A1 -- level sampling vs budget splitting"))
    for domain in {row.domain_size for row in rows}:
        sample = next(r for r in rows if r.domain_size == domain and r.label.endswith("sample"))
        split = next(r for r in rows if r.domain_size == domain and r.label.endswith("split"))
        assert sample.mse < split.mse


def test_ablation_consistency(benchmark, bench_config):
    """A2: constrained inference on/off across branching factors."""
    rows = run_once(benchmark, run_consistency_ablation, bench_config)
    print()
    print(format_ablation(rows, "Ablation A2 -- constrained inference on/off"))
    # For each (domain, B) pair the CI variant should not be much worse.
    by_key = {(row.domain_size, row.label): row.mse for row in rows}
    for (domain, label), mse in by_key.items():
        if "CI" in label:
            raw_label = label.replace("CI", "", 1)
            if (domain, raw_label) in by_key:
                assert mse < by_key[(domain, raw_label)] * 1.2


def test_ablation_prefix_vs_range(benchmark, bench_config):
    """A3: prefix queries should not be harder than arbitrary ranges."""
    rows = run_once(benchmark, run_prefix_vs_range, bench_config)
    print()
    print(format_ablation(rows, "Ablation A3 -- prefix vs arbitrary ranges"))
    by_label = {(row.domain_size, row.label): row.mse for row in rows}
    for (domain, label), mse in by_label.items():
        if label.endswith("-prefix"):
            range_label = label.replace("-prefix", "-range")
            assert mse < by_label[(domain, range_label)] * 1.8
