"""Benchmark + regeneration of Figure 9 (decile / quantile queries)."""

from conftest import run_once

from repro.experiments.figure9 import format_figure9, max_quantile_error, run_figure9


def test_figure9(benchmark, bench_config):
    """Regenerate the decile value-error and quantile-error series."""
    cells = run_once(benchmark, run_figure9, bench_config)
    print()
    print(format_figure9(cells))
    assert len(cells) == len({(c.center_fraction, c.method, c.phi) for c in cells})
    # Headline claim: quantile error stays small even where value error spikes.
    assert max_quantile_error(cells) < 0.25
