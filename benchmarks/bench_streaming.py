"""Benchmarks for the streaming client/server aggregation path.

These establish the baseline for the sharded execution model introduced
with the client/server API: how fast servers fold privatized reports into
their sufficient-statistics accumulators (ingest throughput, reports/sec)
and what merging costs as the shard count grows.  Future PRs optimizing
the hot path (batched ingestion, accumulator layouts, parallel shards)
should compare against these numbers.

Run with:  pytest benchmarks/bench_streaming.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.core.session import AccumulatorState
from repro.data import cauchy_population
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.multidim import HierarchicalGrid2D
from repro.wavelet import HaarHRR

DOMAIN = 1024
# OLH decodes supports over the whole domain per report batch (O(N * D));
# a smaller domain keeps its benchmark rounds short without changing what
# the kernel backends have to prove.
OLH_DOMAIN = 256
N_USERS = 50_000
EPSILON = 1.1
CLIENT_BATCH = 2_500


@pytest.fixture(scope="module", autouse=True)
def _cache_free_ingest():
    """Disable the cross-epoch OLH hash cache for every benchmark here.

    pytest-benchmark replays the same pre-encoded batches across rounds;
    with the cache on, every round after the first would be served from
    cached support matrices and the ingest numbers would measure the
    cache, not the decode kernels the accel-speedup gate compares.
    """
    from repro.core.kernels.hash_cache import (
        configure_hash_cache,
        hash_cache_stats,
    )

    previous = hash_cache_stats()["max_bytes"]
    configure_hash_cache(0)
    yield
    configure_hash_cache(previous)


@pytest.fixture(scope="module")
def population():
    return cauchy_population(DOMAIN, N_USERS, rng=0)


def _encoded_stream(protocol, items):
    client = protocol.client()
    rng = np.random.default_rng(1)
    return client.encode_batches(np.asarray(items), CLIENT_BATCH, rng=rng)


def _bench_ingest(benchmark, protocol, items):
    reports = _encoded_stream(protocol, items)
    backend = protocol.server().kernel_backend

    def ingest_all():
        return protocol.server().ingest(reports)

    server = benchmark(ingest_all)
    assert server.n_reports == N_USERS
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["reports_per_sec"] = round(N_USERS / mean_seconds)
    benchmark.extra_info["kernel_backend"] = backend
    print(
        f"\n    {protocol.name}: ingest {N_USERS / mean_seconds:,.0f} reports/sec "
        f"({len(reports)} batches of {CLIENT_BATCH}, backend={backend})"
    )


def _bench_encode(benchmark, protocol, items):
    """Client-side privatization throughput, timed apart from ingest."""
    items = np.asarray(items)
    client = protocol.client()
    backend = client.kernel_backend

    def encode_all():
        return client.encode_batches(items, CLIENT_BATCH, rng=np.random.default_rng(1))

    reports = benchmark(encode_all)
    assert len(reports) == -(-len(items) // CLIENT_BATCH)
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["encode_reports_per_sec"] = round(N_USERS / mean_seconds)
    benchmark.extra_info["kernel_backend"] = backend
    print(
        f"\n    {protocol.name}: encode {N_USERS / mean_seconds:,.0f} reports/sec "
        f"(batches of {CLIENT_BATCH}, backend={backend})"
    )


def test_bench_ingest_flat_oue(benchmark, population):
    """Flat OUE ingestion: bit-matrix column sums per batch."""
    _bench_ingest(benchmark, FlatRangeQuery(DOMAIN, EPSILON, oracle="oue"), population.items)


def test_bench_ingest_hh_oue(benchmark, population):
    """TreeOUE ingestion: per-level accumulators with level bookkeeping."""
    _bench_ingest(
        benchmark,
        HierarchicalHistogram(DOMAIN, EPSILON, branching=4, oracle="oue"),
        population.items,
    )


def test_bench_ingest_haar(benchmark, population):
    """HaarHRR ingestion: per-height signed Hadamard sums."""
    _bench_ingest(benchmark, HaarHRR(DOMAIN, EPSILON), population.items)


def test_bench_ingest_flat_olh(benchmark, population):
    """Flat OLH ingestion: per-report hash-support decode over the domain."""
    _bench_ingest(
        benchmark,
        FlatRangeQuery(OLH_DOMAIN, EPSILON, oracle="olh"),
        population.items % OLH_DOMAIN,
    )


def test_bench_ingest_grid2d(benchmark, population):
    """Grid2D ingestion: per-level-pair accumulators on the generic engine."""
    items_y = np.random.default_rng(2).integers(0, 64, size=N_USERS)
    pairs = np.stack([population.items % 64, items_y], axis=1)
    _bench_ingest(
        benchmark, HierarchicalGrid2D(64, 64, EPSILON, oracle="hrr"), pairs
    )


def test_bench_encode_flat_oue(benchmark, population):
    """Flat OUE encoding: perturbed one-hot matrix construction."""
    _bench_encode(
        benchmark, FlatRangeQuery(DOMAIN, EPSILON, oracle="oue"), population.items
    )


def test_bench_encode_hh_oue(benchmark, population):
    """TreeOUE encoding: level sampling plus per-level OUE matrices."""
    _bench_encode(
        benchmark,
        HierarchicalHistogram(DOMAIN, EPSILON, branching=4, oracle="oue"),
        population.items,
    )


def test_bench_encode_haar(benchmark, population):
    """HaarHRR encoding: signed Hadamard coefficient sampling per height."""
    _bench_encode(benchmark, HaarHRR(DOMAIN, EPSILON), population.items)


def test_bench_encode_flat_olh(benchmark, population):
    """Flat OLH encoding: fused universal hash + GRR perturbation."""
    _bench_encode(
        benchmark,
        FlatRangeQuery(OLH_DOMAIN, EPSILON, oracle="olh"),
        population.items % OLH_DOMAIN,
    )


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def test_bench_merge_vs_shard_count(benchmark, population, n_shards):
    """Merge cost as the shard count grows (fresh shard copies per round)."""
    protocol = HierarchicalHistogram(DOMAIN, EPSILON, branching=4, oracle="oue")
    reports = _encoded_stream(protocol, population.items)
    shards = [protocol.server() for _ in range(n_shards)]
    for index, report in enumerate(reports):
        shards[index % n_shards].ingest(report)
    blobs = [shard.to_bytes() for shard in shards]

    def fresh_states():
        return ([AccumulatorState.from_bytes(blob) for blob in blobs],), {}

    def merge_all(states):
        combined = protocol.server(state=states[0])
        for state in states[1:]:
            combined.merge(state)
        return combined

    combined = benchmark.pedantic(merge_all, setup=fresh_states, rounds=20)
    assert combined.n_reports == N_USERS
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["n_shards"] = n_shards
    print(f"\n    merge of {n_shards} shards: {mean_seconds * 1e3:.3f} ms")
