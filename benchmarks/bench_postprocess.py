#!/usr/bin/env python3
"""Post-processing pipeline costs: every processor timed at ``D = 2^16``.

The unified post-processing subsystem (:mod:`repro.core.postprocess`) runs
at estimate-assembly time, so its processors sit on the query-freshness
path of the service facade -- they must stay O(D * h) array kernels, never
per-node Python loops.  This script times each registry processor on
realistic estimate shapes:

* ``clip`` / ``norm_sub`` / ``monotone_cdf`` on a noisy frequency vector;
* the two-stage ``consistency`` pipeline on the per-level values of a
  B=4 domain tree over the same domain;
* ``haar_threshold`` on a full set of Haar detail coefficients;
* ``grid_consistency`` on the level-pair grids of a 2-D hierarchy whose
  finest grid has ``D`` cells;
* ``least_squares`` at its supported small-domain scale (it materialises
  the node-by-leaf design matrix, so it is deliberately *not* an O(D * h)
  kernel -- the two-stage pipeline is the large-domain equivalent).

Results are written to ``BENCH_postprocess.json`` at the repo root so the
performance trajectory is tracked in-tree.

Run with:  python benchmarks/bench_postprocess.py [--preset smoke|default]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro import __version__
from repro.core.postprocess import (
    FREQUENCIES,
    GRID,
    HAAR,
    TREE,
    PostContext,
    make_pipeline,
)
from repro.hierarchy.tree import DomainTree
from repro.wavelet.haar import HaarCoefficients

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_postprocess.json"

PRESETS = {
    "smoke": {"domain": 2**10, "grid_axis": 2**5, "repeats": 3},
    "default": {"domain": 2**16, "grid_axis": 2**8, "repeats": 5},
}

#: Domain used for the explicit least-squares processor (design-matrix
#: based, documented as small-domain only).
LEAST_SQUARES_DOMAIN = 2**8

NOISE_SCALE = 5e-4


def _time_best(func: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``func`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _noisy_frequencies(domain: int, rng: np.random.Generator) -> np.ndarray:
    true = rng.dirichlet(np.full(domain, 0.3))
    return true + rng.normal(0.0, NOISE_SCALE, size=domain)


def _noisy_tree_levels(domain: int, branching: int, rng: np.random.Generator):
    tree = DomainTree(domain, branching)
    counts = rng.integers(0, 100, size=domain).astype(np.float64)
    counts /= counts.sum()
    padded = np.zeros(tree.padded_size)
    padded[:domain] = counts
    levels = [
        tree.level_histogram(padded, level) + rng.normal(0.0, NOISE_SCALE, tree.level_size(level))
        for level in range(tree.num_levels)
    ]
    levels[0] = np.array([1.0])
    return tree, levels


def _noisy_haar(domain: int, rng: np.random.Generator) -> HaarCoefficients:
    height = int(np.log2(domain))
    details = [rng.normal(0.0, NOISE_SCALE, size=domain // 2**j) for j in range(1, height + 1)]
    return HaarCoefficients(smooth=1.0 / np.sqrt(domain), details=details)


def _noisy_grids(axis: int, rng: np.random.Generator):
    tree = DomainTree(axis, 2)
    return {
        (lx, ly): rng.normal(
            1.0 / (tree.level_size(lx) * tree.level_size(ly)),
            NOISE_SCALE,
            size=(tree.level_size(lx), tree.level_size(ly)),
        )
        for lx in range(1, tree.height + 1)
        for ly in range(1, tree.height + 1)
    }


def run(preset: str, output: Path) -> dict:
    config = PRESETS[preset]
    domain = config["domain"]
    grid_axis = config["grid_axis"]
    repeats = config["repeats"]
    rng = np.random.default_rng(7)

    print(f"timing post-processors at D={domain} (preset {preset!r})")
    results = []

    def record(processor: str, kind: str, size: int, func: Callable[[], object]) -> None:
        seconds = _time_best(func, repeats)
        results.append(
            {
                "processor": processor,
                "kind": kind,
                "domain_size": size,
                "ms": seconds * 1e3,
            }
        )
        print(f"  {processor:>16} ({kind:>11}, D={size:>6}): {seconds * 1e3:8.3f} ms")

    frequencies = _noisy_frequencies(domain, rng)
    freq_context = PostContext(kind=FREQUENCIES, n_users=domain * 10)
    for token in ("clip", "norm_sub", "monotone_cdf"):
        pipeline = make_pipeline(token)
        record(
            token,
            FREQUENCIES,
            domain,
            lambda pipeline=pipeline: pipeline.apply(frequencies, freq_context),
        )

    tree, levels = _noisy_tree_levels(domain, 4, rng)
    tree_context = PostContext(kind=TREE, branching=4, tree=tree)
    consistency = make_pipeline("consistency")
    record("consistency", TREE, domain, lambda: consistency.apply(levels, tree_context))

    small_tree, small_levels = _noisy_tree_levels(LEAST_SQUARES_DOMAIN, 4, rng)
    small_context = PostContext(kind=TREE, branching=4, tree=small_tree)
    least_squares = make_pipeline("least_squares")
    record(
        "least_squares",
        TREE,
        LEAST_SQUARES_DOMAIN,
        lambda: least_squares.apply(small_levels, small_context),
    )

    coefficients = _noisy_haar(domain, rng)
    haar_context = PostContext(
        kind=HAAR,
        noise_variances={j + 1: NOISE_SCALE**2 for j in range(coefficients.height)},
    )
    haar_threshold = make_pipeline("haar_threshold")
    record(
        "haar_threshold",
        HAAR,
        domain,
        lambda: haar_threshold.apply(coefficients, haar_context),
    )

    grids = _noisy_grids(grid_axis, rng)
    grid_context = PostContext(kind=GRID)
    grid_consistency = make_pipeline("grid_consistency")
    record(
        "grid_consistency",
        GRID,
        grid_axis * grid_axis,
        lambda: grid_consistency.apply(grids, grid_context),
    )

    document = {
        "version": __version__,
        "preset": preset,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "domain_size": domain,
            "grid_cells": grid_axis * grid_axis,
            "least_squares_domain": LEAST_SQUARES_DOMAIN,
            "repeats": repeats,
        },
        "results": results,
    }
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(args.preset, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
