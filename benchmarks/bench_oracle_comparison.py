"""Benchmark comparing every implemented frequency oracle on point queries.

Section 3.2 of the paper surveys the frequency-oracle landscape and keeps
OUE, OLH and HRR because they share the optimal variance
``4 e^eps / (N (e^eps - 1)^2)``.  This benchmark times each oracle's
aggregate-simulation path on the same workload and verifies the accuracy
ordering the survey claims: the three optimal oracles are comparable, and
SUE / histogram-encoding / GRR (on a large domain) are strictly worse.
"""

import numpy as np
import pytest

from repro.analysis.metrics import mean_squared_error
from repro.data import cauchy_population
from repro.frequency_oracles import ORACLE_REGISTRY, make_oracle

DOMAIN = 256
N_USERS = 100_000
EPSILON = 1.1
REPETITIONS = 5


@pytest.fixture(scope="module")
def population():
    return cauchy_population(DOMAIN, N_USERS, rng=0)


def _oracle_mse(name, population):
    counts = population.counts()
    truth = population.frequencies()
    oracle = make_oracle(name, DOMAIN, EPSILON)
    errors = []
    for seed in range(REPETITIONS):
        estimates = oracle.estimate_from_counts(counts, rng=np.random.default_rng(seed))
        errors.append(mean_squared_error(estimates, truth))
    return float(np.mean(errors))


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_bench_oracle_simulation(benchmark, population, name):
    """Time one aggregate simulation of each registered oracle."""
    counts = population.counts()
    oracle = make_oracle(name, DOMAIN, EPSILON)
    benchmark(oracle.estimate_from_counts, counts, rng=np.random.default_rng(1))


def test_oracle_accuracy_ordering(population):
    """The optimal-variance oracles beat SUE and GRR on a large domain."""
    mses = {name: _oracle_mse(name, population) for name in sorted(ORACLE_REGISTRY)}
    print()
    print("Point-query MSE by oracle (x1e6):")
    for name, value in sorted(mses.items(), key=lambda item: item[1]):
        print(f"  {name:>4}: {value * 1e6:8.3f}")
    best_of_optimal = min(mses["oue"], mses["olh"], mses["hrr"])
    worst_of_optimal = max(mses["oue"], mses["olh"], mses["hrr"])
    # The three optimal oracles are within a small factor of each other...
    assert worst_of_optimal / best_of_optimal < 3.0
    # ...and each suboptimal oracle is worse than the best optimal one.
    assert mses["sue"] > best_of_optimal
    assert mses["grr"] > best_of_optimal
