#!/usr/bin/env python3
"""Engine façade costs: checkpoint size, restore latency, windowed queries.

The epoch-aware :class:`repro.engine.Engine` adds a management layer on
top of the streaming accumulators; this script measures what that layer
costs so the service-shaped deployment can be sized:

* **checkpoint size** -- bytes of the v2 envelope as a function of the
  epoch count (each epoch is an independent accumulator shard);
* **checkpoint/restore latency** -- serialize and rebuild the full engine;
* **window materialisation** -- how fast ``engine.estimator(window=...)``
  lazily merges a window of epochs and finalizes (windows/sec);
* **windowed-query throughput** -- end-to-end queries/sec for a random
  range workload answered through a freshly materialised window.

Results are written to ``BENCH_engine.json`` at the repo root so the
performance trajectory is tracked in-tree.

Run with:  python benchmarks/bench_engine.py [--preset smoke|default]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro import __version__
from repro.engine import Engine, last
from repro.queries.workload import random_range_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

PRESETS = {
    "smoke": {
        "domain": 2**8,
        "epochs": 4,
        "users_per_epoch": 5_000,
        "workload": 2_000,
        "repeats": 3,
    },
    "default": {
        "domain": 2**10,
        "epochs": 8,
        "users_per_epoch": 25_000,
        "workload": 10_000,
        "repeats": 5,
    },
}

EPSILON = 1.1


def _time_best(func: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``func`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _build_engine(domain: int, epochs: int, users_per_epoch: int) -> Engine:
    engine = Engine.open("hh", domain_size=domain, epsilon=EPSILON, branching=4)
    rng = np.random.default_rng(0)
    for epoch in range(epochs):
        items = rng.integers(0, domain, size=users_per_epoch)
        engine.session(epoch=epoch).absorb(items, rng=rng)
    return engine


def run(preset: str, output: Path) -> dict:
    config = PRESETS[preset]
    domain = config["domain"]
    epochs = config["epochs"]
    users = config["users_per_epoch"]
    repeats = config["repeats"]

    print(
        f"building engine: D={domain}, {epochs} epochs x {users:,} users "
        f"(preset {preset!r})"
    )
    engine = _build_engine(domain, epochs, users)

    blob = engine.to_bytes()
    checkpoint_seconds = _time_best(engine.to_bytes, repeats)
    restore_seconds = _time_best(lambda: Engine.from_bytes(blob), repeats)
    restored = Engine.from_bytes(blob)
    assert restored.epochs == engine.epochs
    assert restored.n_reports() == epochs * users

    workload = random_range_workload(domain, config["workload"], np.random.default_rng(3))
    windows = {
        "all": "all",
        "last_2": last(2),
        f"last_{max(2, epochs // 2)}": last(max(2, epochs // 2)),
    }
    results = []
    for label, window in windows.items():
        materialize_seconds = _time_best(
            lambda window=window: engine.estimator(window), repeats
        )

        def query_window(window=window):
            estimator = engine.estimator(window)
            estimator.range_queries(workload)

        query_seconds = _time_best(query_window, repeats)
        results.append(
            {
                "window": label,
                "epochs_in_window": len(engine.epochs)
                if window == "all"
                else min(window.k, len(engine.epochs)),
                "materialize_ms": materialize_seconds * 1e3,
                "windows_per_sec": 1.0 / materialize_seconds,
                "queries_per_sec": len(workload) / query_seconds,
            }
        )
        print(
            f"  window {label:>8}: materialise {materialize_seconds * 1e3:8.2f} ms, "
            f"{len(workload) / query_seconds:12,.0f} queries/sec end-to-end"
        )

    document = {
        "version": __version__,
        "preset": preset,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "domain_size": domain,
            "epochs": epochs,
            "users_per_epoch": users,
            "epsilon": EPSILON,
            "workload_queries": config["workload"],
        },
        "checkpoint": {
            "bytes": len(blob),
            "bytes_per_epoch": len(blob) / epochs,
            "checkpoint_ms": checkpoint_seconds * 1e3,
            "restore_ms": restore_seconds * 1e3,
        },
        "results": results,
    }
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(
        f"checkpoint: {len(blob):,} bytes ({len(blob) / epochs:,.0f}/epoch), "
        f"write {checkpoint_seconds * 1e3:.2f} ms, restore "
        f"{restore_seconds * 1e3:.2f} ms"
    )
    print(f"wrote {output}")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(args.preset, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
