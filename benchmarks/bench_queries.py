#!/usr/bin/env python3
"""Query-answering throughput: batch kernels versus the per-query APIs.

For each protocol the paper studies this script builds one estimator per
domain size, answers random range workloads of growing size both ways --

* *per-query*: the original single-query APIs in a Python loop
  (``range_query`` / ``range_query_from_coefficients`` /
  ``quantile_query``), plus the seed's explicit per-query node
  decomposition for the inconsistent hierarchical estimator;
* *batch*: the vectorised kernels (``range_queries_batch``,
  ``range_queries_from_coefficients``, ``quantile_queries_batch``)

-- and reports queries/sec for both, writing the results to
``BENCH_queries.json`` at the repo root so the performance trajectory is
tracked in-tree from this PR onward.

Run with:  python benchmarks/bench_queries.py [--preset smoke|default]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro import __version__
from repro.experiments.runner import cauchy_counts
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.workload import random_range_workload
from repro.wavelet import HaarHRR

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_queries.json"

PRESETS = {
    # (domain sizes, workload sizes, per-query cap): the per-query loops are
    # measured on at most `cap` queries and extrapolated linearly, so the
    # large workload points stay affordable.
    "smoke": {"domains": [2**10], "workloads": [200, 2_000], "per_query_cap": 500},
    "default": {
        "domains": [2**10, 2**16],
        "workloads": [1_000, 10_000, 100_000],
        "per_query_cap": 4_000,
    },
}

EPSILON = 1.1
N_USERS = 200_000


def _time_best(func: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``func`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _build_estimators(domain_size: int, rng: np.random.Generator) -> Dict[str, object]:
    counts = cauchy_counts(domain_size, N_USERS, 0.4, rng=rng)
    methods = {
        "FlatOUE": FlatRangeQuery(domain_size, EPSILON, oracle="oue"),
        "TreeOUE": HierarchicalHistogram(
            domain_size, EPSILON, branching=4, oracle="oue", consistency=False
        ),
        "TreeOUECI": HierarchicalHistogram(
            domain_size, EPSILON, branching=4, oracle="oue", consistency=True
        ),
        "HaarHRR": HaarHRR(domain_size, EPSILON),
    }
    return {
        name: protocol.simulate_aggregate(counts, rng=rng)
        for name, protocol in methods.items()
    }


def _per_query_runner(method: str, estimator) -> Callable[[np.ndarray, np.ndarray], None]:
    """The honest per-query baseline for one method."""
    if method == "TreeOUE":
        # The seed path: per-query canonical decomposition into node
        # objects, summed in Python.
        tree = estimator.tree
        levels = [np.asarray(level) for level in estimator.level_fractions]

        def run(lefts: np.ndarray, rights: np.ndarray) -> None:
            for left, right in zip(lefts.tolist(), rights.tolist()):
                nodes = tree.decompose_range(left, right)
                sum(levels[node.level][node.index] for node in nodes)

        return run
    if method == "HaarHRR":

        def run(lefts: np.ndarray, rights: np.ndarray) -> None:
            for left, right in zip(lefts.tolist(), rights.tolist()):
                estimator.range_query_from_coefficients((left, right))

        return run

    def run(lefts: np.ndarray, rights: np.ndarray) -> None:
        for left, right in zip(lefts.tolist(), rights.tolist()):
            estimator.range_query((left, right))

    return run


def _batch_runner(method: str, estimator) -> Callable[[np.ndarray, np.ndarray], None]:
    if method == "HaarHRR":
        return lambda lefts, rights: estimator.range_queries_from_coefficients(
            lefts, rights
        )
    return lambda lefts, rights: estimator.range_queries_batch(lefts, rights)


def bench_ranges(preset: dict, rng: np.random.Generator) -> List[dict]:
    results: List[dict] = []
    for domain_size in preset["domains"]:
        estimators = _build_estimators(domain_size, rng)
        for num_queries in preset["workloads"]:
            workload = random_range_workload(domain_size, num_queries, rng)
            for method, estimator in estimators.items():
                batch = _batch_runner(method, estimator)
                batch(workload.lefts, workload.rights)  # warm caches once
                batch_seconds = _time_best(
                    lambda: batch(workload.lefts, workload.rights)
                )
                cap = min(num_queries, preset["per_query_cap"])
                per_query = _per_query_runner(method, estimator)
                per_query_seconds = _time_best(
                    lambda: per_query(workload.lefts[:cap], workload.rights[:cap]),
                    repeats=1,
                ) * (num_queries / max(cap, 1))
                results.append(
                    {
                        "kind": "range",
                        "method": method,
                        "domain_size": domain_size,
                        "num_queries": num_queries,
                        "per_query_qps": round(num_queries / per_query_seconds),
                        "batch_qps": round(num_queries / batch_seconds),
                        "speedup": round(per_query_seconds / batch_seconds, 1),
                    }
                )
                print(
                    f"  {method:>9}  D={domain_size:>6}  Q={num_queries:>7,}  "
                    f"per-query {num_queries / per_query_seconds:>12,.0f} q/s  "
                    f"batch {num_queries / batch_seconds:>14,.0f} q/s  "
                    f"({per_query_seconds / batch_seconds:,.0f}x)"
                )
    return results


def bench_quantiles(preset: dict, rng: np.random.Generator) -> List[dict]:
    results: List[dict] = []
    domain_size = max(preset["domains"])
    counts = cauchy_counts(domain_size, N_USERS, 0.4, rng=rng)
    estimator = HierarchicalHistogram(
        domain_size, EPSILON, branching=4, oracle="oue", consistency=True
    ).simulate_aggregate(counts, rng=rng)
    for num_queries in preset["workloads"]:
        phis = rng.random(num_queries)
        estimator.quantile_queries_batch(phis)  # warm the monotone-cdf cache
        batch_seconds = _time_best(lambda: estimator.quantile_queries_batch(phis))
        cap = min(num_queries, preset["per_query_cap"])

        def per_phi() -> None:
            for phi in phis[:cap].tolist():
                estimator.quantile_query(phi)

        per_query_seconds = _time_best(per_phi, repeats=1) * (num_queries / max(cap, 1))
        results.append(
            {
                "kind": "quantile",
                "method": "TreeOUECI",
                "domain_size": domain_size,
                "num_queries": num_queries,
                "per_query_qps": round(num_queries / per_query_seconds),
                "batch_qps": round(num_queries / batch_seconds),
                "speedup": round(per_query_seconds / batch_seconds, 1),
            }
        )
        print(
            f"  quantiles  D={domain_size:>6}  Q={num_queries:>7,}  "
            f"per-query {num_queries / per_query_seconds:>12,.0f} q/s  "
            f"batch {num_queries / batch_seconds:>14,.0f} q/s  "
            f"({per_query_seconds / batch_seconds:,.0f}x)"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    preset = PRESETS[args.preset]
    rng = np.random.default_rng(0)

    print(f"Batch query engine benchmark (preset={args.preset})")
    print("range workloads:")
    results = bench_ranges(preset, rng)
    print("quantile workloads:")
    results += bench_quantiles(preset, rng)

    payload = {
        "benchmark": "batch query engine (PR 2)",
        "preset": args.preset,
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "epsilon": EPSILON,
        "n_users": N_USERS,
        "notes": (
            "per_query_qps loops the original single-query APIs (the seed "
            "decomposition path for TreeOUE, the coefficient path for "
            "HaarHRR); batch_qps uses the vectorised kernels on the same "
            "workload. Per-query loops over large workloads are measured "
            "on a capped prefix and extrapolated linearly."
        ),
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
