"""Micro-benchmarks of the computational building blocks.

These quantify the per-component costs the paper discusses qualitatively:
the cheap user-side reports and decoding for HRR, the heavier OUE
aggregation, the O(N D) OLH decoding, the linear-time constrained inference
and the fast Haar / Walsh-Hadamard transforms.  Unlike the figure
benchmarks, these use several rounds so the timings are meaningful.
"""

import numpy as np
import pytest

from repro.data import cauchy_population
from repro.frequency_oracles import (
    HadamardRandomizedResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    fwht,
)
from repro.core.postprocess import tree_enforce_consistency
from repro.hierarchy import HierarchicalHistogram
from repro.hierarchy.tree import DomainTree
from repro.wavelet import HaarHRR
from repro.wavelet.haar import haar_transform

DOMAIN = 1024
N_USERS = 50_000


@pytest.fixture(scope="module")
def population():
    return cauchy_population(DOMAIN, N_USERS, rng=0)


def test_bench_fwht(benchmark):
    """Fast Walsh-Hadamard transform over a 2^14 vector."""
    vector = np.random.default_rng(0).normal(size=2**14)
    benchmark(fwht, vector)


def test_bench_haar_transform(benchmark):
    """Discrete Haar transform over a 2^14 vector."""
    vector = np.random.default_rng(0).random(size=2**14)
    benchmark(haar_transform, vector)


def test_bench_oue_simulation(benchmark, population):
    """OUE aggregate simulation (the paper's scalable evaluation path)."""
    oracle = OptimizedUnaryEncoding(DOMAIN, 1.1)
    counts = population.counts()
    benchmark(oracle.estimate_from_counts, counts, rng=np.random.default_rng(1))


def test_bench_hrr_per_user(benchmark, population):
    """HRR full per-user pipeline (privatize + aggregate) for 50k users."""
    oracle = HadamardRandomizedResponse(DOMAIN, 1.1)

    def run():
        return oracle.estimate(population.items, rng=np.random.default_rng(2))

    benchmark(run)


def test_bench_olh_decode_small_domain(benchmark):
    """OLH decoding cost, which is O(N D) -- the reason the paper drops it."""
    small = cauchy_population(256, 5_000, rng=3)
    oracle = OptimalLocalHashing(256, 1.1)
    reports = oracle.privatize(small.items, rng=np.random.default_rng(4))
    benchmark(oracle.aggregate, reports, 5_000)


def test_bench_consistency(benchmark):
    """Constrained inference over a fan-out-4 tree with 4^6 leaves."""
    rng = np.random.default_rng(5)
    levels = [rng.random(4**depth) for depth in range(7)]
    benchmark(tree_enforce_consistency, levels, 4)


def test_bench_badic_decomposition(benchmark):
    """Canonical B-adic decomposition of a long range."""
    tree = DomainTree(2**20, 4)
    benchmark(tree.decompose_range, 12_345, 987_654)


def test_bench_hh_simulated(benchmark, population):
    """End-to-end hierarchical histogram (simulation path) on D=1024."""
    protocol = HierarchicalHistogram(DOMAIN, 1.1, branching=4)
    counts = population.counts()
    benchmark(protocol.simulate_aggregate, counts, rng=np.random.default_rng(6))


def test_bench_haarhrr_simulated(benchmark, population):
    """End-to-end HaarHRR (simulation path) on D=1024."""
    protocol = HaarHRR(DOMAIN, 1.1)
    counts = population.counts()
    benchmark(protocol.simulate_aggregate, counts, rng=np.random.default_rng(7))


def test_bench_range_query_evaluation(benchmark, population):
    """Answering 10k range queries from a fitted estimator."""
    protocol = HierarchicalHistogram(DOMAIN, 1.1, branching=4)
    estimator = protocol.simulate_aggregate(population.counts(), rng=8)
    rng = np.random.default_rng(9)
    lefts = rng.integers(0, DOMAIN - 1, size=10_000)
    lengths = rng.integers(1, DOMAIN // 2, size=10_000)
    queries = [
        (int(left), int(min(left + length, DOMAIN - 1)))
        for left, length in zip(lefts, lengths)
    ]
    benchmark(estimator.range_queries, queries)
