"""Benchmark + regeneration of Figure 4 (branching factor / range length sweep)."""

from conftest import run_once

from repro.experiments.figure4 import best_method_per_cell, format_figure4, run_figure4


def test_figure4(benchmark, bench_config):
    """Regenerate every (D, r, method, B) cell of Figure 4."""
    cells = run_once(benchmark, run_figure4, bench_config)
    print()
    print(format_figure4(cells))
    # Headline qualitative claim: the flat method does not win long ranges.
    best = best_method_per_cell(cells)
    longest = {
        domain: max(length for (d, length) in best if d == domain)
        for domain in {d for (d, _) in best}
    }
    assert all(best[(domain, longest[domain])] != "FlatOUE" for domain in longest)
