"""Benchmark + regeneration of Figure/Table 5 (epsilon sweep, arbitrary ranges)."""

from conftest import run_once

from repro.experiments.figure5 import format_epsilon_sweep, run_figure5


def test_figure5(benchmark, bench_config):
    """Regenerate the MSE-vs-epsilon tables for HHc_B and HaarHRR."""
    cells = run_once(benchmark, run_figure5, bench_config)
    print()
    print(format_epsilon_sweep(cells, "Figure 5 (arbitrary ranges)"))
    # Error must decrease as epsilon grows, for every method and domain.
    for domain in {cell.domain_size for cell in cells}:
        for method in {cell.method for cell in cells}:
            series = sorted(
                (
                    (cell.epsilon, cell.result.mse_mean)
                    for cell in cells
                    if cell.domain_size == domain and cell.method == method
                )
            )
            if len(series) >= 2:
                assert series[-1][1] < series[0][1]
