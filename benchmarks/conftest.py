"""Shared configuration for the benchmark harness.

Every figure/table of the paper has one benchmark module.  Each benchmark

1. runs the corresponding experiment driver once (timed by
   pytest-benchmark, with a single round so the whole suite stays fast), and
2. prints the resulting table in the paper's layout, so running
   ``pytest benchmarks/ --benchmark-only -s`` regenerates the rows/series
   the paper reports.

The scale is controlled by the ``REPRO_BENCH_PRESET`` environment variable
(``smoke`` by default; set it to ``default`` or ``paper`` to run closer to
the paper's setting).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig, get_config


def _bench_config() -> ExperimentConfig:
    preset = os.environ.get("REPRO_BENCH_PRESET", "smoke")
    return get_config(preset)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration used by all figure benchmarks."""
    return _bench_config()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
