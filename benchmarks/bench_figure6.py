"""Benchmark + regeneration of Figure/Table 6 (epsilon sweep, prefix queries)."""

from conftest import run_once

from repro.experiments.figure6 import format_figure6, run_figure6


def test_figure6(benchmark, bench_config):
    """Regenerate the prefix-query MSE-vs-epsilon tables."""
    cells = run_once(benchmark, run_figure6, bench_config)
    print()
    print(format_figure6(cells))
    assert cells
    # All prefix MSEs are small in absolute terms (paper: ~1e-3 scale).
    assert max(cell.result.mse_mean for cell in cells) < 0.5
