#!/usr/bin/env python3
"""Service throughput: sustained ingest rate, p99 latency, recovery time.

The network-facing aggregation service (:mod:`repro.service`) shards the
ingest hot loop across worker processes; this script quantifies the
deployment-facing numbers the engine benchmark cannot see:

* **sustained ingest throughput** -- reports/second through the full
  HTTP gateway -> worker -> epoch-close path, measured by the in-tree
  load generator over keep-alive connections;
* **ingest latency** -- client-observed p50/p99/max per ``POST /ingest``
  round trip;
* **recovery time** -- wall clock from "checkpoint on disk" to "service
  restarted, all epochs restored, queries answering", i.e. the crash
  recovery budget;
* **WAL overhead** -- the same ingest workload with the durable ingest
  log on, reported as a ratio against the WAL-off rate (the price of
  exactly-once acknowledgements);
* **WAL replay** -- wall clock to replay a crash-orphaned open epoch
  from the log into fresh workers on restart (the un-checkpointed
  crash-window recovery budget);
* **bit-identity check** -- the sharded service's frequency estimates
  are asserted equal to a single-process ingest of the same batches
  before any number is recorded (a fast benchmark that answers wrongly
  is worthless).

Results are written to ``BENCH_service.json`` at the repo root so the
performance trajectory is tracked in-tree.

Run with:  python benchmarks/bench_service.py [--preset smoke|default]
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.service import (
    AggregationService,
    ServiceThread,
    generate_batches,
    ingest_batches_single_process,
    request_json,
    run_loadgen,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

PRESETS = {
    "smoke": {
        "domain": 2**8,
        "users": 20_000,
        "batch_size": 1_000,
        "workers": 2,
        "concurrency": 4,
        "epochs": 2,
        "replay_users": 20_000,
    },
    "default": {
        "domain": 2**10,
        "users": 200_000,
        "batch_size": 2_000,
        "workers": 4,
        "concurrency": 8,
        "epochs": 3,
        "replay_users": 100_000,
    },
}

SPEC_BASE = {"name": "hh", "epsilon": 1.1, "branching": 4}


def run(preset: str, output: Path) -> dict:
    config = PRESETS[preset]
    spec = {**SPEC_BASE, "domain_size": config["domain"]}
    epochs = config["epochs"]
    users_per_epoch = config["users"] // epochs

    print(
        f"encoding population: D={config['domain']}, {config['users']:,} users "
        f"in {epochs} epochs (preset {preset!r})"
    )
    epoch_blobs = []
    for epoch in range(epochs):
        _, blobs = generate_batches(
            spec,
            n_users=users_per_epoch,
            batch_size=config["batch_size"],
            distribution="zipf",
            seed=epoch,
        )
        epoch_blobs.append(blobs)

    checkpoint = str(Path(tempfile.mkdtemp(prefix="bench-service-")) / "ckpt.bin")
    service = AggregationService(
        spec,
        num_workers=config["workers"],
        checkpoint_path=checkpoint,
        checkpoint_every=1,
    )
    epoch_results = []
    with ServiceThread(service) as handle:
        url = handle.url
        print(f"service up at {url} ({config['workers']} workers)")
        # warm-up barrier: a stats round trip forces every worker process
        # through its import + first pipe receive before the clock starts
        request_json(url + "/stats")
        for epoch, blobs in enumerate(epoch_blobs):
            result = run_loadgen(
                url,
                blobs,
                n_users=users_per_epoch,
                concurrency=config["concurrency"],
            )
            assert result.errors == 0, f"epoch {epoch}: {result.errors} errors"
            assert result.closed_epoch == epoch
            epoch_results.append(result)
            print(
                f"  epoch {epoch}: {result.reports_per_s:12,.0f} reports/sec, "
                f"p99 {result.latency_p99_ms:6.2f} ms "
                f"({result.batches} batches x {config['batch_size']:,})"
            )
        service_frequencies = request_json(url + "/query?frequencies=1&window=0")[
            "frequencies"
        ]

    # correctness gate: shard fan-out must be unobservable in estimates
    reference = ingest_batches_single_process(spec, epoch_blobs[0]).finalize()
    assert service_frequencies == [
        float(value) for value in reference.estimated_frequencies()
    ], "sharded service drifted from single-process ingestion"
    print("bit-identity vs single-process ingest: OK")

    # recovery: checkpoint on disk -> restarted service answering queries
    recovery_start = time.perf_counter()
    restored = AggregationService.from_checkpoint(
        checkpoint, num_workers=config["workers"]
    )
    with ServiceThread(restored) as handle:
        request_json(handle.url + "/query?frequencies=1&window=all")
        recovery_seconds = time.perf_counter() - recovery_start
        assert list(restored.engine.epochs) == list(range(epochs))
        assert restored.engine.n_reports() == users_per_epoch * epochs
    print(
        f"recovery from checkpoint: {recovery_seconds * 1e3:,.0f} ms "
        f"({epochs} epochs, {users_per_epoch * epochs:,} reports restored)"
    )

    # WAL overhead: re-run the workload durably.  Epoch 0 is an
    # unmeasured warm-up (fresh worker processes run the first epoch
    # several times slower than warm ones, WAL or not); the comparison
    # is warm-epoch against warm-epoch.
    wal_root = Path(tempfile.mkdtemp(prefix="bench-service-wal-"))
    wal_service = AggregationService(
        spec, num_workers=config["workers"], wal_dir=str(wal_root / "ingest")
    )
    with ServiceThread(wal_service) as handle:
        request_json(handle.url + "/stats")
        warmup = run_loadgen(
            handle.url,
            epoch_blobs[0],
            n_users=users_per_epoch,
            concurrency=config["concurrency"],
        )
        assert warmup.errors == 0
        wal_result = run_loadgen(
            handle.url,
            epoch_blobs[1],
            n_users=users_per_epoch,
            concurrency=config["concurrency"],
        )
        assert wal_result.errors == 0
        wal_frequencies = request_json(
            handle.url + "/query?frequencies=1&window=0"
        )["frequencies"]
    assert wal_frequencies == service_frequencies, (
        "WAL-on service drifted from the WAL-off answers"
    )
    wal_off_rate = epoch_results[-1].reports_per_s
    overhead = wal_off_rate / wal_result.reports_per_s
    print(
        f"WAL-on ingest: {wal_result.reports_per_s:12,.0f} reports/sec "
        f"({overhead:.2f}x slower than the warm WAL-off epoch)"
    )

    # WAL replay: crash mid-epoch, restart, replay the open segment
    replay_users = config["replay_users"]
    _, replay_blobs = generate_batches(
        spec,
        n_users=replay_users,
        batch_size=config["batch_size"],
        distribution="zipf",
        seed=99,
    )
    crash_dir = str(wal_root / "crash")
    victim = AggregationService(
        spec, num_workers=config["workers"], wal_dir=crash_dir
    )
    handle = ServiceThread(victim).start()
    try:
        run_loadgen(
            handle.url,
            replay_blobs,
            n_users=replay_users,
            concurrency=config["concurrency"],
            close_epoch=False,
        )
    finally:
        handle.stop(flush=False)  # crash: the epoch lives only in the WAL
    survivor = AggregationService(
        spec, num_workers=config["workers"], wal_dir=crash_dir
    )
    with ServiceThread(survivor) as handle:
        stats = request_json(handle.url + "/stats")
        replay_ms = stats["wal"]["recovery_ms"]
        assert stats["replayed_batches"] == len(replay_blobs)
        closed = request_json(handle.url + "/close", method="POST")
        assert closed["reports"] == replay_users
    print(
        f"WAL replay after crash: {replay_ms:,.0f} ms "
        f"({replay_users:,} reports, {len(replay_blobs)} batches)"
    )

    all_latencies = [
        sample for result in epoch_results for sample in result.latencies_ms
    ]
    from repro.service.loadgen import percentile

    total_elapsed = sum(result.elapsed_s for result in epoch_results)
    sustained = (users_per_epoch * epochs) / total_elapsed
    document = {
        "version": __version__,
        "preset": preset,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "config": {
            "spec": spec,
            "users": users_per_epoch * epochs,
            "epochs": epochs,
            "batch_size": config["batch_size"],
            "workers": config["workers"],
            "concurrency": config["concurrency"],
        },
        "ingest": {
            "reports_per_s": sustained,
            "per_epoch_reports_per_s": [r.reports_per_s for r in epoch_results],
            "latency_p50_ms": percentile(all_latencies, 50.0),
            "latency_p99_ms": percentile(all_latencies, 99.0),
            "latency_max_ms": max(all_latencies) if all_latencies else 0.0,
        },
        "recovery": {
            "from_checkpoint_ms": recovery_seconds * 1e3,
            "checkpoint_bytes": Path(checkpoint).stat().st_size,
            "epochs_restored": epochs,
        },
        "wal": {
            "ingest_reports_per_s": wal_result.reports_per_s,
            "overhead_ratio": overhead,
            "replay_reports": replay_users,
            "replay_ms": replay_ms,
            "replay_reports_per_s": replay_users / (replay_ms / 1e3)
            if replay_ms > 0
            else 0.0,
        },
        "bit_identical_to_single_process": True,
    }
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(
        f"sustained {sustained:,.0f} reports/sec, "
        f"p99 {document['ingest']['latency_p99_ms']:.2f} ms"
    )
    print(f"wrote {output}")
    return document


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(args.preset, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
