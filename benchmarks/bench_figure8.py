"""Benchmark + regeneration of Figure 8 (input-distribution sweep)."""

from conftest import run_once

from repro.experiments.figure8 import format_figure8, max_relative_spread, run_figure8


def test_figure8(benchmark, bench_config):
    """Regenerate the MSE-vs-distribution-centre series."""
    cells = run_once(benchmark, run_figure8, bench_config)
    print()
    print(format_figure8(cells))
    assert cells
    # The paper's takeaway: absolute errors stay small for every centre.
    assert max(cell.result.mse_mean for cell in cells) < 0.5
    # And the spread across centres is moderate (no pathological sensitivity).
    assert max_relative_spread(cells) < 20.0
