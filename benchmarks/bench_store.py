#!/usr/bin/env python3
"""Out-of-core epoch store costs: spill, pushdown queries, checkpoints.

The :class:`repro.engine.store.EpochStore` lets an engine hold epoch
histories far larger than RAM: sealed epochs live in per-epoch mmap
segments, checkpoints rewrite only dirty segments, and windowed queries
over sealed epochs run via integer-vector pushdown.  This script sizes
that trade against the in-RAM engine:

* **build/seal rate** -- epochs/sec for ingest-then-seal, plus the
  process peak RSS after sealing every epoch (the O(window) claim);
* **windowed query** -- ``estimator(last(k))`` against sealed segments
  vs the same window held fully in RAM (target: within 2x);
* **wide windowed query** -- ``last:{window_wide}`` answered through the
  power-of-two aggregate hierarchy vs the naive per-epoch pushdown sum
  (``use_aggregates=False``); target: >= 3x at the default preset, with
  a bit-identity check between the two plans;
* **incremental vs monolithic checkpoint** -- with ~1% of epochs dirty,
  ``checkpoint()`` should beat a full ``checkpoint(path)`` rewrite by
  >= 10x at the default preset;
* **restore** -- manifest-only restart latency, plus a bit-identity
  check of the windowed answer across the restart.

Results are written to ``BENCH_store.json`` at the repo root so the
performance trajectory is tracked in-tree.

Run with:  python benchmarks/bench_store.py [--preset smoke|default]
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro import __version__
from repro.engine import Engine, last

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_store.json"

PRESETS = {
    "smoke": {
        "domain": 2**8,
        "epochs": 64,
        "users_per_epoch": 100,
        "window": 7,
        "window_wide": 16,
        "repeats": 3,
    },
    "default": {
        "domain": 2**8,
        "epochs": 1024,
        "users_per_epoch": 200,
        "window": 7,
        "window_wide": 64,
        "repeats": 5,
    },
}

EPSILON = 1.1


def _time_best(func: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``func`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _max_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _epoch_items(domain: int, users: int, epoch: int) -> np.ndarray:
    return np.random.default_rng(epoch).integers(0, domain, size=users)


def run(preset: str, output: Path) -> dict:
    config = PRESETS[preset]
    domain = config["domain"]
    epochs = config["epochs"]
    users = config["users_per_epoch"]
    window = config["window"]
    window_wide = config["window_wide"]
    repeats = config["repeats"]

    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    store_dir = str(workdir / "store")
    try:
        print(
            f"building store: D={domain}, {epochs} epochs x {users} users, "
            f"window last:{window} (preset {preset!r})"
        )
        engine = Engine.open(
            "hh", domain_size=domain, epsilon=EPSILON, branching=4,
            store_dir=store_dir,
        )
        rss_before = _max_rss_mb()
        build_start = time.perf_counter()
        for epoch in range(epochs):
            engine.session(epoch=epoch).absorb(
                _epoch_items(domain, users, epoch),
                rng=np.random.default_rng(10_000 + epoch),
            )
            engine.seal_epoch(epoch)
        build_seconds = time.perf_counter() - build_start
        assert list(engine.live_epochs) == [], "sealing must evict the epoch"
        print(
            f"  sealed {epochs} epochs in {build_seconds:.2f} s "
            f"({epochs / build_seconds:,.0f} epochs/sec), "
            f"{engine.store.total_bytes() / 1e6:.1f} MB on disk"
        )

        # The in-RAM comparator holds only the queried window, so its own
        # footprint stays negligible next to the 1000-epoch store; peak
        # RSS captured here is the O(window) number.
        in_ram = Engine.open("hh", domain_size=domain, epsilon=EPSILON, branching=4)
        for epoch in range(epochs - window, epochs):
            in_ram.session(epoch=epoch).absorb(
                _epoch_items(domain, users, epoch),
                rng=np.random.default_rng(10_000 + epoch),
            )

        store_answer = engine.estimator(last(window)).estimated_frequencies()
        ram_answer = in_ram.estimator("all").estimated_frequencies()
        bit_identical = bool(np.array_equal(store_answer, ram_answer))
        assert bit_identical, "store-backed window drifted from the in-RAM merge"

        store_seconds = _time_best(lambda: engine.estimator(last(window)), repeats)
        ram_seconds = _time_best(lambda: in_ram.estimator("all"), repeats)
        ratio = store_seconds / ram_seconds
        rss_after_query = _max_rss_mb()
        print(
            f"  window last:{window}: store {store_seconds * 1e3:.2f} ms vs "
            f"in-RAM {ram_seconds * 1e3:.2f} ms ({ratio:.2f}x)"
        )

        # Wide window through the aggregate hierarchy: O(log k) segment
        # reads vs the naive O(k) per-epoch pushdown sum over the same
        # epochs.  Both paths must agree bit-for-bit.
        store = engine.store
        wide_keys = list(range(epochs - window_wide, epochs))
        plan = store.plan_window(wide_keys)
        planned_state = store.pushdown_state(wide_keys)
        naive_state = store.pushdown_state(wide_keys, use_aggregates=False)
        wide_identical = planned_state.n_reports == naive_state.n_reports and all(
            np.array_equal(p.vectors[name], n.vectors[name])
            for p, n in zip(planned_state.children, naive_state.children)
            for name in p.vectors
        )
        assert wide_identical, "aggregate plan drifted from the per-epoch sum"
        planned_seconds = _time_best(
            lambda: store.pushdown_state(wide_keys), repeats
        )
        naive_seconds = _time_best(
            lambda: store.pushdown_state(wide_keys, use_aggregates=False),
            repeats,
        )
        wide_speedup = naive_seconds / planned_seconds
        aggregate_stats = store.aggregate_stats()
        print(
            f"  wide window last:{window_wide}: planned "
            f"{planned_seconds * 1e3:.2f} ms ({len(plan)} plan nodes) vs "
            f"naive {naive_seconds * 1e3:.2f} ms over {window_wide} leaves "
            f"({wide_speedup:.1f}x; {aggregate_stats['segments']} aggregate "
            f"segments, {aggregate_stats['bytes'] / 1e6:.1f} MB)"
        )

        # The monolithic baseline is the pre-store deployment: every epoch
        # lives in RAM and a checkpoint must serialize all of them.  (The
        # store-backed engine's own full export stays cheap -- sealed
        # segments pass through zero-copy -- and is recorded separately.)
        full = Engine.open("hh", domain_size=domain, epsilon=EPSILON, branching=4)
        for epoch in range(epochs):
            full.session(epoch=epoch).absorb(
                _epoch_items(domain, users, epoch),
                rng=np.random.default_rng(10_000 + epoch),
            )
        mono_path = str(workdir / "mono.ckpt")
        monolithic_seconds = _time_best(
            lambda: full.checkpoint(mono_path), repeats
        )
        export_path = str(workdir / "export.ckpt")
        export_seconds = _time_best(
            lambda: engine.checkpoint(export_path), repeats
        )

        # ~1% of the history dirty: the incremental checkpoint rewrites
        # exactly those segments, the monolithic one rewrites everything.
        dirty = max(1, epochs // 100)
        incremental_seconds = float("inf")
        for repeat in range(repeats):
            for epoch in range(dirty):
                engine.session(epoch=epoch).absorb(
                    np.arange(domain) % domain,
                    rng=np.random.default_rng(777 + repeat),
                )
            written_before = engine.store.segments_written
            start = time.perf_counter()
            engine.checkpoint()
            incremental_seconds = min(
                incremental_seconds, time.perf_counter() - start
            )
            assert engine.store.segments_written - written_before == dirty
            for epoch in range(dirty):
                engine.seal_epoch(epoch)
        speedup = monolithic_seconds / incremental_seconds
        print(
            f"  checkpoint with {dirty}/{epochs} epochs dirty: incremental "
            f"{incremental_seconds * 1e3:.2f} ms vs monolithic "
            f"{monolithic_seconds * 1e3:.2f} ms ({speedup:.1f}x; store's own "
            f"full export {export_seconds * 1e3:.2f} ms)"
        )

        restore_start = time.perf_counter()
        restored = Engine.restore(store_dir)
        restored_answer = restored.estimator(last(window)).estimated_frequencies()
        restore_seconds = time.perf_counter() - restore_start
        assert np.array_equal(restored_answer, store_answer), (
            "restart changed the windowed answer"
        )
        restored.store.close()
        rss_after = _max_rss_mb()

        document = {
            "version": __version__,
            "preset": preset,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "config": {
                "domain_size": domain,
                "epochs": epochs,
                "users_per_epoch": users,
                "window": window,
                "window_wide": window_wide,
                "epsilon": EPSILON,
                "dirty_epochs": dirty,
            },
            "build": {
                "build_s": build_seconds,
                "sealed_epochs_per_s": epochs / build_seconds,
                "store_bytes": engine.store.total_bytes(),
                "max_rss_after_query_mb": rss_after_query,
                "max_rss_mb": rss_after,
                "rss_growth_mb": rss_after_query - rss_before,
            },
            "query": {
                "store_windows_per_s": 1.0 / store_seconds,
                "in_ram_windows_per_s": 1.0 / ram_seconds,
                "store_vs_in_ram_ratio": ratio,
                "bit_identical": bit_identical,
            },
            "query_wide": {
                "window": window_wide,
                "planned_ms": planned_seconds * 1e3,
                "naive_ms": naive_seconds * 1e3,
                "speedup": wide_speedup,
                "plan_nodes": len(plan),
                "aggregate_segments": aggregate_stats["segments"],
                "aggregate_bytes": aggregate_stats["bytes"],
                "bit_identical": wide_identical,
            },
            "checkpoint": {
                "incremental_per_s": 1.0 / incremental_seconds,
                "monolithic_per_s": 1.0 / monolithic_seconds,
                "incremental_ms": incremental_seconds * 1e3,
                "monolithic_ms": monolithic_seconds * 1e3,
                "store_full_export_ms": export_seconds * 1e3,
                "incremental_speedup": speedup,
            },
            "restore": {
                "restore_and_query_ms": restore_seconds * 1e3,
            },
        }
        output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(
            f"restore+query {restore_seconds * 1e3:.1f} ms, peak RSS "
            f"{rss_after:.0f} MB (+{rss_after - rss_before:.0f} MB over build)"
        )
        print(f"wrote {output}")
        return document
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()
    run(args.preset, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
