"""Benchmark + regeneration of Figure 7 (centralized-case comparison)."""

from conftest import run_once

from repro.experiments.figure7 import format_figure7, run_figure7


def test_figure7(benchmark, bench_config):
    """Recompute the centralized wavelet/hierarchical ratios and the local ones."""
    rows = run_once(benchmark, run_figure7, bench_config)
    print()
    print(format_figure7(rows))
    # Centralized error is far below local error (1/N^2 vs 1/N scaling), and
    # the local wavelet/hierarchical gap is much smaller than a factor of 10.
    for row in rows:
        assert row.central_hh16_mse < row.local_hh4_mse
        assert row.local_ratio_haar_vs_hh < 10.0
