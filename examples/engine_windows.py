#!/usr/bin/env python3
"""Sliding-window estimates from an epoch-aware aggregation service.

A long-running LDP aggregation service does not see one static population:
traffic arrives continuously and the underlying distribution drifts.  The
:class:`repro.engine.Engine` façade models this directly:

1. each *epoch* (here: a "day" of traffic) is absorbed into its own
   mergeable accumulator shard -- historical epochs are never touched;
2. the whole service state is *checkpointed* to one durable file and
   restored bit-identically, surviving process restarts;
3. queries are answered over *windows* of epochs -- all-time, or a
   sliding ``last(k)`` -- by lazily merging exactly the selected shards;
4. with ``store_dir=`` the same service runs *out of core*: each sealed
   day spills to its own mmap segment file, the engine restarts from the
   manifest alone, and windowed queries answer from disk bit-identically.

The population drifts upward over the week, so the sliding window tracks
the current median while the all-time estimate lags behind it.

Run with:  python examples/engine_windows.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.data import cauchy_population
from repro.engine import Engine, last

DOMAIN_SIZE = 1024
USERS_PER_DAY = 40_000
N_DAYS = 7
EPSILON = 1.1


def daily_items(day: int, rng: np.random.Generator) -> np.ndarray:
    """One day of traffic; the population center drifts right over time."""
    center = 0.25 + 0.06 * day  # fraction of the domain
    return cauchy_population(
        domain_size=DOMAIN_SIZE,
        n_users=USERS_PER_DAY,
        center_fraction=center,
        rng=rng,
    ).items


def main() -> None:
    rng = np.random.default_rng(0)
    engine = Engine.open(
        "hh", domain_size=DOMAIN_SIZE, epsilon=EPSILON, branching=4
    )

    # --- the service absorbs one epoch per day ------------------------- #
    true_medians = []
    for day in range(N_DAYS):
        items = daily_items(day, rng)
        true_medians.append(int(np.median(items)))
        engine.session(epoch=day).absorb(items, rng=rng)
    print(f"service state: {engine.describe()}")

    # --- durability: checkpoint, forget everything, restore ------------ #
    path = os.path.join(tempfile.mkdtemp(), "service.ckpt")
    engine.checkpoint(path)
    print(f"checkpoint written: {os.path.getsize(path):,} bytes -> {path}")
    engine = Engine.restore(path)
    print(f"restored:      {engine.describe()}")

    # --- windowed queries: sliding window vs all-time ------------------ #
    print()
    print(f"{'day':>4} {'true median':>12} {'last-2 window':>14} {'all-time':>9}")
    for day in range(1, N_DAYS):
        window = [epoch for epoch in range(max(0, day - 1), day + 1)]
        sliding = engine.estimator(window=window)
        alltime = engine.estimator(window=range(day + 1))
        print(
            f"{day:>4} {true_medians[day]:>12} "
            f"{sliding.quantile_query(0.5):>14} "
            f"{alltime.quantile_query(0.5):>9}"
        )

    # ``last(k)`` resolves against whatever epochs exist right now.
    recent = engine.estimator(window=last(2))
    print()
    print(
        "current last-2-day median estimate:",
        recent.quantile_query(0.5),
        f"(true median of day {N_DAYS - 1}: {true_medians[-1]})",
    )
    print(
        "reports per window:",
        {
            "last(2)": engine.n_reports(last(2)),
            "all": engine.n_reports(),
        },
    )

    # --- the same week, out of core ------------------------------------ #
    # Seal each day into its own segment file: live memory stays O(1) in
    # the number of days, restart reads only the manifest, and the
    # windowed answers match the in-RAM engine bit for bit.
    store_dir = os.path.join(tempfile.mkdtemp(), "epochstore")
    rng = np.random.default_rng(0)  # replay the exact same week
    stored = Engine.open(
        "hh", domain_size=DOMAIN_SIZE, epsilon=EPSILON, branching=4,
        store_dir=store_dir,
    )
    for day in range(N_DAYS):
        stored.session(epoch=day).absorb(daily_items(day, rng), rng=rng)
        stored.seal_epoch(day)  # spill to epoch-%08d.seg, evict from RAM
    stored.checkpoint()  # incremental: manifest only, nothing is dirty
    print()
    print(f"epoch store: {len(stored.sealed_epochs)} sealed segments, "
          f"{stored.store.total_bytes():,} bytes in {store_dir}")

    restored = Engine.restore(store_dir)  # lazy: no segment is read yet
    answer = restored.estimator(window=last(2)).quantile_query(0.5)
    print("last-2-day median from sealed segments:", answer)
    print("matches the in-RAM engine:", answer == recent.quantile_query(0.5))


if __name__ == "__main__":
    main()
