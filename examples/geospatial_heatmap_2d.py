#!/usr/bin/env python3
"""Scenario: two-dimensional range queries over private locations (Section 6).

A city transport agency wants to know what fraction of trips start inside
arbitrary rectangular zones of a coarse grid over the city, without ever
collecting raw locations.  The paper's Section 6 sketches the extension of
its hierarchical decomposition to multiple dimensions; this example runs the
2-D implementation on a synthetic population with two hot spots and compares
estimated rectangle masses with the exact ones.

Run with:  python examples/geospatial_heatmap_2d.py
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import ensure_rng
from repro.multidim import HierarchicalGrid2D

GRID = 32          # 32 x 32 grid over the city
N_TRIPS = 250_000
EPSILON = 2.0


def synthetic_trips(rng: np.random.Generator):
    """Two hot spots (downtown and the airport) plus background traffic."""
    downtown = rng.normal([8, 10], 2.5, size=(int(N_TRIPS * 0.5), 2))
    airport = rng.normal([24, 22], 2.0, size=(int(N_TRIPS * 0.3), 2))
    background = rng.uniform(0, GRID, size=(N_TRIPS - len(downtown) - len(airport), 2))
    points = np.vstack([downtown, airport, background])
    points = np.clip(np.floor(points), 0, GRID - 1).astype(np.int64)
    return points[:, 0], points[:, 1]


def main() -> None:
    rng = ensure_rng(5)
    xs, ys = synthetic_trips(rng)

    protocol = HierarchicalGrid2D(GRID, GRID, EPSILON, branching=2, oracle="hrr")
    estimator = protocol.run(xs, ys, rng=rng)

    zones = {
        "downtown core": ((4, 12), (6, 14)),
        "airport district": ((20, 28), (18, 26)),
        "northern half": ((0, 31), (16, 31)),
        "single cell": ((8, 8), (10, 10)),
    }

    print(f"Trips: {len(xs):,}   grid: {GRID}x{GRID}   epsilon = {EPSILON}")
    print()
    print(f"{'zone':>18} {'estimated':>10} {'exact':>8}")
    for name, (x_range, y_range) in zones.items():
        exact = np.mean(
            (xs >= x_range[0]) & (xs <= x_range[1]) & (ys >= y_range[0]) & (ys <= y_range[1])
        )
        estimate = estimator.rectangle_query(x_range, y_range)
        print(f"{name:>18} {estimate:10.4f} {exact:8.4f}")


if __name__ == "__main__":
    main()
