#!/usr/bin/env python3
"""Compare all of the paper's methods on one dataset, like a mini Figure 4.

Runs the flat baseline, hierarchical histograms over several branching
factors (with and without consistency) and HaarHRR on a single synthetic
population, and prints the mean squared error over range queries of a few
representative lengths.  A compact, runnable version of the exploration the
paper performs in Figure 4 before settling on its recommendations.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import FlatRangeQuery, HaarHRR, HierarchicalHistogram
from repro.analysis.metrics import mean_squared_error
from repro.data import cauchy_population
from repro.queries.workload import all_queries_of_length, true_answers

DOMAIN_SIZE = 512
N_USERS = 150_000
EPSILON = 1.1
RANGE_LENGTHS = (1, 16, 128, 448)
REPETITIONS = 3


def build_methods():
    methods = [FlatRangeQuery(DOMAIN_SIZE, EPSILON), HaarHRR(DOMAIN_SIZE, EPSILON)]
    for branching in (2, 4, 16):
        for consistency in (False, True):
            methods.append(
                HierarchicalHistogram(
                    DOMAIN_SIZE,
                    EPSILON,
                    branching=branching,
                    oracle="oue",
                    consistency=consistency,
                )
            )
    return methods


def main() -> None:
    population = cauchy_population(DOMAIN_SIZE, N_USERS, center_fraction=0.4, rng=3)
    counts = population.counts()
    frequencies = population.frequencies()

    workloads = {
        length: all_queries_of_length(DOMAIN_SIZE, length) for length in RANGE_LENGTHS
    }
    truths = {
        length: true_answers(queries, frequencies) for length, queries in workloads.items()
    }

    methods = build_methods()
    labels = []
    for method in methods:
        label = method.name
        if isinstance(method, HierarchicalHistogram):
            label = f"{method.name}(B={method.branching})"
        labels.append(label)

    print(f"D={DOMAIN_SIZE}, N={N_USERS:,}, epsilon={EPSILON}; MSE x1000 per range length")
    header = f"{'method':>22}" + "".join(f"  r={length:<6}" for length in RANGE_LENGTHS)
    print(header)
    print("-" * len(header))
    for method, label in zip(methods, labels):
        row = f"{label:>22}"
        for length in RANGE_LENGTHS:
            errors = []
            for seed in range(REPETITIONS):
                estimator = method.simulate_aggregate(counts, rng=1000 + seed)
                estimates = estimator.range_queries(workloads[length])
                errors.append(mean_squared_error(estimates, truths[length]))
            row += f"  {np.mean(errors) * 1000:8.3f}"
        print(row)

    print()
    print("Expected pattern (paper, Figure 4): the flat method is competitive only")
    print("at r=1; consistent HH and HaarHRR win for longer ranges, and the CI")
    print("variants always improve on their inconsistent counterparts.")


if __name__ == "__main__":
    main()
