#!/usr/bin/env python3
"""Scenario: latency percentiles from privacy-sensitive client telemetry.

A service operator wants p50/p90/p99 request latency as experienced on user
devices.  Latency is sensitive (it can reveal location, device class or
usage patterns), so clients only ever send locally-randomized reports, as in
the industrial LDP deployments the paper cites (Apple, Google, Microsoft).

This example uses the wavelet protocol (HaarHRR) because telemetry clients
care about upload size: each HaarHRR report is a single +/-1 value plus a
level and coefficient index -- a few bytes -- which is the communication
profile the paper highlights for this method.  It also contrasts the
high-privacy regime (epsilon = 0.5) with a looser budget (epsilon = 1.4).

Run with:  python examples/telemetry_latency_quantiles.py
"""

from __future__ import annotations

import numpy as np

from repro import HaarHRR
from repro.core.rng import ensure_rng
from repro.queries.quantile import quantile_rank, true_quantile

# Latencies are bucketed in 1 ms steps up to 4096 ms.
DOMAIN_SIZE = 4096
N_CLIENTS = 400_000
PERCENTILES = (0.50, 0.90, 0.95, 0.99)


def synthetic_latencies(rng: np.random.Generator) -> np.ndarray:
    """Log-normal body plus a long tail of slow requests."""
    body = rng.lognormal(mean=4.0, sigma=0.5, size=int(N_CLIENTS * 0.97))
    tail = rng.lognormal(mean=6.5, sigma=0.6, size=N_CLIENTS - len(body))
    latencies = np.concatenate([body, tail])
    return np.clip(np.round(latencies), 0, DOMAIN_SIZE - 1).astype(np.int64)


def main() -> None:
    rng = ensure_rng(7)
    latencies = synthetic_latencies(rng)
    exact = np.bincount(latencies, minlength=DOMAIN_SIZE) / len(latencies)

    print(f"Clients: {len(latencies):,}   domain: {DOMAIN_SIZE} ms buckets")
    for epsilon in (0.5, 1.4):
        protocol = HaarHRR(DOMAIN_SIZE, epsilon)
        estimator = protocol.run(latencies, rng=rng)
        print()
        print(f"epsilon = {epsilon}  ({protocol.name}; ~{int(np.log2(protocol.padded_size)) + 1}"
              " bits uploaded per client)")
        for phi in PERCENTILES:
            estimated = estimator.quantile_query(phi)
            truth = true_quantile(exact, phi)
            achieved = quantile_rank(exact, estimated)
            print(
                f"  p{int(phi * 100):02d}: estimated {estimated:5d} ms"
                f"   exact {truth:5d} ms   achieved rank {achieved:.3f}"
            )

        # A capacity-planning style range query: fraction of requests over 1s.
        slow = estimator.range_query((1000, DOMAIN_SIZE - 1))
        slow_exact = exact[1000:].sum()
        print(f"  fraction of requests slower than 1s: {slow:.4f} (exact {slow_exact:.4f})")


if __name__ == "__main__":
    main()
