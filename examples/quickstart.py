#!/usr/bin/env python3
"""Quickstart: answer range queries over private data under LDP.

This walks through the full life-cycle of the paper's protocols on a
synthetic population:

1. generate a population of users, each holding one private value;
2. run a protocol (here the hierarchical histogram, HH_B) -- every user's
   report individually satisfies epsilon-LDP;
3. ask the resulting estimator for range, prefix and quantile answers and
   compare them with the exact (non-private) answers.

All protocols run on the same decomposition -> oracle -> accumulator ->
estimator -> batch-query pipeline; ``ARCHITECTURE.md`` at the repository
root walks through the layers and shows how to add a new protocol as a
small ``Decomposition`` subclass.  For a long-running service (continuous
traffic in epochs, durable checkpoints, sliding-window queries) see the
``repro.engine`` façade walkthrough in ``examples/engine_windows.py``.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FlatRangeQuery, HaarHRR, HierarchicalHistogram
from repro.data import cauchy_population
from repro.queries.workload import random_range_workload, true_answers

DOMAIN_SIZE = 1024
N_USERS = 200_000
EPSILON = 1.1  # e^eps = 3, the paper's default


def main() -> None:
    # 1. A synthetic population: each entry is one user's private item.
    population = cauchy_population(
        domain_size=DOMAIN_SIZE, n_users=N_USERS, center_fraction=0.4, rng=0
    )
    exact = population.frequencies()

    # 2. Run the three protocols the paper studies.
    protocols = [
        FlatRangeQuery(DOMAIN_SIZE, EPSILON),
        HierarchicalHistogram(DOMAIN_SIZE, EPSILON, branching=4, oracle="oue"),
        HaarHRR(DOMAIN_SIZE, EPSILON),
    ]

    queries = [(100, 199), (0, 511), (700, 1023), (512, 512)]
    print(f"Population: N={N_USERS:,}, D={DOMAIN_SIZE}, epsilon={EPSILON}")
    print()
    header = f"{'query':>14} {'exact':>9} " + " ".join(f"{p.name:>12}" for p in protocols)
    print(header)
    print("-" * len(header))

    estimators = [protocol.run(population.items, rng=1) for protocol in protocols]
    for left, right in queries:
        truth = exact[left : right + 1].sum()
        row = f"[{left:5d},{right:5d}] {truth:9.4f} "
        row += " ".join(
            f"{estimator.range_query((left, right)):12.4f}" for estimator in estimators
        )
        print(row)

    # 3. Derived queries: CDF-style prefixes and quantiles.
    hierarchical = estimators[1]
    print()
    print("Prefix P[item <= 300]:", f"{hierarchical.prefix_query(300):.4f}",
          "(exact:", f"{exact[:301].sum():.4f})")
    true_median = int(np.searchsorted(np.cumsum(exact), 0.5))
    print("Estimated median item:", hierarchical.quantile_query(0.5),
          "(exact:", true_median, ")")

    # 4. Batch workloads: answer many queries at once with the array-native
    # engine -- a RangeWorkload is just two int64 arrays of endpoints,
    # validated once, and every estimator answers it as pure NumPy kernels
    # (see BENCH_queries.json for measured per-query vs batch throughput).
    workload = random_range_workload(DOMAIN_SIZE, 100_000, np.random.default_rng(3))
    truths = true_answers(workload, exact)
    print()
    print(f"Batch workload: {len(workload):,} random ranges")
    for estimator in estimators:
        answers = estimator.range_queries(workload)
        mse = float(np.mean((answers - truths) ** 2))
        print(f"  {type(estimator).__name__:>22}: workload MSE {mse:.3e}")
    deciles = hierarchical.quantile_queries_batch(np.linspace(0.1, 0.9, 9))
    print("  Estimated deciles:", deciles.tolist())

    # 5. The same protocol as a managed aggregation service: the engine
    # façade partitions state into epochs and answers windowed queries
    # (single epoch + window="all" is bit-identical to run() above; see
    # examples/engine_windows.py for checkpoints and sliding windows).
    from repro.engine import Engine

    engine = Engine.open(protocols[1])
    engine.session(epoch=0).absorb(population.items, rng=1)
    service = engine.estimator(window="all")
    print()
    print("Engine façade (1 epoch, window='all') matches run():",
          bool(np.array_equal(service.estimated_frequencies(),
                              estimators[1].estimated_frequencies())))


if __name__ == "__main__":
    main()
