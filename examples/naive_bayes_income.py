#!/usr/bin/env python3
"""Scenario: a Naive Bayes model over private numeric attributes (Section 6).

The paper's concluding section sketches how range queries become a building
block for prediction models: with a *public* class label and *private*
numeric attributes, the per-class attribute distributions needed by a Naive
Bayes classifier are exactly range queries over each class's population.

This example trains such a classifier on a synthetic "income > threshold"
task with two private attributes (age and weekly hours).  Every training
user contributes only epsilon-LDP randomized reports about each attribute;
the test users are classified from their raw features (prediction happens
on the client, so no privacy cost there).

Run with:  python examples/naive_bayes_income.py
"""

from __future__ import annotations

import numpy as np

from repro.applications import AttributeSpec, LDPNaiveBayes
from repro.core.rng import ensure_rng
from repro.hierarchy import HierarchicalHistogram

AGE_DOMAIN = 128        # ages 0-127
HOURS_DOMAIN = 128      # weekly hours 0-127
N_TRAIN = 120_000
N_TEST = 4_000
EPSILON = 1.5


def synthetic_population(rng: np.random.Generator, size: int):
    """Two classes: label 1 skews older and works longer hours."""
    labels = (rng.random(size) < 0.35).astype(int)
    age = np.where(
        labels == 1,
        rng.normal(52, 9, size=size),
        rng.normal(33, 10, size=size),
    )
    hours = np.where(
        labels == 1,
        rng.normal(47, 7, size=size),
        rng.normal(36, 8, size=size),
    )
    age = np.clip(np.round(age), 0, AGE_DOMAIN - 1).astype(np.int64)
    hours = np.clip(np.round(hours), 0, HOURS_DOMAIN - 1).astype(np.int64)
    return age, hours, labels


def main() -> None:
    rng = ensure_rng(31)
    train_age, train_hours, train_labels = synthetic_population(rng, N_TRAIN)
    test_age, test_hours, test_labels = synthetic_population(rng, N_TEST)

    classifier = LDPNaiveBayes(
        attributes=[
            AttributeSpec("age", AGE_DOMAIN, num_bins=16),
            AttributeSpec("hours", HOURS_DOMAIN, num_bins=16),
        ],
        protocol_factory=lambda domain: HierarchicalHistogram(
            domain, EPSILON, branching=4, oracle="hrr"
        ),
    )
    classifier.fit([train_age, train_hours], train_labels, rng=rng)

    test_samples = np.column_stack([test_age, test_hours])
    accuracy = classifier.accuracy(test_samples, test_labels)
    baseline = max(np.mean(test_labels), 1 - np.mean(test_labels))

    print(f"Training users (epsilon-LDP reports): {N_TRAIN:,}, epsilon = {EPSILON}")
    print(f"Test users: {N_TEST:,}")
    print(f"Majority-class baseline accuracy: {baseline:.3f}")
    print(f"LDP Naive Bayes accuracy:         {accuracy:.3f}")
    print()
    print("Example predictions (age, hours -> predicted class):")
    for age, hours in [(25, 30), (58, 50), (40, 40), (63, 55)]:
        print(f"  age={age:2d}, hours={hours:2d} -> class {classifier.predict([age, hours])}")


if __name__ == "__main__":
    main()
