#!/usr/bin/env python3
"""Scenario: a privacy-preserving salary survey.

An employer association wants the salary distribution of workers across an
industry -- median and decile salaries, the fraction earning within given
bands -- but no individual is willing to reveal their exact salary.  This is
exactly the paper's motivating use case for range and quantile queries under
local differential privacy: each worker submits a single randomized report
and the analyst reconstructs the answers.

The script builds a synthetic salary population (a mixture of junior,
senior and executive salary bands), runs the consistent hierarchical
histogram protocol (HHc_4, the paper's recommended configuration for
moderate privacy budgets) and reports:

* salary-band fractions (range queries),
* the full estimated CDF at a few grid points (prefix queries),
* deciles of the salary distribution (quantile queries),

each compared against the exact values that a trusted curator would get.

Run with:  python examples/salary_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import HierarchicalHistogram
from repro.core.rng import ensure_rng
from repro.queries.quantile import deciles, evaluate_quantiles

# Salaries are bucketed into 500-dollar steps from 0 to 256k -> domain 512.
SALARY_STEP = 500
DOMAIN_SIZE = 512
N_WORKERS = 300_000
EPSILON = 1.1


def synthetic_salaries(rng: np.random.Generator) -> np.ndarray:
    """A three-component salary mixture, in units of SALARY_STEP dollars."""
    juniors = rng.normal(70, 18, size=int(N_WORKERS * 0.55))
    seniors = rng.normal(150, 30, size=int(N_WORKERS * 0.35))
    executives = rng.lognormal(mean=5.55, sigma=0.25, size=N_WORKERS
                               - int(N_WORKERS * 0.55) - int(N_WORKERS * 0.35))
    salaries = np.concatenate([juniors, seniors, executives])
    return np.clip(np.round(salaries), 0, DOMAIN_SIZE - 1).astype(np.int64)


def dollars(bucket: float) -> str:
    return f"${bucket * SALARY_STEP:,.0f}"


def main() -> None:
    rng = ensure_rng(2024)
    salaries = synthetic_salaries(rng)
    exact = np.bincount(salaries, minlength=DOMAIN_SIZE) / len(salaries)

    protocol = HierarchicalHistogram(
        DOMAIN_SIZE, EPSILON, branching=4, oracle="oue", consistency=True
    )
    estimator = protocol.run(salaries, rng=rng)

    print(f"Workers: {len(salaries):,}   epsilon = {EPSILON}   protocol = {protocol.name}")
    print()

    print("Salary band fractions (range queries)")
    bands = [(0, 99), (100, 199), (200, 299), (300, 511)]
    for left, right in bands:
        truth = exact[left : right + 1].sum()
        estimate = estimator.range_query((left, right))
        print(
            f"  {dollars(left):>9} - {dollars(right + 1):>9}: "
            f"estimated {estimate:6.3f}   exact {truth:6.3f}"
        )

    print()
    print("Estimated CDF (prefix queries)")
    for bucket in (60, 120, 200, 320):
        print(
            f"  P[salary <= {dollars(bucket):>9}] = {estimator.prefix_query(bucket):6.3f}"
            f"   exact {exact[: bucket + 1].sum():6.3f}"
        )

    print()
    print("Salary deciles (quantile queries)")
    for evaluation in evaluate_quantiles(estimator, exact, deciles()):
        print(
            f"  phi={evaluation.phi:.1f}: estimated {dollars(evaluation.estimated_item):>9}"
            f"   exact {dollars(evaluation.true_item):>9}"
            f"   quantile error {evaluation.quantile_error:.4f}"
        )


if __name__ == "__main__":
    main()
