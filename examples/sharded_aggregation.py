#!/usr/bin/env python3
"""Sharded aggregation: N clients -> 4 server shards -> merge -> queries.

This demonstrates the deployment topology the paper assumes, using the
client/server streaming API:

1. a fleet of *clients* (here: batches of users) privatize their items
   locally with ``ProtocolClient.encode_batch`` -- raw values never leave
   the user side, every report individually satisfies epsilon-LDP;
2. four independent *server shards* ingest disjoint slices of the report
   stream, each folding reports into a compact sufficient-statistics
   accumulator (size O(D) for this protocol, independent of N);
3. the shard states are serialized (as they would be for cross-machine
   transport or checkpointing), merged -- merging is exact, so the result
   is bit-for-bit identical to a single server ingesting everything --
   and finalized into one estimator;
4. the estimator answers range and quantile queries.

For the managed version of this workflow -- epochs instead of hand-held
shards, durable checkpoints, sliding-window queries -- see the
``repro.engine`` façade in ``examples/engine_windows.py``.

Run with:  python examples/sharded_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import HierarchicalHistogram, load_server
from repro.data import cauchy_population

DOMAIN_SIZE = 1024
N_USERS = 200_000
EPSILON = 1.1
N_SHARDS = 4
CLIENT_BATCH = 5_000  # users per upload batch


def main() -> None:
    population = cauchy_population(
        domain_size=DOMAIN_SIZE, n_users=N_USERS, center_fraction=0.4, rng=0
    )
    exact = population.frequencies()
    protocol = HierarchicalHistogram(DOMAIN_SIZE, EPSILON, branching=4, oracle="oue")

    # --- client side -------------------------------------------------- #
    client = protocol.client()
    rng = np.random.default_rng(1)
    batches = np.array_split(population.items, N_USERS // CLIENT_BATCH)
    reports = [client.encode_batch(batch, rng=rng) for batch in batches]
    print(f"{len(reports)} client batches encoded ({N_USERS:,} users total)")

    # --- server side: four shards ingest disjoint report slices ------- #
    shards = [protocol.server() for _ in range(N_SHARDS)]
    for index, report in enumerate(reports):
        shards[index % N_SHARDS].ingest(report)
    for index, shard in enumerate(shards):
        print(f"  shard {index}: {shard.n_reports:,} reports accumulated")

    # --- transport + merge: shard states travel as bytes --------------- #
    blobs = [shard.to_bytes() for shard in shards]
    print(f"serialized shard states: {[len(blob) for blob in blobs]} bytes")
    combined = load_server(blobs[0])
    for blob in blobs[1:]:
        combined.merge(load_server(blob))

    # Exactness check: merging shards reproduces single-server ingestion
    # bit for bit.
    single = protocol.server().ingest(reports)
    assert np.array_equal(
        combined.finalize().estimated_frequencies(),
        single.finalize().estimated_frequencies(),
    ), "sharded merge must equal single-pass aggregation exactly"

    # --- queries -------------------------------------------------------- #
    estimator = combined.finalize()
    print(f"\n{'query':>14} {'exact':>9} {'estimate':>9}")
    for left, right in [(100, 199), (0, 511), (700, 1023)]:
        truth = float(exact[left : right + 1].sum())
        estimate = estimator.range_query((left, right))
        print(f"  [{left:>4}, {right:>4}] {truth:>9.4f} {estimate:>9.4f}")
    for phi in (0.25, 0.5, 0.9):
        print(f"  {phi:>4.0%} quantile: item {estimator.quantile_query(phi)}")


if __name__ == "__main__":
    main()
