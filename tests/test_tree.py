"""Tests for the structural B-ary domain tree."""

import numpy as np
import pytest

from repro.hierarchy.badic import BAdicInterval
from repro.hierarchy.tree import DomainTree, TreeNode


class TestStructure:
    def test_power_of_two_domain(self):
        tree = DomainTree(64, 2)
        assert tree.padded_size == 64
        assert tree.height == 6
        assert tree.num_levels == 7
        assert tree.level_size(0) == 1
        assert tree.level_size(6) == 64

    def test_padded_domain(self):
        tree = DomainTree(100, 4)
        assert tree.padded_size == 256
        assert tree.height == 4
        assert tree.domain_size == 100

    def test_node_span(self):
        tree = DomainTree(64, 4)
        assert tree.node_span(0) == 64
        assert tree.node_span(1) == 16
        assert tree.node_span(3) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DomainTree(64, 1)
        with pytest.raises(Exception):
            DomainTree(0, 2)

    def test_level_bounds_checked(self):
        tree = DomainTree(16, 2)
        with pytest.raises(ValueError):
            tree.level_size(5)
        with pytest.raises(ValueError):
            tree.node_span(-1)


class TestMappings:
    def test_ancestor_index(self):
        tree = DomainTree(16, 2)
        items = np.array([0, 1, 7, 8, 15])
        assert list(tree.ancestor_index(items, 4)) == [0, 1, 7, 8, 15]
        assert list(tree.ancestor_index(items, 3)) == [0, 0, 3, 4, 7]
        assert list(tree.ancestor_index(items, 1)) == [0, 0, 0, 1, 1]
        assert list(tree.ancestor_index(items, 0)) == [0, 0, 0, 0, 0]

    def test_node_interval_roundtrip(self):
        tree = DomainTree(64, 4)
        for level in range(tree.num_levels):
            for index in range(tree.level_size(level)):
                node = TreeNode(level=level, index=index)
                interval = tree.node_interval(node)
                assert tree.node_for_block(interval) == node

    def test_node_for_block_rejects_non_nodes(self):
        tree = DomainTree(64, 2)
        with pytest.raises(ValueError):
            tree.node_for_block(BAdicInterval(start=1, length=2, level_from_leaves=1))

    def test_decompose_range_matches_badic(self):
        tree = DomainTree(64, 2)
        nodes = tree.decompose_range(2, 22)
        spans = [tree.node_interval(node) for node in nodes]
        assert [(s.start, s.end) for s in spans] == [
            (2, 3),
            (4, 7),
            (8, 15),
            (16, 19),
            (20, 21),
            (22, 22),
        ]


class TestHistograms:
    def test_level_histogram_sums(self):
        tree = DomainTree(8, 2)
        leaf_counts = np.arange(8, dtype=float)
        assert list(tree.level_histogram(leaf_counts, 3)) == list(leaf_counts)
        assert list(tree.level_histogram(leaf_counts, 2)) == [1, 5, 9, 13]
        assert list(tree.level_histogram(leaf_counts, 1)) == [6, 22]
        assert list(tree.level_histogram(leaf_counts, 0)) == [28]

    def test_level_histogram_pads_short_domains(self):
        tree = DomainTree(6, 2)
        counts = np.ones(6)
        level = tree.level_histogram(counts, tree.height)
        assert len(level) == 8
        assert level.sum() == 6

    def test_level_histogram_rejects_bad_length(self):
        tree = DomainTree(8, 2)
        with pytest.raises(ValueError):
            tree.level_histogram(np.ones(5), 1)

    def test_all_level_histograms_consistent(self):
        tree = DomainTree(16, 4)
        counts = np.random.default_rng(0).integers(0, 50, size=16).astype(float)
        levels = tree.all_level_histograms(counts)
        for level_values in levels:
            assert level_values.sum() == pytest.approx(counts.sum())

    def test_empty_levels_shapes(self):
        tree = DomainTree(16, 4)
        empties = tree.empty_levels()
        assert [len(level) for level in empties] == [1, 4, 16]
