"""Tests for the synthetic population generators."""

import numpy as np
import pytest

from repro.data import (
    DISTRIBUTIONS,
    cauchy_population,
    gaussian_population,
    make_population,
    uniform_population,
    zipf_population,
)


class TestCauchy:
    def test_size_and_domain(self):
        data = cauchy_population(256, 10_000, rng=0)
        assert data.n_users == 10_000
        assert data.items.min() >= 0 and data.items.max() < 256

    def test_center_controls_mass_location(self):
        left = cauchy_population(256, 20_000, center_fraction=0.2, rng=1)
        right = cauchy_population(256, 20_000, center_fraction=0.8, rng=1)
        assert left.items.mean() < right.items.mean()

    def test_height_controls_spread(self):
        narrow = cauchy_population(256, 20_000, height=2.0, rng=2)
        wide = cauchy_population(256, 20_000, height=64.0, rng=2)
        assert narrow.items.std() < wide.items.std()

    def test_counts_and_frequencies(self):
        data = cauchy_population(64, 5_000, rng=3)
        counts = data.counts()
        assert counts.sum() == 5_000
        assert data.frequencies().sum() == pytest.approx(1.0)

    def test_reproducibility(self):
        a = cauchy_population(64, 1_000, rng=42)
        b = cauchy_population(64, 1_000, rng=42)
        assert np.array_equal(a.items, b.items)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            cauchy_population(0, 10)
        with pytest.raises(ValueError):
            cauchy_population(10, 0)
        with pytest.raises(ValueError):
            cauchy_population(10, 10, center_fraction=1.5)
        with pytest.raises(ValueError):
            cauchy_population(10, 10, height=-1)


class TestOtherDistributions:
    def test_zipf_is_head_heavy(self):
        data = zipf_population(128, 30_000, exponent=1.5, rng=4)
        freqs = data.frequencies()
        assert freqs[0] > freqs[10] > freqs[100]

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_population(10, 10, exponent=0)

    def test_gaussian_centered(self):
        data = gaussian_population(256, 30_000, center_fraction=0.5, rng=5)
        assert data.items.mean() == pytest.approx(128, abs=10)

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            gaussian_population(10, 10, std_fraction=0)

    def test_uniform_is_flat(self):
        data = uniform_population(16, 64_000, rng=6)
        freqs = data.frequencies()
        assert np.allclose(freqs, 1 / 16, atol=0.01)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_population(0, 10)


class TestRegistry:
    def test_registry_contents(self):
        assert set(DISTRIBUTIONS) == {"cauchy", "zipf", "gaussian", "uniform"}

    def test_make_population(self):
        data = make_population("cauchy", 64, 1_000, rng=7, center_fraction=0.3)
        assert data.n_users == 1_000

    def test_unknown_distribution(self):
        with pytest.raises(KeyError):
            make_population("poisson", 64, 100)
