"""Tests for the out-of-core epoch store (:mod:`repro.engine.store`).

Three guarantees anchor the store layer:

* **Bit-identity**: a store-backed engine (sealed epochs on disk,
  windows answered via segment pushdown or load-and-merge) reproduces
  the in-RAM engine exactly for all 14 golden configurations, and a
  restart (``Engine.restore(store_dir)``) changes nothing.
* **Incrementality**: ``checkpoint()`` rewrites only dirty epochs'
  segments; clean segments stay byte-identical on disk.
* **Fail-loud durability**: torn segment tails, spec mismatches,
  missing segment files, and pointing the store opener at a monolithic
  checkpoint file all raise a contextual ``SerializationError`` instead
  of silently corrupting estimates.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_decomposition import CASES, HRR_CASES
from test_engine import HANDLES, _fingerprint, _items_for

from repro import make_protocol
from repro.core.serialization import (
    MAGIC_SEG,
    SerializationError,
    pack_epoch_segment,
    read_epoch_segment,
    segment_pushdown_children,
    segment_state_bytes,
)
from repro.engine import Engine, EpochStore, last, spec_fingerprint, split_window


def _check(case, actual, expected):
    if np.array_equal(actual, expected):
        return
    assert case in HRR_CASES and np.allclose(
        actual, expected, rtol=0.0, atol=1e-12
    ), f"{case}: store-backed path drifted from the in-RAM goldens"


# --------------------------------------------------------------------- #
# segment codec
# --------------------------------------------------------------------- #
class TestSegmentCodec:
    def _state_blob(self):
        protocol = make_protocol("hh", 16, 1.2, branching=4)
        engine = Engine.open(protocol)
        engine.session(epoch=0).absorb(
            _items_for(protocol, 100, 0), rng=np.random.default_rng(1)
        )
        return engine.session(epoch=0).server.state.to_bytes()

    def test_round_trip_without_pushdown(self):
        blob = self._state_blob()
        segment = pack_epoch_segment(3, "cafe", blob, n_reports=100)
        header, body_offset = read_epoch_segment(segment)
        assert header["epoch"] == 3
        assert header["spec_hash"] == "cafe"
        assert header["n_reports"] == 100
        assert segment_state_bytes(segment, header, body_offset) == blob
        assert "pushdown" not in header

    def test_round_trip_with_pushdown_vectors(self):
        blob = self._state_blob()
        vector = np.arange(12, dtype=np.int64).reshape(3, 4)
        pushdown = {
            "label": "composite",
            "config": {"k": 1},
            "n_users": 100,
            "children": [
                {
                    "oracle_kind": "oue",
                    "config": {"epsilon": 1.2},
                    "n_reports": 100,
                    "vectors": {"counts": vector, "totals": np.array([7], np.int64)},
                }
            ],
        }
        segment = pack_epoch_segment(0, "cafe", blob, pushdown=pushdown)
        header, body_offset = read_epoch_segment(segment)
        children = segment_pushdown_children(segment, header, body_offset)
        assert len(children) == 1
        assert children[0]["oracle_kind"] == "oue"
        assert np.array_equal(children[0]["vectors"]["counts"], vector)
        assert np.array_equal(children[0]["vectors"]["totals"], [7])
        # Vectors are mmap-friendly: 8-byte aligned within the file.
        for child in header["pushdown"]["children"]:
            for entry in child["vectors"]:
                assert (body_offset + entry["offset"]) % 8 == 0

    def test_torn_tail_is_rejected(self):
        segment = pack_epoch_segment(0, "cafe", self._state_blob())
        for cut in (len(MAGIC_SEG) + 2, len(segment) // 2, len(segment) - 1):
            with pytest.raises(SerializationError, match="torn"):
                read_epoch_segment(segment[:cut])
        with pytest.raises(SerializationError):  # not even a whole magic
            read_epoch_segment(segment[:1])

    def test_bit_flip_is_rejected(self):
        segment = bytearray(pack_epoch_segment(0, "cafe", self._state_blob()))
        segment[len(segment) // 2] ^= 0x40
        with pytest.raises(SerializationError, match="CRC"):
            read_epoch_segment(bytes(segment))

    def test_wrong_magic_is_rejected(self):
        with pytest.raises(SerializationError):
            read_epoch_segment(b"NOTASEG!" + b"\x00" * 64)
        assert len(MAGIC_SEG) == 9


# --------------------------------------------------------------------- #
# bit-identity: store-backed == in-RAM, across the golden configs
# --------------------------------------------------------------------- #
def _paired_engines(factory, tmp_path, n_epochs=3, n_users=200):
    """The same ingest replayed into an in-RAM and a store-backed engine."""
    protocol = factory()
    in_ram = Engine.open(factory())
    stored = Engine.open(factory(), store_dir=str(tmp_path / "store"))
    for epoch in range(n_epochs):
        items = _items_for(protocol, n_users, epoch)
        for engine in (in_ram, stored):
            engine.session(epoch=epoch).absorb(
                items, rng=np.random.default_rng(100 + epoch)
            )
        stored.seal_epoch(epoch)
    return protocol, in_ram, stored


@pytest.mark.parametrize("case", sorted(CASES))
class TestGoldenBitIdentity:
    def test_sealed_windows_match_in_ram(self, case, tmp_path):
        protocol, in_ram, stored = _paired_engines(CASES[case], tmp_path)
        assert list(stored.live_epochs) == []
        assert list(stored.sealed_epochs) == [0, 1, 2]
        for window in ("all", last(2), [0, 2]):
            _check(
                case,
                stored.estimator(window).estimated_frequencies(),
                in_ram.estimator(window).estimated_frequencies(),
            )

    def test_restore_from_store_dir_matches(self, case, tmp_path):
        _, in_ram, stored = _paired_engines(CASES[case], tmp_path)
        stored.checkpoint()
        restored = Engine.restore(str(tmp_path / "store"))
        assert restored.epochs == in_ram.epochs
        assert restored.n_reports() == in_ram.n_reports()
        _check(
            case,
            restored.estimator(last(2)).estimated_frequencies(),
            in_ram.estimator(last(2)).estimated_frequencies(),
        )


@pytest.mark.parametrize("handle", sorted(HANDLES))
class TestHandlesRoundTrip:
    """Registry handles (incl. grid2d) through seal -> restore -> query."""

    def test_store_round_trip_is_bit_identical(self, handle, tmp_path):
        protocol = make_protocol(handle, 16, 1.2, **HANDLES[handle])

        def factory():
            return make_protocol(handle, 16, 1.2, **HANDLES[handle])

        _, in_ram, stored = _paired_engines(factory, tmp_path)
        stored.checkpoint()
        restored = Engine.restore(str(tmp_path / "store"))
        for engine in (stored, restored):
            for window in ("all", last(2)):
                assert np.array_equal(
                    _fingerprint(protocol, engine.estimator(window)),
                    _fingerprint(protocol, in_ram.estimator(window)),
                )

    def test_monolithic_export_from_store(self, handle, tmp_path):
        """A store-backed engine still writes classic v2 checkpoints."""
        protocol = make_protocol(handle, 16, 1.2, **HANDLES[handle])

        def factory():
            return make_protocol(handle, 16, 1.2, **HANDLES[handle])

        _, in_ram, stored = _paired_engines(factory, tmp_path)
        path = str(tmp_path / "mono.ckpt")
        stored.checkpoint(path)
        restored = Engine.restore(path)
        assert list(restored.epochs) == [0, 1, 2]
        assert np.array_equal(
            _fingerprint(protocol, restored.estimator()),
            _fingerprint(protocol, in_ram.estimator()),
        )


class TestPushdownPlan:
    def test_oracle_children_support_pushdown(self, tmp_path):
        _, _, stored = _paired_engines(
            lambda: make_protocol("hh", 16, 1.2, branching=4), tmp_path
        )
        assert all(stored.store.supports_pushdown(e) for e in stored.sealed_epochs)
        state = stored.store.pushdown_state(stored.sealed_epochs)
        assert state is not None
        assert state.n_reports == 600

    def test_she_falls_back_to_load_and_merge(self, tmp_path):
        """SHE keeps float partials: no pushdown, but still bit-identical."""
        factory = lambda: make_protocol("flat", 16, 1.1, oracle="she")
        _, in_ram, stored = _paired_engines(factory, tmp_path)
        assert not any(stored.store.supports_pushdown(e) for e in stored.sealed_epochs)
        assert stored.store.pushdown_state(stored.sealed_epochs) is None
        assert np.array_equal(
            stored.estimator("all").estimated_frequencies(),
            in_ram.estimator("all").estimated_frequencies(),
        )

    def test_split_window_partitions_in_order(self):
        assert split_window([1, 3, 5, 7], live=[3, 7]) == ([3, 7], [1, 5])
        assert split_window([], live=[1]) == ([], [])


# --------------------------------------------------------------------- #
# incremental checkpoints and dirty tracking
# --------------------------------------------------------------------- #
class TestIncrementalCheckpoint:
    def _stored(self, tmp_path, n_epochs=6):
        engine = Engine.open(
            make_protocol("hh", 16, 1.2, branching=4),
            store_dir=str(tmp_path / "store"),
        )
        rng = np.random.default_rng(5)
        for epoch in range(n_epochs):
            engine.session(epoch=epoch).absorb(
                np.arange(16).repeat(4), rng=rng
            )
            engine.seal_epoch(epoch)
        return engine

    def test_checkpoint_rewrites_only_dirty_segments(self, tmp_path):
        engine = self._stored(tmp_path)
        store = engine.store
        written_before = store.segments_written
        engine.checkpoint()  # everything sealed and clean: a manifest-only write
        assert store.segments_written == written_before

        engine.session(epoch=2).absorb(
            np.arange(16), rng=np.random.default_rng(9)
        )  # un-seals epoch 2 and dirties it
        assert 2 in engine.live_epochs
        engine.checkpoint()
        assert store.segments_written == written_before + 1

    def test_clean_segments_stay_byte_identical(self, tmp_path):
        engine = self._stored(tmp_path)
        store = engine.store
        before = {
            epoch: open(store.segment_path(epoch), "rb").read()
            for epoch in engine.sealed_epochs
        }
        engine.session(epoch=4).absorb(np.arange(16), rng=np.random.default_rng(9))
        engine.checkpoint()
        engine.seal_epoch(4)
        for epoch, blob in before.items():
            with open(store.segment_path(epoch), "rb") as fh:
                on_disk = fh.read()
            if epoch == 4:
                assert on_disk != blob
            else:
                assert on_disk == blob

    def test_epoch_stats_reports_sizes_without_unsealing(self, tmp_path):
        engine = self._stored(tmp_path, n_epochs=3)
        stats = engine.epoch_stats()
        assert sorted(stats) == [0, 1, 2]
        for epoch, entry in stats.items():
            assert entry["sealed"] is True
            assert entry["n_reports"] == 64
            assert entry["on_disk"] == os.path.getsize(
                engine.store.segment_path(epoch)
            )
        assert list(engine.live_epochs) == []  # stats never materialized a segment


# --------------------------------------------------------------------- #
# corruption and misuse: every failure names its cause
# --------------------------------------------------------------------- #
class TestCorruption:
    def _store_dir(self, tmp_path, n_epochs=2):
        engine = Engine.open(
            make_protocol("hh", 16, 1.2, branching=4),
            store_dir=str(tmp_path / "store"),
        )
        for epoch in range(n_epochs):
            engine.session(epoch=epoch).absorb(
                np.arange(16).repeat(2), rng=np.random.default_rng(epoch)
            )
            engine.seal_epoch(epoch)
        engine.checkpoint()
        engine.store.close()
        return str(tmp_path / "store")

    def test_torn_segment_tail(self, tmp_path):
        store_dir = self._store_dir(tmp_path)
        path = os.path.join(store_dir, "epoch-00000001.seg")
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 3)
        restored = Engine.restore(store_dir)  # lazy: restore itself succeeds
        # A window whose plan must read the torn leaf fails loud...
        with pytest.raises(SerializationError, match=r"epoch 1.*torn"):
            restored.estimator([1])
        # ...and so does anything that decodes the leaf state directly.
        with pytest.raises(SerializationError, match=r"epoch 1.*torn"):
            restored.store.load_state(1)
        # The "all" window, however, is covered by the L1 aggregate built
        # before the tear, so the (correct) answer survives leaf damage.
        assert restored.estimator("all") is not None

    def test_missing_segment_file(self, tmp_path):
        store_dir = self._store_dir(tmp_path)
        os.remove(os.path.join(store_dir, "epoch-00000000.seg"))
        restored = Engine.restore(store_dir)
        with pytest.raises(SerializationError, match="epoch 0"):
            restored.estimator([0])
        with pytest.raises(SerializationError, match="epoch 0"):
            restored.store.read_state_bytes(0)

    def test_spec_hash_mismatch(self, tmp_path):
        store_dir = self._store_dir(tmp_path)
        manifest_path = os.path.join(store_dir, "MANIFEST.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        other = make_protocol("flat", 16, 1.2).spec()
        manifest["protocol"] = other
        manifest["spec_hash"] = spec_fingerprint(other)
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        restored = Engine.restore(store_dir)
        with pytest.raises(SerializationError, match="spec"):
            restored.estimator("all")

    def test_opening_with_wrong_spec_fails_eagerly(self, tmp_path):
        store_dir = self._store_dir(tmp_path)
        with pytest.raises(SerializationError, match="different .* configuration"):
            EpochStore(store_dir, make_protocol("flat", 16, 1.2).spec())

    def test_monolithic_checkpoint_is_not_a_store(self, tmp_path):
        engine = Engine.open(make_protocol("hh", 16, 1.2, branching=4))
        engine.session(epoch=0).absorb(np.arange(16), rng=np.random.default_rng(0))
        path = str(tmp_path / "mono.ckpt")
        engine.checkpoint(path)
        with pytest.raises(SerializationError, match="monolithic engine checkpoint"):
            EpochStore(path, engine.spec())
        with pytest.raises(SystemExit, match="monolithic"):
            from repro.cli import _restore_engine

            _restore_engine(store_dir=path)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SerializationError, match="MANIFEST"):
            EpochStore(str(tmp_path / "nothing"), create=False)


# --------------------------------------------------------------------- #
# property-based: spill -> evict -> query == in-RAM, any epoch pattern
# --------------------------------------------------------------------- #
class TestStoreProperties:
    @given(
        plan=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # epoch key
                st.integers(min_value=1, max_value=30),  # users in this batch
                st.booleans(),  # seal after this batch?
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_any_spill_pattern_matches_in_ram(self, plan, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("store-prop")
        in_ram = Engine.open("hh", domain_size=16, epsilon=1.2, branching=4)
        stored = Engine.open(
            "hh",
            domain_size=16,
            epsilon=1.2,
            branching=4,
            store_dir=str(tmp_path / "store"),
        )
        for step, (epoch, n_users, seal) in enumerate(plan):
            items = np.random.default_rng(step).integers(0, 16, size=n_users)
            for engine in (in_ram, stored):
                engine.session(epoch=epoch).absorb(
                    items, rng=np.random.default_rng(1000 + step)
                )
            if seal:
                stored.seal_epoch(epoch)
        assert stored.epochs == in_ram.epochs
        assert stored.n_reports() == in_ram.n_reports()
        assert np.array_equal(
            stored.estimator("all").estimated_frequencies(),
            in_ram.estimator("all").estimated_frequencies(),
        )
        stored.checkpoint()
        restored = Engine.restore(str(tmp_path / "store"))
        assert np.array_equal(
            restored.estimator("all").estimated_frequencies(),
            in_ram.estimator("all").estimated_frequencies(),
        )
