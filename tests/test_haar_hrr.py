"""Tests for the HaarHRR range-query protocol (Section 4.6)."""

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolUsageError
from repro.wavelet import HaarHRR
from repro.wavelet.haar import haar_transform


class TestConfiguration:
    def test_padding(self):
        protocol = HaarHRR(100, 1.0)
        assert protocol.padded_size == 128
        assert protocol.height == 7

    def test_domain_of_one_rejected(self):
        with pytest.raises(ValueError):
            HaarHRR(1, 1.0)

    def test_level_probabilities_default_uniform(self):
        protocol = HaarHRR(64, 1.0)
        assert np.allclose(protocol.level_probabilities, 1.0 / 6.0)

    def test_level_probabilities_validated(self):
        with pytest.raises(ValueError):
            HaarHRR(64, 1.0, level_probabilities=[0.5, 0.5])

    def test_name(self):
        assert HaarHRR(64, 1.0).name == "HaarHRR"


class TestEndToEnd:
    def test_range_estimates_close_to_truth(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 2.0)
        estimator = protocol.run(small_cauchy.items, rng=3)
        truth = small_cauchy.frequencies()
        for left, right in [(0, 63), (10, 40), (5, 5), (32, 60)]:
            expected = truth[left : right + 1].sum()
            assert estimator.range_query((left, right)) == pytest.approx(expected, abs=0.12)

    def test_full_domain_range_is_one(self, small_cauchy):
        """The smooth coefficient is hard-coded, so the full range is exact."""
        protocol = HaarHRR(small_cauchy.domain_size, 0.5)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=4)
        assert estimator.range_query((0, small_cauchy.domain_size - 1)) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_simulated_estimates_unbiased(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        truth = small_cauchy.frequencies()[10:41].sum()
        answers = [
            protocol.simulate_aggregate(small_cauchy.counts(), rng=seed).range_query((10, 40))
            for seed in range(12)
        ]
        assert np.mean(answers) == pytest.approx(truth, abs=0.05)

    def test_zero_users_rejected(self):
        protocol = HaarHRR(16, 1.0)
        with pytest.raises(ProtocolUsageError):
            protocol.run(np.array([], dtype=int), rng=0)
        with pytest.raises(ProtocolUsageError):
            protocol.simulate_aggregate(np.zeros(16), rng=0)

    def test_counts_length_checked(self):
        with pytest.raises(ValueError):
            HaarHRR(16, 1.0).simulate_aggregate(np.ones(8), rng=0)

    def test_level_user_counts_partition_population(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.run(small_cauchy.items, rng=5)
        counts = estimator.level_user_counts
        assert counts[1:].sum() == small_cauchy.n_users


class TestEstimator:
    def test_coefficient_evaluation_matches_prefix_sums(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=6)
        for query in [(0, 5), (7, 42), (20, 63), (13, 13)]:
            assert estimator.range_query_from_coefficients(query) == pytest.approx(
                estimator.range_query(query), abs=1e-9
            )

    def test_smooth_coefficient_is_exact(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=7)
        assert estimator.coefficients.smooth == pytest.approx(
            1.0 / math.sqrt(protocol.padded_size)
        )

    def test_noiseless_limit_recovers_exact_coefficients(self, small_cauchy):
        """With a huge epsilon the estimated coefficients converge to exact."""
        protocol = HaarHRR(small_cauchy.domain_size, 12.0)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=8)
        exact = haar_transform(small_cauchy.frequencies())
        estimated = estimator.coefficients
        for exact_level, estimated_level in zip(exact.details, estimated.details):
            assert np.allclose(exact_level, estimated_level, atol=0.03)

    def test_estimated_frequencies_sum_to_one(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=9)
        assert estimator.estimated_frequencies().sum() == pytest.approx(1.0, abs=1e-9)


class TestTheory:
    def test_variance_independent_of_range_length(self):
        protocol = HaarHRR(1024, 1.1)
        assert protocol.theoretical_range_variance(2, 10**5) == pytest.approx(
            protocol.theoretical_range_variance(1000, 10**5)
        )

    def test_variance_grows_with_log_squared_domain(self):
        small = HaarHRR(2**8, 1.1).theoretical_range_variance(10, 10**5)
        large = HaarHRR(2**16, 1.1).theoretical_range_variance(10, 10**5)
        assert large / small == pytest.approx((16 / 8) ** 2)

    def test_variance_bound_validation(self):
        protocol = HaarHRR(64, 1.1)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(0, 100)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(10, -5)
