"""Tests for the hierarchical-histogram protocol (Sections 4.3-4.5)."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidRangeError, ProtocolUsageError
from repro.hierarchy import HierarchicalHistogram
from repro.hierarchy.consistency import consistency_violation


class TestConfiguration:
    def test_naming_matches_paper(self):
        assert HierarchicalHistogram(64, 1.0, oracle="oue").name == "TreeOUECI"
        assert (
            HierarchicalHistogram(64, 1.0, oracle="hrr", consistency=False).name
            == "TreeHRR"
        )
        assert HierarchicalHistogram(64, 1.0, oracle="olh").name == "TreeOLHCI"

    def test_level_probabilities_default_uniform(self):
        protocol = HierarchicalHistogram(64, 1.0, branching=2)
        probs = protocol.level_probabilities
        assert len(probs) == 6
        assert np.allclose(probs, 1.0 / 6.0)

    def test_level_probabilities_normalised(self):
        protocol = HierarchicalHistogram(
            16, 1.0, branching=2, level_probabilities=[1, 1, 1, 1]
        )
        assert np.allclose(protocol.level_probabilities, 0.25)

    def test_level_probabilities_validated(self):
        with pytest.raises(ValueError):
            HierarchicalHistogram(16, 1.0, branching=2, level_probabilities=[0.5, 0.5])

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalHistogram(16, 1.0, level_strategy="other")

    def test_domain_of_one_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalHistogram(1, 1.0)


class TestEndToEnd:
    @pytest.mark.parametrize("oracle", ["oue", "hrr", "grr"])
    def test_range_estimates_close_to_truth(self, small_cauchy, oracle):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 2.0, branching=4, oracle=oracle
        )
        estimator = protocol.run(small_cauchy.items, rng=3)
        truth = small_cauchy.frequencies()
        for left, right in [(0, 63), (10, 40), (5, 5), (32, 60)]:
            expected = truth[left : right + 1].sum()
            assert estimator.range_query((left, right)) == pytest.approx(expected, abs=0.12)

    def test_simulated_matches_per_user_statistically(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 1.1, branching=4, oracle="oue"
        )
        truth = small_cauchy.frequencies()[10:41].sum()
        per_user = [
            protocol.run(small_cauchy.items, rng=seed).range_query((10, 40))
            for seed in range(8)
        ]
        simulated = [
            protocol.simulate_aggregate(small_cauchy.counts(), rng=100 + seed).range_query((10, 40))
            for seed in range(8)
        ]
        assert np.mean(per_user) == pytest.approx(truth, abs=0.08)
        assert np.mean(simulated) == pytest.approx(truth, abs=0.08)

    def test_zero_users_rejected(self):
        protocol = HierarchicalHistogram(16, 1.0)
        with pytest.raises(ProtocolUsageError):
            protocol.run(np.array([], dtype=int), rng=0)
        with pytest.raises(ProtocolUsageError):
            protocol.simulate_aggregate(np.zeros(16), rng=0)

    def test_simulated_counts_length_checked(self):
        protocol = HierarchicalHistogram(16, 1.0)
        with pytest.raises(ValueError):
            protocol.simulate_aggregate(np.ones(8), rng=0)

    def test_level_user_counts_partition_population(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 1.1, branching=2, oracle="hrr"
        )
        estimator = protocol.run(small_cauchy.items, rng=5)
        counts = estimator.level_user_counts
        assert counts[0] == small_cauchy.n_users
        assert counts[1:].sum() == small_cauchy.n_users

    def test_split_strategy_runs(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size,
            1.1,
            branching=4,
            oracle="hrr",
            level_strategy="split",
        )
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=4)
        truth = small_cauchy.frequencies()[0:32].sum()
        assert estimator.range_query((0, 31)) == pytest.approx(truth, abs=0.2)


class TestEstimator:
    def test_consistency_enforced(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 1.1, branching=4, oracle="oue", consistency=True
        )
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=6)
        assert estimator.is_consistent
        assert consistency_violation(estimator.level_fractions, 4) < 1e-9

    def test_inconsistent_estimator_can_be_fixed(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 1.1, branching=4, oracle="oue", consistency=False
        )
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=6)
        assert not estimator.is_consistent
        fixed = estimator.with_consistency()
        assert fixed.is_consistent
        assert consistency_violation(fixed.level_fractions, 4) < 1e-9
        # Applying again is a no-op object-wise.
        assert fixed.with_consistency() is fixed

    def test_consistent_answers_match_leaf_sums(self, small_cauchy):
        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 1.1, branching=2, oracle="hrr", consistency=True
        )
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=7)
        freqs = estimator.estimated_frequencies()
        for left, right in [(0, 10), (5, 50), (33, 63)]:
            assert estimator.range_query((left, right)) == pytest.approx(
                freqs[left : right + 1].sum(), abs=1e-9
            )

    def test_range_query_bounds_checked(self, small_cauchy):
        protocol = HierarchicalHistogram(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=8)
        with pytest.raises(InvalidRangeError):
            estimator.range_query((0, small_cauchy.domain_size))

    def test_batch_queries_match_single_queries(self, small_cauchy):
        protocol = HierarchicalHistogram(small_cauchy.domain_size, 1.1, branching=4)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=9)
        queries = [(0, 5), (3, 40), (20, 63)]
        batch = estimator.range_queries(queries)
        singles = [estimator.range_query(query) for query in queries]
        assert np.allclose(batch, singles)

    def test_node_value_accessor(self, small_cauchy):
        protocol = HierarchicalHistogram(small_cauchy.domain_size, 1.1, branching=4)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=10)
        assert estimator.node_value(0, 0) == pytest.approx(1.0)


class TestTheory:
    def test_variance_bound_decreases_with_users(self):
        protocol = HierarchicalHistogram(1024, 1.1, branching=4)
        assert protocol.theoretical_range_variance(100, 10_000) > (
            protocol.theoretical_range_variance(100, 1_000_000)
        )

    def test_consistency_tightens_bound(self):
        loose = HierarchicalHistogram(1024, 1.1, branching=8, consistency=False)
        tight = HierarchicalHistogram(1024, 1.1, branching=8, consistency=True)
        assert tight.theoretical_range_variance(256, 10**5) < (
            loose.theoretical_range_variance(256, 10**5)
        )

    def test_split_strategy_pays_height_penalty(self):
        sample = HierarchicalHistogram(1024, 1.1, branching=2, level_strategy="sample")
        split = HierarchicalHistogram(1024, 1.1, branching=2, level_strategy="split")
        assert split.theoretical_range_variance(512, 10**5) > (
            sample.theoretical_range_variance(512, 10**5)
        )

    def test_variance_bound_validation(self):
        protocol = HierarchicalHistogram(64, 1.1)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(0, 100)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(10, 0)
