"""Shared fixtures for the test-suite.

All randomized tests use fixed seeds so the suite is deterministic, and all
accuracy assertions use tolerances that are several standard deviations wide
for the chosen population sizes so that the (seeded) noise cannot flip them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import cauchy_population, zipf_population


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: fault-injection tests that kill processes (slower; run in CI)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cauchy():
    """A small Cauchy population (D = 64) for fast end-to-end tests."""
    return cauchy_population(domain_size=64, n_users=20_000, center_fraction=0.4, rng=7)


@pytest.fixture
def medium_cauchy():
    """A medium Cauchy population (D = 256) for accuracy tests."""
    return cauchy_population(domain_size=256, n_users=60_000, center_fraction=0.4, rng=11)


@pytest.fixture
def small_zipf():
    """A skewed Zipf population (D = 128)."""
    return zipf_population(domain_size=128, n_users=30_000, exponent=1.3, rng=13)
