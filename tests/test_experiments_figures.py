"""Smoke + shape tests for every figure reproduction driver.

These run the actual experiment code end-to-end at a deliberately tiny scale
and check that the outputs have the right structure and obey the paper's
coarse qualitative claims where those are robust even at small scale.
"""

import numpy as np

from repro.experiments.ablations import (
    format_ablation,
    run_consistency_ablation,
    run_prefix_vs_range,
    run_sampling_vs_splitting,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure4 import best_method_per_cell, format_figure4, run_figure4
from repro.experiments.figure5 import (
    format_epsilon_sweep,
    run_figure5,
    winners_by_epsilon,
)
from repro.experiments.figure6 import (
    format_figure6,
    format_prefix_improvement,
    prefix_improvement,
    run_figure6,
)
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, max_relative_spread, run_figure8
from repro.experiments.figure9 import format_figure9, max_quantile_error, run_figure9
from repro.experiments.__main__ import EXPERIMENTS, main


TINY = ExperimentConfig(
    domain_sizes=(64,),
    n_users=2**14,
    epsilon=1.1,
    epsilons=(0.4, 1.1),
    center_fractions=(0.2, 0.6),
    repetitions=1,
    branching_factors=(2, 4),
    num_start_points=6,
    exhaustive_domain_limit=64,
    centralized_domain_sizes=(32, 64),
    seed=7,
)


class TestFigure4:
    def test_runs_and_formats(self):
        cells = run_figure4(TINY, rng=1)
        assert cells
        methods = {cell.method for cell in cells}
        assert "FlatOUE" in methods and "HaarHRR" in methods
        assert any(method.startswith("TreeOUE") for method in methods)
        text = format_figure4(cells)
        assert "Figure 4" in text and "HaarHRR" in text

    def test_flat_not_best_for_long_ranges(self):
        cells = run_figure4(TINY, rng=2)
        best = best_method_per_cell(cells)
        long_range = max(length for (_, length) in best)
        assert best[(64, long_range)] != "FlatOUE"


class TestFigures5And6:
    def test_epsilon_sweep_structure(self):
        cells = run_figure5(TINY, rng=3)
        assert {cell.method for cell in cells} == {"HHc2", "HHc4", "HHc16", "HaarHRR"}
        assert {cell.epsilon for cell in cells} == {0.4, 1.1}
        text = format_epsilon_sweep(cells, "Figure 5")
        assert "MSE x1000" in text

    def test_error_decreases_with_epsilon(self):
        cells = run_figure5(TINY, rng=4)
        for method in ("HHc4", "HaarHRR"):
            low = next(c for c in cells if c.method == method and c.epsilon == 0.4)
            high = next(c for c in cells if c.method == method and c.epsilon == 1.1)
            assert high.result.mse_mean < low.result.mse_mean

    def test_winner_map_covers_all_cells(self):
        cells = run_figure5(TINY, rng=5)
        winners = winners_by_epsilon(cells)
        assert set(winners) == {(64, 0.4), (64, 1.1)}

    def test_prefix_sweep_and_improvement(self):
        range_cells = run_figure5(TINY, rng=6)
        prefix_cells = run_figure6(TINY, rng=6)
        assert len(prefix_cells) == len(range_cells)
        ratios = prefix_improvement(range_cells, prefix_cells)
        assert ratios
        # Prefixes should not be dramatically harder than arbitrary ranges.
        assert np.median(list(ratios.values())) < 1.6
        assert "prefix/range" in format_prefix_improvement(ratios)
        assert "Figure 6" in format_figure6(prefix_cells)


class TestFigure7:
    def test_rows_and_ratios(self):
        rows = run_figure7(TINY, rng=7)
        assert [row.domain_size for row in rows] == [32, 64]
        for row in rows:
            assert row.central_wavelet_mse > 0
            assert row.central_hh16_mse > 0
            assert row.local_ratio_haar_vs_hh > 0
        assert "Figure 7" in format_figure7(rows)

    def test_centralized_error_below_local(self):
        rows = run_figure7(TINY, rng=8)
        for row in rows:
            assert row.central_hh16_mse < row.local_hh4_mse


class TestFigure8:
    def test_structure_and_stability(self):
        cells = run_figure8(TINY, rng=9)
        assert {cell.method for cell in cells} == {"HHc4", "HaarHRR"}
        assert {cell.center_fraction for cell in cells} == {0.2, 0.6}
        assert max_relative_spread(cells) < 5.0
        assert "Figure 8" in format_figure8(cells)


class TestFigure9:
    def test_quantile_errors_small(self):
        cells = run_figure9(TINY, rng=10)
        assert {cell.method for cell in cells} == {"HHc2", "HaarHRR"}
        assert len(cells) == 2 * 2 * 9
        assert max_quantile_error(cells) < 0.25
        assert "Figure 9" in format_figure9(cells)


class TestAblations:
    def test_sampling_beats_splitting(self):
        rows = run_sampling_vs_splitting(TINY, rng=11)
        sample = next(r for r in rows if r.label.endswith("sample"))
        split = next(r for r in rows if r.label.endswith("split"))
        assert sample.mse < split.mse

    def test_consistency_rows_present(self):
        rows = run_consistency_ablation(TINY, rng=12)
        labels = {row.label for row in rows}
        assert any("CI" in label for label in labels)
        assert any("CI" not in label for label in labels)
        assert "variant" in format_ablation(rows, "A2")

    def test_prefix_vs_range_rows(self):
        rows = run_prefix_vs_range(TINY, rng=13)
        assert any(row.label.endswith("prefix") for row in rows)
        assert any(row.label.endswith("range") for row in rows)


class TestCli:
    def test_experiment_registry(self):
        assert set(EXPERIMENTS) == {
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "ablations",
        }

    def test_main_runs_figure5_smoke(self, capsys):
        exit_code = main(["figure5", "--preset", "smoke", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "figure5" in captured.out
        assert "MSE x1000" in captured.out
