"""Tests for the SUE (basic RAPPOR) and Histogram Encoding oracles."""

import numpy as np
import pytest

from repro.frequency_oracles import (
    OptimizedUnaryEncoding,
    SummationHistogramEncoding,
    SymmetricUnaryEncoding,
    ThresholdHistogramEncoding,
    make_oracle,
)


class TestSymmetricUnaryEncoding:
    def test_probabilities(self):
        oracle = SymmetricUnaryEncoding(16, 2.0)
        half = np.exp(1.0)
        assert oracle.keep_probability == pytest.approx(half / (half + 1))

    def test_estimates_recover_distribution(self, rng):
        oracle = SymmetricUnaryEncoding(8, 3.0)
        probabilities = np.array([0.35, 0.25, 0.15, 0.1, 0.05, 0.04, 0.03, 0.03])
        items = rng.choice(8, size=40_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, probabilities, atol=0.04)

    def test_simulation_unbiased(self, rng):
        oracle = SymmetricUnaryEncoding(8, 1.1)
        counts = np.array([500, 1500, 250, 250, 1000, 300, 100, 100], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)

    def test_worse_than_oue(self):
        """OUE was designed precisely to beat SUE's variance at every epsilon."""
        for epsilon in (0.5, 1.1, 2.0):
            sue = SymmetricUnaryEncoding(16, epsilon)
            oue = OptimizedUnaryEncoding(16, epsilon)
            assert sue.variance_per_user() > oue.variance_per_user()

    def test_report_shape(self, rng):
        oracle = SymmetricUnaryEncoding(8, 1.0)
        reports = oracle.privatize(rng.integers(0, 8, size=50), rng=rng)
        assert reports.shape == (50, 8)
        assert set(np.unique(reports)) <= {0, 1}

    def test_aggregate_validation(self):
        oracle = SymmetricUnaryEncoding(8, 1.0)
        with pytest.raises(ValueError):
            oracle.aggregate(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            oracle.aggregate(np.zeros((0, 8)), n_users=0)


class TestSummationHistogramEncoding:
    def test_noise_scale(self):
        assert SummationHistogramEncoding(16, 2.0).noise_scale == pytest.approx(1.0)

    def test_estimates_recover_distribution(self, rng):
        oracle = SummationHistogramEncoding(8, 2.0)
        probabilities = np.array([0.3, 0.3, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05])
        items = rng.choice(8, size=30_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, probabilities, atol=0.05)

    def test_variance_formula(self):
        oracle = SummationHistogramEncoding(16, 1.0)
        assert oracle.variance_per_user() == pytest.approx(8.0)

    def test_simulation_unbiased(self, rng):
        oracle = SummationHistogramEncoding(8, 1.1)
        counts = np.array([400, 1600, 200, 300, 900, 350, 150, 100], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)

    def test_simulation_spread_matches_per_user(self, rng):
        oracle = SummationHistogramEncoding(4, 1.0)
        items = np.repeat(np.arange(4), [400, 300, 200, 100])
        counts = np.bincount(items, minlength=4).astype(float)
        per_user = np.array([oracle.estimate(items, rng=rng) for _ in range(60)])
        simulated = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(60)]
        )
        assert np.allclose(per_user.std(axis=0), simulated.std(axis=0), rtol=0.6)

    def test_aggregate_validation(self):
        oracle = SummationHistogramEncoding(8, 1.0)
        with pytest.raises(ValueError):
            oracle.aggregate(np.zeros((3, 5)))


class TestThresholdHistogramEncoding:
    def test_threshold_default_and_override(self):
        assert ThresholdHistogramEncoding(16, 1.0).threshold == pytest.approx(0.67)
        assert ThresholdHistogramEncoding(16, 1.0, threshold=0.9).threshold == 0.9
        with pytest.raises(ValueError):
            ThresholdHistogramEncoding(16, 1.0, threshold=2.0)

    def test_hit_probabilities_ordering(self):
        p, q = ThresholdHistogramEncoding(16, 1.0).hit_probabilities
        assert 0 < q < p < 1

    def test_estimates_recover_distribution(self, rng):
        oracle = ThresholdHistogramEncoding(8, 3.0)
        probabilities = np.array([0.3, 0.3, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05])
        items = rng.choice(8, size=30_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, probabilities, atol=0.05)

    def test_simulation_unbiased(self, rng):
        oracle = ThresholdHistogramEncoding(8, 1.1)
        counts = np.array([400, 1600, 200, 300, 900, 350, 150, 100], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)

    def test_reports_are_bit_vectors(self, rng):
        oracle = ThresholdHistogramEncoding(8, 1.0)
        reports = oracle.privatize(rng.integers(0, 8, size=100), rng=rng)
        assert set(np.unique(reports)) <= {0, 1}

    def test_variance_positive(self):
        assert ThresholdHistogramEncoding(8, 1.0).variance_per_user() > 0


class TestHierarchicalIntegrationWithNewOracles:
    @pytest.mark.parametrize("oracle_name", ["sue", "she", "the"])
    def test_hh_accepts_every_registered_oracle(self, small_cauchy, oracle_name):
        """The HH framework is oracle-agnostic; new oracles plug straight in."""
        from repro.hierarchy import HierarchicalHistogram

        protocol = HierarchicalHistogram(
            small_cauchy.domain_size, 2.0, branching=4, oracle=oracle_name
        )
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=1)
        truth = small_cauchy.frequencies()[8:40].sum()
        assert estimator.range_query((8, 39)) == pytest.approx(truth, abs=0.15)

    def test_make_oracle_handles(self):
        assert isinstance(make_oracle("sue", 8, 1.0), SymmetricUnaryEncoding)
        assert isinstance(make_oracle("she", 8, 1.0), SummationHistogramEncoding)
        assert isinstance(make_oracle("the", 8, 1.0), ThresholdHistogramEncoding)
