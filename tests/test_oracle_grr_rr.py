"""Tests for generalized and binary randomized response."""

import numpy as np
import pytest

from repro.frequency_oracles import GeneralizedRandomizedResponse
from repro.frequency_oracles.grr import BinaryRandomizedResponse


class TestGRRConfiguration:
    def test_probabilities(self):
        oracle = GeneralizedRandomizedResponse(4, np.log(3.0))
        assert oracle.keep_probability == pytest.approx(3.0 / 6.0)
        assert oracle.lie_probability == pytest.approx((1 - 0.5) / 3)

    def test_requires_at_least_two_items(self):
        with pytest.raises(ValueError):
            GeneralizedRandomizedResponse(1, 1.0)


class TestGRRProtocol:
    def test_reports_stay_in_domain(self, rng):
        oracle = GeneralizedRandomizedResponse(10, 1.0)
        items = rng.integers(0, 10, size=5000)
        reports = oracle.privatize(items, rng=rng)
        assert reports.min() >= 0 and reports.max() < 10

    def test_estimates_recover_distribution(self, rng):
        oracle = GeneralizedRandomizedResponse(5, 3.0)
        probabilities = np.array([0.5, 0.2, 0.15, 0.1, 0.05])
        items = rng.choice(5, size=40_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, probabilities, atol=0.03)

    def test_high_epsilon_is_nearly_exact(self, rng):
        oracle = GeneralizedRandomizedResponse(4, 10.0)
        items = np.repeat(np.arange(4), 1000)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, 0.25, atol=0.02)

    def test_aggregate_requires_users(self):
        oracle = GeneralizedRandomizedResponse(4, 1.0)
        with pytest.raises(ValueError):
            oracle.aggregate(np.array([], dtype=int), n_users=0)

    def test_simulation_unbiased(self, rng):
        oracle = GeneralizedRandomizedResponse(6, 1.1)
        counts = np.array([100, 900, 400, 250, 300, 50], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)


class TestBinaryRR:
    def test_keep_probability(self):
        oracle = BinaryRandomizedResponse(np.log(3.0))
        assert oracle.keep_probability == pytest.approx(0.75)

    def test_value_perturbation_and_debias(self, rng):
        oracle = BinaryRandomizedResponse(1.1)
        values = np.ones(30_000)
        reported = oracle.privatize_values(values, rng=rng)
        assert set(np.unique(reported)) <= {-1.0, 1.0}
        debiased = oracle.debias_values(reported)
        assert debiased.mean() == pytest.approx(1.0, abs=0.05)

    def test_value_perturbation_negative_inputs(self, rng):
        oracle = BinaryRandomizedResponse(1.1)
        values = -np.ones(30_000)
        debiased = oracle.debias_values(oracle.privatize_values(values, rng=rng))
        assert debiased.mean() == pytest.approx(-1.0, abs=0.05)

    def test_binary_estimate(self, rng):
        oracle = BinaryRandomizedResponse(2.0)
        items = np.array([1] * 7000 + [0] * 3000)
        estimates = oracle.estimate(items, rng=rng)
        assert estimates[1] == pytest.approx(0.7, abs=0.04)
        assert estimates[0] == pytest.approx(0.3, abs=0.04)

    def test_binary_simulation(self, rng):
        oracle = BinaryRandomizedResponse(2.0)
        repeats = np.array(
            [oracle.estimate_from_counts(np.array([3000.0, 7000.0]), rng=rng) for _ in range(100)]
        )
        assert repeats.mean(axis=0)[1] == pytest.approx(0.7, abs=0.02)

    def test_variance_positive(self):
        assert BinaryRandomizedResponse(0.5).variance_per_user() > 0
