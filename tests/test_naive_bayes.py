"""Tests for the Naive Bayes application built on LDP range queries."""

import numpy as np
import pytest

from repro.applications import AttributeSpec, LDPNaiveBayes
from repro.core.exceptions import ProtocolUsageError
from repro.hierarchy import HierarchicalHistogram


def _two_class_dataset(rng, n_per_class=8_000, domain=64):
    """Two well-separated classes over two numeric attributes."""
    low = np.clip(rng.normal(16, 5, size=(n_per_class, 2)), 0, domain - 1).astype(int)
    high = np.clip(rng.normal(48, 5, size=(n_per_class, 2)), 0, domain - 1).astype(int)
    features = np.vstack([low, high])
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    return features, labels


def _protocol_factory(domain_size):
    return HierarchicalHistogram(domain_size, epsilon=2.0, branching=4, oracle="hrr")


class TestAttributeSpec:
    def test_bin_edges_cover_domain(self):
        spec = AttributeSpec("age", 64, num_bins=8)
        edges = spec.bin_edges()
        assert edges[0][0] == 0
        assert edges[-1][1] == 63
        covered = sum(right - left + 1 for left, right in edges)
        assert covered == 64

    def test_bin_of(self):
        spec = AttributeSpec("age", 64, num_bins=8)
        assert spec.bin_of(0) == 0
        assert spec.bin_of(63) == 7
        assert spec.bin_of(32) == 4
        with pytest.raises(ValueError):
            spec.bin_of(64)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", 4, num_bins=10).bin_edges()


class TestClassifier:
    def test_learns_separable_classes(self, rng):
        features, labels = _two_class_dataset(rng)
        attributes = [AttributeSpec("a", 64), AttributeSpec("b", 64)]
        classifier = LDPNaiveBayes(attributes, _protocol_factory)
        classifier.fit([features[:, 0], features[:, 1]], labels, rng=rng)
        test_samples = np.array([[10, 12], [50, 52], [15, 20], [45, 40]])
        predictions = classifier.predict_batch(test_samples)
        assert list(predictions) == [0, 1, 0, 1]

    def test_accuracy_high_on_training_style_data(self, rng):
        features, labels = _two_class_dataset(rng, n_per_class=5_000)
        attributes = [AttributeSpec("a", 64), AttributeSpec("b", 64)]
        classifier = LDPNaiveBayes(attributes, _protocol_factory)
        classifier.fit([features[:, 0], features[:, 1]], labels, rng=rng)
        holdout, holdout_labels = _two_class_dataset(rng, n_per_class=200)
        assert classifier.accuracy(holdout, holdout_labels) > 0.9

    def test_priors_reflect_class_imbalance(self, rng):
        features, labels = _two_class_dataset(rng, n_per_class=2_000)
        # Drop most of class 1 to unbalance.
        keep = np.concatenate([np.arange(2_000), 2_000 + np.arange(400)])
        features, labels = features[keep], labels[keep]
        classifier = LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory)
        classifier.fit([features[:, 0]], labels, rng=rng)
        scores_mid = classifier.predict_log_scores([32])
        assert scores_mid[0] > scores_mid[1]

    def test_classes_property(self, rng):
        features, labels = _two_class_dataset(rng, n_per_class=1_000)
        classifier = LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory)
        with pytest.raises(ProtocolUsageError):
            classifier.classes
        classifier.fit([features[:, 0]], labels, rng=rng)
        assert list(classifier.classes) == [0, 1]

    def test_validation(self, rng):
        classifier = LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory)
        with pytest.raises(ValueError):
            classifier.fit([np.array([1]), np.array([2])], np.array([0]), rng=rng)
        with pytest.raises(ProtocolUsageError):
            classifier.fit([np.array([], dtype=int)], np.array([], dtype=int), rng=rng)
        with pytest.raises(ValueError):
            LDPNaiveBayes([], _protocol_factory)
        with pytest.raises(ValueError):
            LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory, smoothing=0)

    def test_predict_requires_fit(self):
        classifier = LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory)
        with pytest.raises(ProtocolUsageError):
            classifier.predict([3])

    def test_predict_shape_validation(self, rng):
        features, labels = _two_class_dataset(rng, n_per_class=1_000)
        classifier = LDPNaiveBayes([AttributeSpec("a", 64)], _protocol_factory)
        classifier.fit([features[:, 0]], labels, rng=rng)
        with pytest.raises(ValueError):
            classifier.predict([1, 2])
        with pytest.raises(ValueError):
            classifier.predict_batch(np.zeros((3, 2)))
