"""Tests for the Hadamard Randomized Response oracle."""

import numpy as np
import pytest

from repro.frequency_oracles import HadamardRandomizedResponse
from repro.frequency_oracles.base import standard_oracle_variance


class TestConfiguration:
    def test_padding_to_power_of_two(self):
        oracle = HadamardRandomizedResponse(10, 1.0)
        assert oracle.padded_size == 16

    def test_variance_matches_standard_bound(self):
        oracle = HadamardRandomizedResponse(16, 0.8)
        assert oracle.variance_per_user() == pytest.approx(standard_oracle_variance(0.8))

    def test_keep_probability(self):
        oracle = HadamardRandomizedResponse(8, np.log(3.0))
        assert oracle.keep_probability == pytest.approx(0.75)


class TestPerUserProtocol:
    def test_report_fields(self, rng):
        oracle = HadamardRandomizedResponse(8, 1.0)
        items = rng.integers(0, 8, size=500)
        reports = oracle.privatize(items, rng=rng)
        assert len(reports) == 500
        assert reports.padded_size == 8
        assert reports.indices.min() >= 0 and reports.indices.max() < 8
        assert set(np.unique(reports.values)) <= {-1.0, 1.0}

    def test_estimates_recover_distribution(self, rng):
        oracle = HadamardRandomizedResponse(8, 3.0)
        probabilities = np.array([0.4, 0.3, 0.1, 0.05, 0.05, 0.04, 0.03, 0.03])
        items = rng.choice(8, size=60_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates, probabilities, atol=0.05)

    def test_signed_inputs_validated(self, rng):
        oracle = HadamardRandomizedResponse(8, 1.0)
        items = np.array([0, 1, 2])
        with pytest.raises(ValueError):
            oracle.privatize_signed(items, np.array([1.0, 0.5, -1.0]), rng=rng)
        with pytest.raises(ValueError):
            oracle.privatize_signed(items, np.array([1.0, -1.0]), rng=rng)

    def test_signed_estimates(self, rng):
        """Half the users hold +e_1, half hold -e_2; estimates reflect signs."""
        oracle = HadamardRandomizedResponse(4, 3.0)
        items = np.array([1] * 20_000 + [2] * 20_000)
        signs = np.array([1.0] * 20_000 + [-1.0] * 20_000)
        reports = oracle.privatize_signed(items, signs, rng=rng)
        estimates = oracle.aggregate(reports, n_users=len(items))
        assert estimates[1] == pytest.approx(0.5, abs=0.05)
        assert estimates[2] == pytest.approx(-0.5, abs=0.05)
        assert estimates[0] == pytest.approx(0.0, abs=0.05)

    def test_aggregate_rejects_mismatched_padding(self, rng):
        oracle_small = HadamardRandomizedResponse(8, 1.0)
        oracle_large = HadamardRandomizedResponse(16, 1.0)
        reports = oracle_small.privatize(np.zeros(10, dtype=int), rng=rng)
        with pytest.raises(ValueError):
            oracle_large.aggregate(reports, n_users=10)


class TestAggregateSimulation:
    def test_simulation_is_unbiased(self, rng):
        oracle = HadamardRandomizedResponse(8, 1.1)
        counts = np.array([500, 1500, 250, 250, 1000, 300, 100, 100], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(300)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)

    def test_simulation_spread_matches_per_user(self, rng):
        oracle = HadamardRandomizedResponse(4, 1.0)
        items = np.repeat(np.arange(4), [400, 300, 200, 100])
        counts = np.bincount(items, minlength=4).astype(float)
        per_user = np.array([oracle.estimate(items, rng=rng) for _ in range(80)])
        simulated = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(80)]
        )
        assert np.allclose(per_user.std(axis=0), simulated.std(axis=0), rtol=0.6, atol=0.02)

    def test_signed_simulation_unbiased(self, rng):
        oracle = HadamardRandomizedResponse(4, 1.5)
        positive = np.array([1000.0, 0.0, 500.0, 0.0])
        negative = np.array([0.0, 800.0, 0.0, 0.0])
        repeats = np.array(
            [
                oracle.estimate_from_signed_counts(positive, negative, rng=rng)
                for _ in range(300)
            ]
        )
        total = positive.sum() + negative.sum()
        expected = (positive - negative) / total
        assert np.allclose(repeats.mean(axis=0), expected, atol=0.02)

    def test_zero_population(self, rng):
        oracle = HadamardRandomizedResponse(8, 1.0)
        assert np.all(oracle.estimate_from_counts(np.zeros(8), rng=rng) == 0)

    def test_empirical_variance_close_to_theory(self, rng):
        oracle = HadamardRandomizedResponse(8, 1.1)
        n_users = 8000
        counts = np.full(8, n_users / 8)
        estimates = np.array(
            [oracle.estimate_from_counts(counts, rng=rng)[3] for _ in range(400)]
        )
        assert estimates.var() == pytest.approx(oracle.variance(n_users), rel=0.4)
