"""Tests for the Optimal Local Hashing oracle."""

import numpy as np
import pytest

from repro.frequency_oracles import OptimalLocalHashing
from repro.frequency_oracles.base import standard_oracle_variance


class TestConfiguration:
    def test_default_bucket_count(self):
        oracle = OptimalLocalHashing(64, np.log(3.0))
        assert oracle.num_buckets == 4  # e^eps + 1 = 4

    def test_custom_bucket_count(self):
        oracle = OptimalLocalHashing(64, 1.0, num_buckets=8)
        assert oracle.num_buckets == 8

    def test_rejects_tiny_bucket_count(self):
        with pytest.raises(ValueError):
            OptimalLocalHashing(64, 1.0, num_buckets=1)

    def test_variance_matches_standard_bound_at_optimum(self):
        oracle = OptimalLocalHashing(64, 1.1)
        assert oracle.variance_per_user() == pytest.approx(standard_oracle_variance(1.1))


class TestProtocol:
    def test_reports_within_bucket_range(self, rng):
        oracle = OptimalLocalHashing(32, 1.0)
        items = rng.integers(0, 32, size=2000)
        reports = oracle.privatize(items, rng=rng)
        assert reports.buckets.min() >= 0
        assert reports.buckets.max() < oracle.num_buckets
        assert len(reports) == 2000

    def test_estimates_recover_distribution(self, rng):
        oracle = OptimalLocalHashing(16, 3.0)
        probabilities = np.concatenate([[0.4, 0.2, 0.1], np.full(13, 0.3 / 13)])
        items = rng.choice(16, size=30_000, p=probabilities)
        estimates = oracle.estimate(items, rng=rng)
        assert np.allclose(estimates[:3], probabilities[:3], atol=0.05)

    def test_aggregate_rejects_mismatched_buckets(self, rng):
        a = OptimalLocalHashing(16, 1.0, num_buckets=4)
        b = OptimalLocalHashing(16, 1.0, num_buckets=8)
        reports = a.privatize(np.zeros(10, dtype=int), rng=rng)
        with pytest.raises(ValueError):
            b.aggregate(reports, n_users=10)

    def test_simulation_unbiased(self, rng):
        oracle = OptimalLocalHashing(16, 1.1)
        counts = rng.integers(100, 1000, size=16).astype(float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        assert np.allclose(repeats.mean(axis=0), counts / counts.sum(), atol=0.02)

    def test_chunked_aggregation_matches_single_chunk(self, rng):
        items = np.arange(64).repeat(10)
        chunked = OptimalLocalHashing(64, 1.0, aggregation_chunk=7)
        reports = chunked.privatize(items, rng=np.random.default_rng(0))
        est_chunked = chunked.aggregate(reports, n_users=len(items))
        unchunked = OptimalLocalHashing(64, 1.0, aggregation_chunk=10_000)
        est_unchunked = unchunked.aggregate(reports, n_users=len(items))
        assert np.allclose(est_chunked, est_unchunked)
