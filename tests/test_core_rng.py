"""Tests for RNG coercion and spawning."""

import numpy as np
import pytest

from repro.core.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_spawn_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_spawn_deterministic(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_spawn_streams_differ(self):
        children = spawn_rngs(0, 3)
        draws = [g.integers(0, 2**40) for g in children]
        assert len(set(draws)) == 3

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
