"""End-to-end integration tests reproducing the paper's qualitative claims.

These exercise the full pipeline (synthetic data -> protocol -> estimator ->
workload evaluation) at a scale that is small enough for CI but large enough
that the paper's robust qualitative conclusions (flat loses on long ranges,
consistency helps, hierarchical/wavelet methods are comparable, error drops
with epsilon and N) show up reliably with seeded randomness.
"""

import numpy as np
import pytest

from repro.analysis.metrics import mean_squared_error
from repro.data import cauchy_population, zipf_population
from repro.experiments.runner import WorkloadEvaluation, evaluate_method, make_method
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.workload import all_queries_of_length, all_range_queries
from repro.wavelet import HaarHRR

DOMAIN = 256
N_USERS = 100_000
EPSILON = 1.1


@pytest.fixture(scope="module")
def population():
    return cauchy_population(DOMAIN, N_USERS, center_fraction=0.4, rng=99)


@pytest.fixture(scope="module")
def workload(population):
    freqs = population.frequencies()
    queries = all_range_queries(DOMAIN, min_length=1)[::7]  # thinned for speed
    return WorkloadEvaluation.from_frequencies(queries, freqs)


def _mse(protocol, population, workload, seeds=(1, 2, 3)):
    errors = []
    for seed in seeds:
        estimator = protocol.simulate_aggregate(population.counts(), rng=seed)
        errors.append(
            mean_squared_error(estimator.range_queries(workload.queries), workload.truths)
        )
    return float(np.mean(errors))


class TestHeadlineComparisons:
    def test_hierarchical_and_wavelet_beat_flat_on_average(self, population, workload):
        flat = _mse(FlatRangeQuery(DOMAIN, EPSILON), population, workload)
        hh = _mse(HierarchicalHistogram(DOMAIN, EPSILON, branching=4), population, workload)
        haar = _mse(HaarHRR(DOMAIN, EPSILON), population, workload)
        assert hh < flat
        assert haar < flat

    def test_flat_wins_point_queries(self, population):
        freqs = population.frequencies()
        point_workload = WorkloadEvaluation.from_frequencies(
            all_queries_of_length(DOMAIN, 1), freqs
        )
        flat = _mse(FlatRangeQuery(DOMAIN, EPSILON), population, point_workload)
        hh2 = _mse(
            HierarchicalHistogram(DOMAIN, EPSILON, branching=2), population, point_workload
        )
        assert flat < hh2

    def test_hierarchical_and_wavelet_are_comparable(self, population, workload):
        """Paper: the regret for picking the 'wrong' method is small."""
        hh = _mse(HierarchicalHistogram(DOMAIN, EPSILON, branching=4), population, workload)
        haar = _mse(HaarHRR(DOMAIN, EPSILON), population, workload)
        ratio = max(hh, haar) / min(hh, haar)
        assert ratio < 2.5

    def test_consistency_never_hurts_much_and_usually_helps(self, population, workload):
        for branching in (4, 16):
            raw = _mse(
                HierarchicalHistogram(DOMAIN, EPSILON, branching=branching, consistency=False),
                population,
                workload,
            )
            consistent = _mse(
                HierarchicalHistogram(DOMAIN, EPSILON, branching=branching, consistency=True),
                population,
                workload,
            )
            assert consistent < raw * 1.1

    def test_wavelet_preferred_at_high_privacy(self, population, workload):
        """Paper: HaarHRR dominates for small epsilon (high privacy)."""
        haar = _mse(HaarHRR(DOMAIN, 0.2), population, workload, seeds=(1, 2, 3, 4))
        hh16 = _mse(
            HierarchicalHistogram(DOMAIN, 0.2, branching=16), population, workload, seeds=(1, 2, 3, 4)
        )
        assert haar < hh16


class TestScalingBehaviour:
    def test_error_decreases_with_population(self, workload):
        small = cauchy_population(DOMAIN, 20_000, rng=1)
        large = cauchy_population(DOMAIN, 200_000, rng=1)
        small_workload = WorkloadEvaluation.from_frequencies(
            workload.queries, small.frequencies()
        )
        large_workload = WorkloadEvaluation.from_frequencies(
            workload.queries, large.frequencies()
        )
        protocol = HierarchicalHistogram(DOMAIN, EPSILON, branching=4)
        assert _mse(protocol, large, large_workload) < _mse(protocol, small, small_workload)

    def test_error_decreases_with_epsilon(self, population, workload):
        protocol_low = HaarHRR(DOMAIN, 0.2)
        protocol_high = HaarHRR(DOMAIN, 1.4)
        assert _mse(protocol_high, population, workload) < _mse(
            protocol_low, population, workload
        )

    def test_measured_error_within_theoretical_bound(self, population):
        """Worst-case bounds from the paper hold for the measured average."""
        freqs = population.frequencies()
        length = 64
        queries = all_queries_of_length(DOMAIN, length)
        workload = WorkloadEvaluation.from_frequencies(queries, freqs)
        for protocol in (
            FlatRangeQuery(DOMAIN, EPSILON),
            HierarchicalHistogram(DOMAIN, EPSILON, branching=4),
            HaarHRR(DOMAIN, EPSILON),
        ):
            measured = _mse(protocol, population, workload)
            bound = protocol.theoretical_range_variance(length, population.n_users)
            assert measured < bound * 3.0

    def test_conclusions_hold_for_skewed_data(self):
        """The paper notes results are insensitive to the data distribution."""
        data = zipf_population(DOMAIN, N_USERS, exponent=1.2, rng=5)
        freqs = data.frequencies()
        queries = all_range_queries(DOMAIN)[::11]
        workload = WorkloadEvaluation.from_frequencies(queries, freqs)
        flat = _mse(FlatRangeQuery(DOMAIN, EPSILON), data, workload)
        hh = _mse(HierarchicalHistogram(DOMAIN, EPSILON, branching=4), data, workload)
        assert hh < flat


class TestRunnerIntegration:
    def test_evaluate_method_agrees_with_manual_loop(self, population, workload):
        protocol = make_method("HHc4", DOMAIN, EPSILON)
        result = evaluate_method(
            protocol, population.counts(), workload, repetitions=3, rng=0
        )
        manual = _mse(HierarchicalHistogram(DOMAIN, EPSILON, branching=4), population, workload)
        assert result.mse_mean == pytest.approx(manual, rel=1.5)
        assert result.mse_std >= 0
