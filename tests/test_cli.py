"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import (
    main,
    parse_quantiles,
    parse_ranges,
    read_items,
    write_items,
)


class TestParsers:
    def test_parse_ranges(self):
        assert parse_ranges("0:10,20:30") == [(0, 10), (20, 30)]
        assert parse_ranges("") == []
        assert parse_ranges(" 5:5 ") == [(5, 5)]

    def test_parse_ranges_errors(self):
        with pytest.raises(ValueError):
            parse_ranges("10:5")
        with pytest.raises(ValueError):
            parse_ranges("abc")

    def test_parse_quantiles(self):
        assert parse_quantiles("0.5, 0.9") == [0.5, 0.9]
        assert parse_quantiles("") == []
        with pytest.raises(ValueError):
            parse_quantiles("1.5")


class TestCsvIo:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "items.csv"
        items = np.array([1, 5, 3, 0, 7])
        write_items(str(path), items)
        assert np.array_equal(read_items(str(path)), items)

    def test_header_and_column(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("name,value\na,3\nb,9\n")
        values = read_items(str(path), column=1, has_header=True)
        assert list(values) == [3, 9]

    def test_bad_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x\n")
        with pytest.raises(ValueError):
            read_items(str(path))
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_items(str(empty))


class TestCommands:
    def test_generate_then_run(self, tmp_path, capsys):
        data_path = tmp_path / "users.csv"
        exit_code = main(
            [
                "generate",
                "--distribution",
                "cauchy",
                "--domain-size",
                "128",
                "--n-users",
                "20000",
                "--output",
                str(data_path),
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        assert data_path.exists()

        out_path = tmp_path / "answers.json"
        exit_code = main(
            [
                "run",
                "--input",
                str(data_path),
                "--domain-size",
                "128",
                "--epsilon",
                "2.0",
                "--method",
                "hh",
                "--branching",
                "4",
                "--ranges",
                "0:63,32:95",
                "--quantiles",
                "0.5",
                "--seed",
                "2",
                "--output",
                str(out_path),
            ]
        )
        assert exit_code == 0
        result = json.loads(out_path.read_text())
        assert result["method"] == "TreeOUECI"
        assert set(result["ranges"]) == {"0:63", "32:95"}
        # Sanity: compare against the exact answer from the generated file.
        items = read_items(str(data_path))
        exact = np.mean((items >= 0) & (items <= 63))
        assert result["ranges"]["0:63"] == pytest.approx(exact, abs=0.1)
        assert 0 <= result["quantiles"]["0.5"] < 128

    def test_run_prints_json_to_stdout(self, tmp_path, capsys):
        data_path = tmp_path / "users.csv"
        write_items(str(data_path), np.random.default_rng(0).integers(0, 64, size=5000))
        exit_code = main(
            [
                "run",
                "--input",
                str(data_path),
                "--domain-size",
                "64",
                "--method",
                "haar",
                "--ranges",
                "0:31",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["method"] == "HaarHRR"
        assert payload["ranges"]["0:31"] == pytest.approx(0.5, abs=0.15)

    def test_run_rejects_out_of_domain_values(self, tmp_path):
        data_path = tmp_path / "users.csv"
        write_items(str(data_path), np.array([5, 600]))
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--input",
                    str(data_path),
                    "--domain-size",
                    "64",
                    "--ranges",
                    "0:10",
                ]
            )

    def test_compare_reports_all_methods(self, tmp_path, capsys):
        data_path = tmp_path / "users.csv"
        write_items(str(data_path), np.random.default_rng(1).integers(0, 64, size=20000))
        exit_code = main(
            [
                "compare",
                "--input",
                str(data_path),
                "--domain-size",
                "64",
                "--methods",
                "flat,hh,haar",
                "--ranges",
                "0:31,8:56",
                "--seed",
                "4",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        results = json.loads(captured.out)
        assert set(results) == {"FlatOUE", "TreeOUECI", "HaarHRR"}
        assert all(value >= 0 for value in results.values())

    def test_compare_requires_ranges(self, tmp_path):
        data_path = tmp_path / "users.csv"
        write_items(str(data_path), np.arange(10))
        with pytest.raises(SystemExit):
            main(
                [
                    "compare",
                    "--input",
                    str(data_path),
                    "--domain-size",
                    "16",
                ]
            )

    def test_dump_frequencies(self, tmp_path, capsys):
        data_path = tmp_path / "users.csv"
        write_items(str(data_path), np.random.default_rng(2).integers(0, 32, size=5000))
        main(
            [
                "run",
                "--input",
                str(data_path),
                "--domain-size",
                "32",
                "--method",
                "flat",
                "--dump-frequencies",
                "--seed",
                "5",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["frequencies"]) == 32


class TestStdinStdoutPipes:
    """``encode`` / ``aggregate`` accept ``-`` for stdin/stdout."""

    def _users(self, tmp_path):
        path = tmp_path / "users.csv"
        write_items(str(path), np.random.default_rng(3).integers(0, 32, size=400))
        return str(path)

    def _encode_args(self, source, output):
        return [
            "encode", "--input", source, "--domain-size", "32",
            "--epsilon", "1.1", "--method", "flat", "--seed", "4",
            "--output", output,
        ]

    def test_encode_to_stdout_emits_a_framed_batch(self, tmp_path, capsysbinary):
        from repro.core.serialization import MAGIC_BATCH, unpack_report_batch

        assert main(self._encode_args(self._users(tmp_path), "-")) == 0
        blob = capsysbinary.readouterr().out
        assert blob.startswith(MAGIC_BATCH)
        header, frames = unpack_report_batch(blob)
        assert header["count"] == len(frames) == 1
        assert header["n_users"] == 400
        assert header["protocol"]["name"] == "flat"

    def test_encode_from_stdin_matches_the_file_path(self, tmp_path, monkeypatch, capsysbinary):
        import io
        import sys as _sys

        users = self._users(tmp_path)
        assert main(self._encode_args(users, "-")) == 0
        from_file = capsysbinary.readouterr().out
        with open(users, "rb") as handle:
            monkeypatch.setattr(
                _sys, "stdin", io.TextIOWrapper(io.BytesIO(handle.read()))
            )
        assert main(self._encode_args("-", "-")) == 0
        assert capsysbinary.readouterr().out == from_file

    def test_piped_aggregate_is_bit_identical_to_files(self, tmp_path, monkeypatch, capsysbinary):
        import io
        import sys as _sys

        users = self._users(tmp_path)
        # classic file pipeline
        report_path = str(tmp_path / "r.bin")
        state_path = tmp_path / "s.state"
        assert main(self._encode_args(users, report_path)) == 0
        assert main(
            ["aggregate", "--reports", report_path, "--output", str(state_path)]
        ) == 0
        # piped pipeline: encode -> framed batch -> aggregate stdin/stdout
        capsysbinary.readouterr()  # drop the file pipeline's status lines
        assert main(self._encode_args(users, "-")) == 0
        batch = capsysbinary.readouterr().out
        monkeypatch.setattr(_sys, "stdin", _FakeStdin(batch))
        assert main(["aggregate", "--reports", "-", "--output", "-"]) == 0
        piped_state = capsysbinary.readouterr().out
        assert piped_state == state_path.read_bytes()

    def test_aggregate_accepts_a_report_file_blob_on_stdin(self, tmp_path, monkeypatch):
        import sys as _sys

        users = self._users(tmp_path)
        report_path = str(tmp_path / "r.bin")
        assert main(self._encode_args(users, report_path)) == 0
        with open(report_path, "rb") as handle:
            monkeypatch.setattr(_sys, "stdin", _FakeStdin(handle.read()))
        out_path = tmp_path / "stdin.state"
        assert main(["aggregate", "--reports", "-", "--output", str(out_path)]) == 0
        state_path = tmp_path / "file.state"
        assert main(
            ["aggregate", "--reports", report_path, "--output", str(state_path)]
        ) == 0
        assert out_path.read_bytes() == state_path.read_bytes()

    def test_garbage_on_stdin_fails_loudly(self, monkeypatch):
        import sys as _sys

        monkeypatch.setattr(_sys, "stdin", _FakeStdin(b"not a report"))
        with pytest.raises(SystemExit, match="could not load"):
            main(["aggregate", "--reports", "-", "--output", "x.state"])


class _FakeStdin:
    """A stand-in for ``sys.stdin`` exposing only the binary ``buffer``."""

    def __init__(self, data: bytes) -> None:
        import io

        self.buffer = io.BytesIO(data)
