"""Streaming-session tests for the 2-D hierarchical grid.

``HierarchicalGrid2D`` runs on the same generic decomposition engine as
the 1-D protocols, so it must honour the same contracts established by
``tests/test_streaming_session.py``: ``run()`` is a thin wrapper over one
client plus one server, any sharding of a report stream merged in any
order is bit-identical to single-pass ingestion, reports and accumulator
states survive ``to_bytes``/``from_bytes``, and the CLI
``encode`` / ``aggregate`` / ``merge`` pipeline reproduces the sharded ==
single-pass guarantee on files.
"""

import json

import numpy as np
import pytest

from repro import HierarchicalGrid2D, ProtocolUsageError, load_server, make_protocol
from repro.cli import main, write_items
from repro.core.session import LevelReport, Report, load_server_file
from repro.flat import FlatRangeQuery
from repro.multidim import Grid2DClient, Grid2DEstimator, Grid2DServer

GRID_CASES = [
    pytest.param(lambda: HierarchicalGrid2D(16, 16, 1.5, oracle="hrr"), id="hrr-b2"),
    pytest.param(
        lambda: HierarchicalGrid2D(16, 32, 1.5, branching=4, oracle="oue"),
        id="oue-b4-rect",
    ),
    pytest.param(lambda: HierarchicalGrid2D(16, 16, 1.0, oracle="grr"), id="grr-b2"),
]

RECTANGLES = [((0, 7), (0, 7)), ((2, 5), (1, 12)), ((0, 15), (0, 15))]


def _pairs_for(protocol, n_users=800, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, protocol.domain_size_x, size=n_users)
    y = rng.integers(0, protocol.domain_size_y, size=n_users)
    return np.stack([x, y], axis=1)


def _encode_stream(protocol, pairs, n_batches=6, seed=42):
    client = protocol.client()
    rng = np.random.default_rng(seed)
    return [
        client.encode_batch(batch, rng=rng)
        for batch in np.array_split(pairs, n_batches)
    ]


def _answers(estimator):
    return np.array(
        [estimator.rectangle_query(xr, yr) for xr, yr in RECTANGLES]
    )


class TestRunIsAThinWrapper:
    @pytest.mark.parametrize("make", GRID_CASES)
    def test_run_equals_one_client_one_server(self, make):
        protocol = make()
        pairs = _pairs_for(protocol)
        via_run = protocol.run(pairs[:, 0], pairs[:, 1], rng=np.random.default_rng(9))

        server = protocol.server()
        server.ingest(protocol.client().encode_batch(pairs, rng=np.random.default_rng(9)))
        via_session = server.finalize()
        assert np.array_equal(_answers(via_run), _answers(via_session))

    def test_estimates_track_the_population(self):
        protocol = HierarchicalGrid2D(16, 16, 3.0, oracle="hrr")
        rng = np.random.default_rng(1)
        x = np.clip(rng.normal(4, 2, size=30_000), 0, 15).astype(np.int64)
        y = np.clip(rng.normal(11, 2, size=30_000), 0, 15).astype(np.int64)
        server = protocol.server()
        server.ingest(_encode_stream(protocol, np.stack([x, y], axis=1)))
        estimator = server.finalize()
        for (xl, xr), (yl, yr) in RECTANGLES[:2]:
            truth = np.mean((x >= xl) & (x <= xr) & (y >= yl) & (y <= yr))
            estimate = estimator.rectangle_query((xl, xr), (yl, yr))
            assert estimate == pytest.approx(truth, abs=0.15)

    def test_single_pair_encode(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        client = protocol.client()
        assert isinstance(client, Grid2DClient)
        server = protocol.server()
        rng = np.random.default_rng(5)
        for item in range(10):
            server.ingest(client.encode((item, 15 - item), rng=rng))
        assert server.n_reports == 10
        assert isinstance(server.finalize(), Grid2DEstimator)

    def test_empty_batch_is_a_noop(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        server = protocol.server()
        server.ingest(protocol.client().encode_batch(np.zeros((0, 2), np.int64)))
        assert server.n_reports == 0

    def test_finalize_without_reports_raises(self):
        with pytest.raises(ProtocolUsageError):
            HierarchicalGrid2D(16, 16, 1.0).server().finalize()

    def test_server_rejects_foreign_reports(self):
        grid = HierarchicalGrid2D(16, 16, 1.1)
        flat_report = FlatRangeQuery(16, 1.1).client().encode_batch(np.arange(8))
        with pytest.raises(ProtocolUsageError):
            grid.server().ingest(flat_report)

    def test_client_rejects_non_pair_items(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        with pytest.raises(ProtocolUsageError):
            protocol.client().encode_batch(np.arange(8))


class TestShardingInvariance:
    @pytest.mark.parametrize("make", GRID_CASES)
    def test_any_sharding_any_merge_order_is_exact(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _pairs_for(protocol))
        reference = _answers(protocol.server().ingest(reports).finalize())

        shards = [protocol.server() for _ in range(3)]
        for index, report in enumerate(reports):
            shards[index % 3].ingest(report)
        for order in [(0, 1, 2), (2, 0, 1), (1, 2, 0)]:
            states = [shards[i].state.copy() for i in order]
            combined = protocol.server(state=states[0])
            combined.merge(states[1]).merge(states[2])
            assert combined.n_reports == len(_pairs_for(protocol))
            assert np.array_equal(_answers(combined.finalize()), reference)

    def test_merge_is_associative(self):
        protocol = HierarchicalGrid2D(16, 16, 1.5)
        reports = _encode_stream(protocol, _pairs_for(protocol), n_batches=3)
        a, b, c = [protocol.server().ingest(report).state for report in reports]
        left = protocol.server(state=a.copy().merge(b.copy()).merge(c.copy()))
        right = protocol.server(state=a.copy().merge(b.copy().merge(c.copy())))
        assert np.array_equal(_answers(left.finalize()), _answers(right.finalize()))

    def test_merge_rejects_mismatched_protocols(self):
        a = HierarchicalGrid2D(16, 16, 1.0).server()
        b = HierarchicalGrid2D(16, 16, 2.0).server()
        with pytest.raises(ProtocolUsageError):
            a.merge(b)
        flat = FlatRangeQuery(16, 1.0).server()
        with pytest.raises(ProtocolUsageError):
            a.merge(flat)


class TestSerialization:
    @pytest.mark.parametrize("make", GRID_CASES)
    def test_report_bytes_roundtrip(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _pairs_for(protocol), n_batches=2)
        direct = protocol.server().ingest(reports)
        revived = protocol.server().ingest(
            [Report.from_bytes(report.to_bytes()) for report in reports]
        )
        assert np.array_equal(_answers(direct.finalize()), _answers(revived.finalize()))
        assert all(
            Report.from_bytes(report.to_bytes()).family == "grid2d"
            for report in reports
        )

    @pytest.mark.parametrize("make", GRID_CASES)
    def test_server_bytes_roundtrip_rebuilds_protocol(self, make):
        protocol = make()
        server = protocol.server().ingest(_encode_stream(protocol, _pairs_for(protocol)))
        restored = load_server(server.to_bytes())
        assert isinstance(restored, Grid2DServer)
        assert restored.protocol.spec() == protocol.spec()
        assert restored.n_reports == server.n_reports
        assert np.array_equal(_answers(restored.finalize()), _answers(server.finalize()))

    def test_spec_roundtrips_through_make_protocol(self):
        protocol = HierarchicalGrid2D(16, 32, 1.5, branching=4, oracle="oue")
        spec = dict(protocol.spec())
        rebuilt = make_protocol(
            spec.pop("name"), spec.pop("domain_size"), spec.pop("epsilon"), **spec
        )
        assert rebuilt.spec() == protocol.spec()
        assert rebuilt.name == protocol.name

    def test_report_is_a_level_report(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        report = protocol.client().encode_batch(_pairs_for(protocol, n_users=50))
        assert isinstance(report, LevelReport)
        assert report.family == "grid2d"
        assert len(report.level_user_counts) == len(
            protocol.decomposition().level_pairs
        )


class TestCliGridPipeline:
    def test_encode_aggregate_merge_matches_single_pass(self, tmp_path):
        data = tmp_path / "pairs.csv"
        rng = np.random.default_rng(2)
        pairs = np.stack(
            [rng.integers(0, 16, size=2000), rng.integers(0, 32, size=2000)], axis=1
        )
        write_items(str(data), pairs)

        encode_args = [
            "encode",
            "--input", str(data),
            "--domain-size", "16",
            "--domain-size-y", "32",
            "--epsilon", "1.5",
            "--method", "grid2d",
            "--oracle", "hrr",
            "--branching", "2",
            "--seed", "7",
            "--shards", "3",
            "--output", str(tmp_path / "reports.bin"),
        ]
        assert main(encode_args) == 0
        report_files = [str(tmp_path / f"reports.bin.{i}") for i in range(3)]

        for index, path in enumerate(report_files):
            assert main(["aggregate", "--reports", path,
                         "--output", str(tmp_path / f"shard{index}.state")]) == 0
        assert main(["aggregate", "--reports", *report_files,
                     "--output", str(tmp_path / "single.state")]) == 0

        out_path = tmp_path / "answers.json"
        merge_args = [
            "merge",
            "--states",
            str(tmp_path / "shard2.state"),
            str(tmp_path / "shard0.state"),
            str(tmp_path / "shard1.state"),
            "--rectangles", "0:7:0:15,2:5:9:13",
            "--output", str(out_path),
            "--output-state", str(tmp_path / "merged.state"),
        ]
        assert main(merge_args) == 0

        result = json.loads(out_path.read_text())
        assert result["method"] == "Grid2DHRR"
        assert result["domain_size"] == [16, 32]
        assert result["n_users"] == 2000
        assert result["n_shards"] == 3
        assert set(result["rectangles"]) == {"0:7:0:15", "2:5:9:13"}

        single = load_server_file(str(tmp_path / "single.state")).finalize()
        merged = load_server_file(str(tmp_path / "merged.state")).finalize()
        assert np.array_equal(_answers(single), _answers(merged))

    def test_merge_refuses_scalar_ranges_for_grids(self, tmp_path):
        data = tmp_path / "pairs.csv"
        write_items(str(data), np.stack([np.arange(16), np.arange(16)], axis=1))
        assert main([
            "encode", "--input", str(data), "--domain-size", "16",
            "--method", "grid2d", "--seed", "1",
            "--output", str(tmp_path / "r.bin"),
        ]) == 0
        assert main(["aggregate", "--reports", str(tmp_path / "r.bin"),
                     "--output", str(tmp_path / "s.state")]) == 0
        with pytest.raises(SystemExit):
            main(["merge", "--states", str(tmp_path / "s.state"), "--ranges", "0:7"])
