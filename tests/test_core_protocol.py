"""Tests for the abstract estimator/protocol interfaces."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidRangeError
from repro.core.protocol import RangeQueryEstimator
from repro.core.types import Domain, RangeSpec


class _FixedEstimator(RangeQueryEstimator):
    """An estimator wrapping a fixed frequency vector (no privacy)."""

    def __init__(self, frequencies):
        super().__init__(Domain(len(frequencies)))
        self._frequencies = np.asarray(frequencies, dtype=np.float64)

    def estimated_frequencies(self):
        return self._frequencies.copy()


class TestEstimatorInterface:
    def setup_method(self):
        self.freqs = np.array([0.1, 0.2, 0.05, 0.15, 0.3, 0.05, 0.1, 0.05])
        self.estimator = _FixedEstimator(self.freqs)

    def test_point_query(self):
        assert self.estimator.point_query(4) == pytest.approx(0.3)
        with pytest.raises(InvalidRangeError):
            self.estimator.point_query(8)
        with pytest.raises(InvalidRangeError):
            self.estimator.point_query(-1)

    def test_range_query_with_tuple_and_spec(self):
        assert self.estimator.range_query((1, 3)) == pytest.approx(0.4)
        assert self.estimator.range_query(RangeSpec(1, 3)) == pytest.approx(0.4)

    def test_range_query_bounds(self):
        with pytest.raises(InvalidRangeError):
            self.estimator.range_query((0, 8))

    def test_batch_queries(self):
        answers = self.estimator.range_queries([(0, 0), (0, 7), (4, 6)])
        assert np.allclose(answers, [0.1, 1.0, 0.45])

    def test_batch_queries_empty(self):
        assert len(self.estimator.range_queries([])) == 0

    def test_prefix_and_cdf(self):
        assert self.estimator.prefix_query(2) == pytest.approx(0.35)
        cdf = self.estimator.cdf()
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_quantiles(self):
        assert self.estimator.quantile_query(0.0) == 0
        assert self.estimator.quantile_query(1.0) == 7
        median = self.estimator.quantile_query(0.5)
        assert self.estimator.prefix_query(median) >= 0.5
        assert self.estimator.quantile_queries([0.25, 0.75]) == [
            self.estimator.quantile_query(0.25),
            self.estimator.quantile_query(0.75),
        ]

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            self.estimator.quantile_query(2.0)

    def test_cache_invalidation(self):
        _ = self.estimator.range_query((0, 3))
        self.estimator._frequencies = np.roll(self.freqs, 1)
        # Cached prefix sums still reflect the old vector until invalidated.
        self.estimator.invalidate_cache()
        assert self.estimator.range_query((0, 0)) == pytest.approx(0.05)

    def test_domain_accessors(self):
        assert self.estimator.domain_size == 8
        assert self.estimator.domain.size == 8


class TestProtocolDescribe:
    def test_describe_mentions_parameters(self):
        from repro.flat import FlatRangeQuery

        protocol = FlatRangeQuery(128, 0.5)
        description = protocol.describe()
        assert "128" in description and "0.5" in description
