"""Tests for the constrained-inference post-processing (Section 4.5)."""

import numpy as np
import pytest

from repro.core.postprocess import (
    tree_enforce_consistency,
    tree_mean_consistency,
    tree_weighted_averaging,
)
from repro.hierarchy.consistency import (
    consistency_violation,
    variance_reduction_factor,
)
from repro.hierarchy.tree import DomainTree


def _exact_levels(counts, branching):
    """Per-level exact fractions of a leaf histogram."""
    tree = DomainTree(len(counts), branching)
    total = counts.sum()
    return [tree.level_histogram(counts, level) / total for level in range(tree.num_levels)]


class TestExactInputs:
    def test_exact_tree_is_untouched(self):
        counts = np.array([5.0, 3.0, 8.0, 4.0, 1.0, 9.0, 2.0, 8.0])
        levels = _exact_levels(counts, 2)
        adjusted = tree_enforce_consistency(levels, 2, root_value=1.0)
        for before, after in zip(levels, adjusted):
            assert np.allclose(before, after)

    def test_violation_zero_for_exact_tree(self):
        counts = np.array([5.0, 3.0, 8.0, 4.0])
        levels = _exact_levels(counts, 2)
        assert consistency_violation(levels, 2) == pytest.approx(0.0, abs=1e-12)


class TestNoisyInputs:
    def _noisy_levels(self, branching, domain, seed, noise=0.01):
        rng = np.random.default_rng(seed)
        counts = rng.integers(10, 100, size=domain).astype(float)
        levels = _exact_levels(counts, branching)
        noisy = [level + rng.normal(0, noise, size=len(level)) for level in levels]
        noisy[0] = np.array([1.0])
        return counts, levels, noisy

    @pytest.mark.parametrize("branching", [2, 4, 8])
    def test_consistency_holds_after_postprocessing(self, branching):
        _, _, noisy = self._noisy_levels(branching, branching**3, seed=1)
        adjusted = tree_enforce_consistency(noisy, branching, root_value=1.0)
        assert consistency_violation(adjusted, branching) < 1e-9

    def test_root_pinned_to_one(self):
        _, _, noisy = self._noisy_levels(2, 16, seed=2)
        adjusted = tree_enforce_consistency(noisy, 2, root_value=1.0)
        assert adjusted[0][0] == pytest.approx(1.0)
        assert adjusted[-1].sum() == pytest.approx(1.0)

    def test_postprocessing_reduces_leaf_error(self):
        """Averaged over many trials, CI reduces the mean squared leaf error."""
        rng = np.random.default_rng(3)
        branching, domain, noise = 4, 64, 0.02
        raw_errors, adjusted_errors = [], []
        counts = rng.integers(10, 100, size=domain).astype(float)
        exact = _exact_levels(counts, branching)
        for _ in range(40):
            noisy = [
                level + rng.normal(0, noise, size=len(level)) for level in exact
            ]
            noisy[0] = np.array([1.0])
            adjusted = tree_enforce_consistency(noisy, branching, root_value=1.0)
            raw_errors.append(np.mean((noisy[-1] - exact[-1]) ** 2))
            adjusted_errors.append(np.mean((adjusted[-1] - exact[-1]) ** 2))
        assert np.mean(adjusted_errors) < np.mean(raw_errors)

    def test_stage_functions_compose(self):
        _, _, noisy = self._noisy_levels(2, 16, seed=4)
        averaged = tree_weighted_averaging(noisy, 2)
        final = tree_mean_consistency(averaged, 2, root_value=1.0)
        direct = tree_enforce_consistency(noisy, 2, root_value=1.0)
        for a, b in zip(final, direct):
            assert np.allclose(a, b)

    def test_mean_consistency_without_root_pin(self):
        _, _, noisy = self._noisy_levels(2, 8, seed=5)
        adjusted = tree_mean_consistency(noisy, 2, root_value=None)
        assert consistency_violation(adjusted, 2) < 1e-9


class TestValidation:
    def test_wrong_level_sizes_rejected(self):
        with pytest.raises(ValueError):
            tree_enforce_consistency([np.array([1.0]), np.array([0.5, 0.3, 0.2])], 2)

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            tree_enforce_consistency([], 2)

    def test_bad_branching_rejected(self):
        with pytest.raises(ValueError):
            tree_enforce_consistency([np.array([1.0])], 1)

    def test_variance_reduction_factor(self):
        assert variance_reduction_factor(2) == pytest.approx(2 / 3)
        assert variance_reduction_factor(8) == pytest.approx(8 / 9)
        with pytest.raises(ValueError):
            variance_reduction_factor(1)
