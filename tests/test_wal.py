"""Tests for the durable ingest WAL (:mod:`repro.service.wal`).

The WAL's contract is the spine of the service's exactly-once story:
every record appended before an acknowledgement must survive any
process death (flush-to-OS durability), a torn tail must be dropped
silently (a torn record was never acknowledged), and the segment
lifecycle -- open while the epoch is in flight, sealed at close,
discarded once a checkpoint covers the epoch -- must hold exactly the
batches whose reports are not yet durable elsewhere.
"""

import os

import pytest

from repro.core.serialization import (
    MAGIC_WAL,
    SerializationError,
    pack_wal_record,
    pack_wal_segment_header,
    read_wal_segment_header,
    scan_wal_segment,
)
from repro.service.faults import truncate_wal_tail
from repro.service.wal import IngestWAL


class TestWalFraming:
    def test_record_round_trip(self):
        header = pack_wal_segment_header(epoch=3)
        records = [
            pack_wal_record({"key": "a", "worker": 0, "n_users": 10}, b"blob-a"),
            pack_wal_record({"key": "b", "worker": 1, "n_users": 20}, b""),
        ]
        head, parsed, torn = scan_wal_segment(header + b"".join(records))
        assert head["epoch"] == 3
        assert torn is None
        assert [meta["key"] for meta, _ in parsed] == ["a", "b"]
        assert [blob for _, blob in parsed] == [b"blob-a", b""]

    def test_header_peek(self):
        data = pack_wal_segment_header(epoch=7)
        header, offset = read_wal_segment_header(data)
        assert header["epoch"] == 7
        assert offset == len(data)
        assert data.startswith(MAGIC_WAL)

    def test_wrong_magic_is_refused(self):
        with pytest.raises(SerializationError, match="magic"):
            read_wal_segment_header(b"REPROACC\x01" + b"\x00" * 32)
        with pytest.raises(SerializationError):
            scan_wal_segment(b"junk")

    def test_torn_tail_is_dropped_not_fatal(self):
        header = pack_wal_segment_header(epoch=0)
        good = pack_wal_record({"key": "k0", "worker": 0}, b"payload")
        torn = pack_wal_record({"key": "k1", "worker": 1}, b"lost")[:-3]
        _, records, torn_offset = scan_wal_segment(header + good + torn)
        assert [meta["key"] for meta, _ in records] == ["k0"]
        assert torn_offset == len(header) + len(good)

    def test_corrupt_crc_is_dropped(self):
        header = pack_wal_segment_header(epoch=0)
        record = bytearray(pack_wal_record({"key": "k", "worker": 0}, b"data"))
        record[-1] ^= 0xFF  # flip a payload bit: CRC no longer matches
        _, records, torn_offset = scan_wal_segment(header + bytes(record))
        assert records == []
        assert torn_offset == len(header)


class TestIngestWalLifecycle:
    def test_append_flush_scan_round_trip(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.append(0, b"batch-0", key="k0", worker=0, n_users=50)
        wal.append(0, b"batch-1", key="k1", worker=1, n_users=25)
        # a fresh scanner (a "restarted gateway") sees every append even
        # though the writing handle is still open
        scan = IngestWAL(str(tmp_path)).scan()
        assert len(scan.open) == 1 and not scan.sealed and not scan.unreadable
        segment = scan.open[0]
        assert segment.epoch == 0
        assert segment.n_reports == 75
        assert [meta["worker"] for meta, _ in segment.records] == [0, 1]
        wal.close()

    def test_seal_and_checkpoint_discard(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.append(0, b"b0", key="k0", worker=0)
        wal.seal(0)
        wal.append(1, b"b1", key="k1", worker=0)
        wal.seal(1)
        wal.append(2, b"b2", key="k2", worker=1)

        scan = wal.scan()
        assert [s.epoch for s in scan.sealed] == [0, 1]
        assert [s.epoch for s in scan.open] == [2]

        # a checkpoint covering epoch 0 drops only that sealed segment
        assert wal.discard_checkpointed([0]) == [0]
        scan = wal.scan()
        assert [s.epoch for s in scan.sealed] == [1]
        assert [s.epoch for s in scan.open] == [2]
        wal.close()

    def test_sealing_an_empty_epoch_is_a_noop(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.seal(5)
        assert wal.scan().sealed == []
        wal.close()

    def test_read_epoch_sees_unflushed_appends(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.append(4, b"live", key="k", worker=2, n_users=9)
        records = wal.read_epoch(4)
        assert len(records) == 1
        assert records[0][0] == {"key": "k", "worker": 2, "n_users": 9}
        assert records[0][1] == b"live"
        assert wal.read_epoch(99) == []
        wal.close()

    def test_truncated_tail_recovers_acked_prefix(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.append(0, b"acked-one", key="k0", worker=0, n_users=5)
        wal.append(0, b"acked-two", key="k1", worker=1, n_users=5)
        wal.close()
        path = wal.segment_path(0)
        truncate_wal_tail(path, 4)  # tear the last record mid-write
        scan = IngestWAL(str(tmp_path)).scan()
        segment = scan.open[0]
        assert [meta["key"] for meta, _ in segment.records] == ["k0"]
        assert segment.torn_offset is not None

    def test_discard_removes_open_and_sealed(self, tmp_path):
        wal = IngestWAL(str(tmp_path))
        wal.append(0, b"x", key="k", worker=0)
        wal.discard(0)
        assert wal.scan().open == []
        assert not os.listdir(str(tmp_path))
        wal.close()

    def test_stats_counts_segments_and_bytes(self, tmp_path):
        wal = IngestWAL(str(tmp_path), sync=False)
        wal.append(0, b"abc", key="k0", worker=0)
        wal.seal(0)
        wal.append(1, b"defg", key="k1", worker=0)
        stats = wal.stats()
        assert stats["records_appended"] == 2
        assert stats["bytes_appended"] > 7
        assert stats["open_segments"] == 1
        assert stats["sealed_segments"] == 1
        assert stats["sync"] is False
        wal.close()
