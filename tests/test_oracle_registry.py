"""Tests for the frequency-oracle registry and the protocol registry."""

import pytest

from repro import PROTOCOL_REGISTRY, make_protocol
from repro.flat import FlatRangeQuery
from repro.frequency_oracles import (
    ORACLE_REGISTRY,
    GeneralizedRandomizedResponse,
    HadamardRandomizedResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    make_oracle,
)
from repro.hierarchy import HierarchicalHistogram
from repro.multidim import HierarchicalGrid2D
from repro.wavelet import HaarHRR


class TestOracleRegistry:
    def test_registry_contents(self):
        assert set(ORACLE_REGISTRY) == {
            "oue",
            "olh",
            "hrr",
            "grr",
            "sue",
            "she",
            "the",
        }

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("oue", OptimizedUnaryEncoding),
            ("olh", OptimalLocalHashing),
            ("hrr", HadamardRandomizedResponse),
            ("grr", GeneralizedRandomizedResponse),
        ],
    )
    def test_make_oracle(self, name, cls):
        oracle = make_oracle(name, 16, 1.0)
        assert isinstance(oracle, cls)
        assert oracle.domain_size == 16

    def test_make_oracle_case_insensitive(self):
        assert isinstance(make_oracle("  OUE ", 8, 1.0), OptimizedUnaryEncoding)

    def test_make_oracle_unknown(self):
        with pytest.raises(KeyError):
            make_oracle("nope", 8, 1.0)

    def test_oracle_kwargs_forwarded(self):
        oracle = make_oracle("olh", 16, 1.0, num_buckets=6)
        assert oracle.num_buckets == 6


class TestProtocolRegistry:
    def test_registry_contents(self):
        assert set(PROTOCOL_REGISTRY) == {"flat", "hh", "haar", "grid2d"}

    def test_make_protocol(self):
        assert isinstance(make_protocol("flat", 64, 1.0), FlatRangeQuery)
        assert isinstance(make_protocol("hh", 64, 1.0, branching=8), HierarchicalHistogram)
        assert isinstance(make_protocol("haar", 64, 1.0), HaarHRR)
        assert isinstance(make_protocol("grid2d", 16, 1.0), HierarchicalGrid2D)

    def test_make_protocol_grid_defaults_to_square(self):
        grid = make_protocol("grid2d", 16, 1.0)
        assert (grid.domain_size_x, grid.domain_size_y) == (16, 16)
        rect = make_protocol("grid", 16, 1.0, domain_size_y=32, branching=4)
        assert (rect.domain_size_x, rect.domain_size_y) == (16, 32)
        assert rect.branching == 4

    def test_make_protocol_unknown(self):
        with pytest.raises(KeyError):
            make_protocol("unknown", 64, 1.0)

    def test_protocol_kwargs_forwarded(self):
        protocol = make_protocol("hh", 64, 1.0, branching=8, oracle="hrr", consistency=False)
        assert protocol.branching == 8
        assert protocol.oracle_name == "hrr"
        assert protocol.consistency is False
