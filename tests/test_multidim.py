"""Tests for the 2-D hierarchical grid extension (Section 6)."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidRangeError, ProtocolUsageError
from repro.multidim import HierarchicalGrid2D


def _make_population(rng, n_users=30_000, dx=16, dy=16):
    """A correlated 2-D population concentrated in one quadrant."""
    x = np.clip(rng.normal(4, 2, size=n_users), 0, dx - 1).astype(np.int64)
    y = np.clip(rng.normal(11, 2, size=n_users), 0, dy - 1).astype(np.int64)
    return x, y


class TestConfiguration:
    def test_name(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0, oracle="hrr")
        assert protocol.name == "Grid2DHRR"
        assert protocol.branching == 2

    def test_variance_bound_positive_and_decreasing_in_users(self):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        assert protocol.theoretical_rectangle_variance(1000) > (
            protocol.theoretical_rectangle_variance(100_000)
        )
        with pytest.raises(ValueError):
            protocol.theoretical_rectangle_variance(0)


class TestEndToEnd:
    def test_rectangle_estimates_close_to_truth(self, rng):
        x, y = _make_population(rng)
        protocol = HierarchicalGrid2D(16, 16, 3.0, oracle="hrr")
        estimator = protocol.run(x, y, rng=rng)
        for (xl, xr), (yl, yr) in [((0, 7), (8, 15)), ((0, 15), (0, 15)), ((2, 5), (9, 13))]:
            truth = np.mean((x >= xl) & (x <= xr) & (y >= yl) & (y <= yr))
            estimate = estimator.rectangle_query((xl, xr), (yl, yr))
            assert estimate == pytest.approx(truth, abs=0.15)

    def test_full_domain_close_to_one(self, rng):
        x, y = _make_population(rng, n_users=20_000)
        protocol = HierarchicalGrid2D(16, 16, 2.0)
        estimator = protocol.run(x, y, rng=rng)
        assert estimator.rectangle_query((0, 15), (0, 15)) == pytest.approx(1.0, abs=0.2)

    def test_grid_accessor(self, rng):
        x, y = _make_population(rng, n_users=5_000)
        protocol = HierarchicalGrid2D(16, 16, 2.0)
        estimator = protocol.run(x, y, rng=rng)
        assert estimator.grid(1, 1).shape == (2, 2)
        assert (1, 1) in estimator.level_pairs

    def test_input_validation(self, rng):
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        with pytest.raises(ProtocolUsageError):
            protocol.run(np.array([1, 2]), np.array([1]), rng=rng)
        with pytest.raises(ProtocolUsageError):
            protocol.run(np.array([], dtype=int), np.array([], dtype=int), rng=rng)

    def test_rectangle_validation(self, rng):
        x, y = _make_population(rng, n_users=2_000)
        protocol = HierarchicalGrid2D(16, 16, 1.0)
        estimator = protocol.run(x, y, rng=rng)
        with pytest.raises(InvalidRangeError):
            estimator.rectangle_query((5, 2), (0, 3))
        with pytest.raises(InvalidRangeError):
            estimator.rectangle_query((0, 16), (0, 3))
