"""Tests for the range-query workload generators."""

import numpy as np
import pytest

from repro.core.exceptions import InvalidRangeError
from repro.core.types import RangeSpec
from repro.queries.workload import (
    all_queries_of_length,
    all_range_queries,
    geometric_lengths,
    group_by_length,
    prefix_queries,
    sampled_range_queries,
    true_answers,
)


class TestAllRangeQueries:
    def test_counts(self):
        queries = all_range_queries(5)
        # D*(D+1)/2 closed ranges including points.
        assert len(queries) == 15

    def test_min_length_filter(self):
        queries = all_range_queries(5, min_length=2)
        assert len(queries) == 10
        assert all(query.length >= 2 for query in queries)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            all_range_queries(0)
        with pytest.raises(ValueError):
            all_range_queries(5, min_length=0)


class TestQueriesOfLength:
    def test_count_matches_formula(self):
        assert len(all_queries_of_length(100, 7)) == 94
        assert len(all_queries_of_length(100, 100)) == 1

    def test_all_have_requested_length(self):
        assert all(query.length == 9 for query in all_queries_of_length(64, 9))

    def test_invalid_length(self):
        with pytest.raises(InvalidRangeError):
            all_queries_of_length(10, 11)
        with pytest.raises(InvalidRangeError):
            all_queries_of_length(10, 0)


class TestSampledQueries:
    def test_queries_stay_in_domain(self):
        queries = sampled_range_queries(1000, 10)
        assert all(0 <= q.left <= q.right < 1000 for q in queries)

    def test_start_points_are_spread(self):
        queries = sampled_range_queries(1000, 5, lengths=[1])
        starts = sorted({q.left for q in queries})
        assert starts[0] == 0 and starts[-1] == 999
        assert len(starts) == 5

    def test_explicit_lengths(self):
        queries = sampled_range_queries(100, 3, lengths=[10, 50])
        assert {q.length for q in queries} <= {10, 50}

    def test_validation(self):
        with pytest.raises(ValueError):
            sampled_range_queries(0, 5)
        with pytest.raises(ValueError):
            sampled_range_queries(10, 0)


class TestHelpers:
    def test_geometric_lengths(self):
        lengths = geometric_lengths(64)
        assert lengths[0] == 1
        assert lengths[-1] == 63
        assert all(lengths[i] < lengths[i + 1] for i in range(len(lengths) - 1))

    def test_prefix_queries(self):
        queries = prefix_queries(8)
        assert len(queries) == 8
        assert all(q.left == 0 for q in queries)
        assert queries[-1].right == 7

    def test_group_by_length(self):
        queries = [RangeSpec(0, 0), RangeSpec(1, 1), RangeSpec(0, 3)]
        grouped = group_by_length(queries)
        assert len(grouped[1]) == 2
        assert len(grouped[4]) == 1

    def test_true_answers(self):
        freqs = np.array([0.1, 0.2, 0.3, 0.4])
        queries = [RangeSpec(0, 1), RangeSpec(2, 3), RangeSpec(0, 3)]
        answers = true_answers(queries, freqs)
        assert np.allclose(answers, [0.3, 0.7, 1.0])

    def test_true_answers_bounds_check(self):
        with pytest.raises(InvalidRangeError):
            true_answers([RangeSpec(0, 4)], np.ones(4) / 4)

    def test_true_answers_empty(self):
        assert len(true_answers([], np.ones(4) / 4)) == 0
