"""Tests for the unified decomposition core.

Two guarantees anchor the refactor:

* **Bit-identity**: under a fixed seed, flat / hierarchical / Haar outputs
  through the generic ``DecompositionClient`` / ``DecompositionServer`` /
  ``run_simulated`` engine are identical to the pre-refactor per-family
  implementations.  ``tests/data/golden_decomposition.json`` holds the
  exact (hex-float) frequencies captured from the seed code for 14
  configurations x 3 execution paths; HRR-based paths are allowed a
  <= 1e-12 drift, everything else must match exactly.
* **Codec unification**: the single :class:`~repro.core.session.LevelReport`
  codec keeps reading the legacy per-family wire layouts (bare ``payload``
  for flat, ``heights`` for Haar) under their registered decoder names, so
  reports serialized before the unification still load.
"""

import json
import pathlib

import numpy as np
import pytest

from repro import FlatRangeQuery, HaarHRR, HierarchicalHistogram
from repro.core.decomposition import Decomposition
from repro.core.session import (
    FlatReport,
    HaarReport,
    HierarchicalReport,
    LevelReport,
    Report,
    _pack_payload,
)
from repro.core.serialization import pack_blob

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_decomposition.json"

CASES = {
    "flat-oue": lambda: FlatRangeQuery(64, 1.1, oracle="oue"),
    "flat-grr": lambda: FlatRangeQuery(64, 1.1, oracle="grr"),
    "flat-hrr": lambda: FlatRangeQuery(64, 1.1, oracle="hrr"),
    "flat-sue": lambda: FlatRangeQuery(64, 1.1, oracle="sue"),
    "flat-the": lambda: FlatRangeQuery(64, 1.1, oracle="the"),
    "flat-she": lambda: FlatRangeQuery(16, 1.1, oracle="she"),
    "flat-olh": lambda: FlatRangeQuery(16, 1.1, oracle="olh"),
    "hh-oue-ci": lambda: HierarchicalHistogram(64, 1.1, branching=4, oracle="oue"),
    "hh-hrr": lambda: HierarchicalHistogram(
        64, 1.1, branching=4, oracle="hrr", consistency=False
    ),
    "hh-olh": lambda: HierarchicalHistogram(16, 1.1, branching=4, oracle="olh"),
    "hh-split": lambda: HierarchicalHistogram(
        64, 1.1, branching=4, level_strategy="split"
    ),
    "hh-b2-grr": lambda: HierarchicalHistogram(
        32, 2.0, branching=2, oracle="grr", consistency=True
    ),
    "haar": lambda: HaarHRR(64, 1.1),
    "haar-48": lambda: HaarHRR(48, 0.8),
}

#: Cases whose pipeline contains an HRR oracle; the acceptance contract
#: allows these a <= 1e-12 drift against the pre-refactor goldens.
HRR_CASES = {"flat-hrr", "hh-hrr", "haar", "haar-48"}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _expected(golden, case, path):
    return np.array([float.fromhex(value) for value in golden[case][path]])


def _check(case, actual, expected):
    if np.array_equal(actual, expected):
        return
    if case in HRR_CASES:
        assert np.allclose(actual, expected, rtol=0.0, atol=1e-12), (
            f"{case}: max drift {np.max(np.abs(actual - expected)):g} > 1e-12"
        )
        return
    raise AssertionError(
        f"{case}: not bit-identical to the pre-refactor output "
        f"(max drift {np.max(np.abs(actual - expected)):g})"
    )


class TestGoldenBitIdentity:
    """New generic engine == pre-refactor implementations, per seed."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_run_matches_pre_refactor(self, golden, case):
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        estimator = protocol.run(items, rng=np.random.default_rng(9))
        _check(case, estimator.estimated_frequencies(), _expected(golden, case, "run"))

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_run_simulated_matches_pre_refactor(self, golden, case):
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        counts = np.bincount(items, minlength=protocol.domain_size)
        estimator = protocol.simulate_aggregate(counts, rng=np.random.default_rng(11))
        _check(
            case,
            estimator.estimated_frequencies(),
            _expected(golden, case, "run_simulated"),
        )

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_streamed_batches_match_pre_refactor(self, golden, case):
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        client = protocol.client()
        server = protocol.server()
        rng = np.random.default_rng(21)
        for batch in np.array_split(items, 4):
            server.ingest(client.encode_batch(batch, rng=rng))
        _check(
            case,
            server.finalize().estimated_frequencies(),
            _expected(golden, case, "stream"),
        )


class TestDecompositionStructure:
    def test_every_protocol_exposes_its_decomposition(self):
        for make in CASES.values():
            protocol = make()
            decomposition = protocol.decomposition()
            assert isinstance(decomposition, Decomposition)
            assert decomposition is protocol.decomposition()  # cached
            levels = list(decomposition.levels)
            assert levels, "a decomposition must expose at least one level"
            slots = [decomposition.counts_slot(level) for level in levels]
            assert len(set(slots)) == len(slots)
            assert max(slots) < decomposition.counts_size

    def test_client_and_server_share_the_decomposition_labels(self):
        protocol = HierarchicalHistogram(64, 1.1)
        client = protocol.client()
        server = protocol.server()
        assert client.decomposition.label == "hierarchical"
        assert server.state.label == "hierarchical"


class TestUnifiedReportCodec:
    def _report_for(self, protocol, n_users=200, seed=3):
        items = np.random.default_rng(seed).integers(
            0, protocol.domain_size, size=n_users
        )
        return items, protocol.client().encode_batch(
            items, rng=np.random.default_rng(seed + 1)
        )

    @pytest.mark.parametrize(
        "make", [CASES["flat-oue"], CASES["hh-oue-ci"], CASES["haar"]]
    )
    def test_reports_are_level_reports(self, make):
        protocol = make()
        _, report = self._report_for(protocol)
        assert isinstance(report, LevelReport)
        assert report.family == protocol.server().decomposition.label
        revived = Report.from_bytes(report.to_bytes())
        assert isinstance(revived, LevelReport)
        assert revived.family == report.family
        assert sorted(revived.level_payloads) == sorted(report.level_payloads)
        assert np.array_equal(revived.level_user_counts, report.level_user_counts)

    def test_legacy_flat_layout_still_loads(self):
        protocol = FlatRangeQuery(64, 1.1, oracle="oue")
        _, report = self._report_for(protocol)
        # Re-create the pre-unification flat wire layout: a bare payload
        # under the "payload" key, no levels map, no counts array.
        meta, arrays = _pack_payload(report.level_payloads[0], "payload")
        legacy = pack_blob(
            {"report_kind": "flat", "n_users": report.n_users, "payload": meta},
            arrays,
        )
        revived = Report.from_bytes(legacy)
        assert isinstance(revived, LevelReport)
        direct = protocol.server().ingest(report).finalize().estimated_frequencies()
        via_legacy = protocol.server().ingest(revived).finalize().estimated_frequencies()
        assert np.array_equal(direct, via_legacy)

    def test_legacy_haar_layout_still_loads(self):
        protocol = HaarHRR(64, 1.1)
        _, report = self._report_for(protocol)
        # Re-create the pre-unification Haar wire layout: payloads keyed by
        # detail height under "heights" with "height_<j>" array prefixes.
        arrays = {
            "level_user_counts": np.asarray(report.level_user_counts, np.int64)
        }
        height_meta = {}
        for height_j, payload in sorted(report.level_payloads.items()):
            meta, payload_arrays = _pack_payload(payload, f"height_{height_j}")
            height_meta[str(height_j)] = meta
            arrays.update(payload_arrays)
        legacy = pack_blob(
            {
                "report_kind": "haar",
                "n_users": report.n_users,
                "heights": height_meta,
            },
            arrays,
        )
        revived = Report.from_bytes(legacy)
        direct = protocol.server().ingest(report).finalize().estimated_frequencies()
        via_legacy = protocol.server().ingest(revived).finalize().estimated_frequencies()
        assert np.array_equal(direct, via_legacy)

    def test_unregistered_families_decode_through_the_unified_layout(self):
        # A brand-new Decomposition subclass gets wire round-trips without
        # registering a decoder: unknown report_kind tags fall back to the
        # LevelReport codec as long as the blob uses the unified layout.
        report = LevelReport(
            "somenewfamily",
            {1: np.arange(4), 3: np.arange(2)},
            np.asarray([0, 4, 0, 2], np.int64),
            6,
        )
        revived = Report.from_bytes(report.to_bytes())
        assert isinstance(revived, LevelReport)
        assert revived.family == "somenewfamily"
        assert sorted(revived.level_payloads) == [1, 3]
        assert np.array_equal(revived.level_user_counts, report.level_user_counts)

    def test_back_compat_constructors(self):
        # The per-family report subclasses are deprecation shims now: they
        # must still behave exactly like LevelReport, but warn.
        with pytest.warns(DeprecationWarning, match="LevelReport"):
            flat = FlatReport(payload=None, n_users=0)
        assert flat.family == "flat" and flat.payload is None
        with pytest.warns(DeprecationWarning, match="LevelReport"):
            hierarchical = HierarchicalReport({}, np.zeros(4, np.int64), 0)
        assert hierarchical.family == "hierarchical"
        with pytest.warns(DeprecationWarning, match="LevelReport"):
            haar = HaarReport({}, np.zeros(4, np.int64), 0)
        assert haar.family == "haar" and haar.height_payloads == {}
        for report in (flat, hierarchical, haar):
            revived = Report.from_bytes(report.to_bytes())
            assert isinstance(revived, LevelReport)
            assert revived.family == report.family

    def test_run_simulated_is_a_deprecated_alias(self):
        protocol = FlatRangeQuery(16, 1.1, oracle="oue")
        counts = np.full(16, 20)
        direct = protocol.simulate_aggregate(counts, rng=np.random.default_rng(5))
        with pytest.warns(DeprecationWarning, match="simulate_aggregate"):
            legacy = protocol.run_simulated(counts, rng=np.random.default_rng(5))
        assert np.array_equal(
            direct.estimated_frequencies(), legacy.estimated_frequencies()
        )
