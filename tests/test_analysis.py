"""Tests for the analytical variance formulas, optimal B and error metrics."""

import math

import numpy as np
import pytest

from repro.analysis import (
    RepeatedMeasurement,
    branching_gradient_with_consistency,
    branching_gradient_without_consistency,
    consistency_node_variance_factor,
    flat_average_error,
    flat_range_variance,
    frequency_oracle_variance,
    haar_range_variance,
    hierarchical_average_error,
    hierarchical_range_variance,
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    mse_by_group,
    optimal_branching_factor,
    prefix_variance,
    recommended_power_of_two,
    scaled_for_presentation,
    squared_errors,
    summarize_repetitions,
    variance_bound_factor,
)


class TestVarianceFormulas:
    def test_frequency_oracle_variance(self):
        eps, n = 1.1, 10**5
        expected = 4 * math.exp(eps) / (n * (math.exp(eps) - 1) ** 2)
        assert frequency_oracle_variance(eps, n) == pytest.approx(expected)
        with pytest.raises(ValueError):
            frequency_oracle_variance(eps, 0)

    def test_flat_variance_linear_in_r(self):
        assert flat_range_variance(1.1, 10**5, 50) == pytest.approx(
            50 * frequency_oracle_variance(1.1, 10**5)
        )

    def test_flat_average_error(self):
        assert flat_average_error(1.1, 10**5, 1024) == pytest.approx(
            1026 * frequency_oracle_variance(1.1, 10**5) / 3
        )

    def test_hierarchical_variance_beats_flat_for_long_ranges(self):
        eps, n, domain = 1.1, 10**6, 2**16
        long_range = domain // 2
        hier = hierarchical_range_variance(eps, n, domain, 4, long_range, consistency=True)
        flat = flat_range_variance(eps, n, long_range)
        assert hier < flat

    def test_flat_beats_hierarchical_for_point_queries(self):
        eps, n, domain = 1.1, 10**6, 2**16
        hier = hierarchical_range_variance(eps, n, domain, 4, 1)
        flat = flat_range_variance(eps, n, 1)
        assert flat < hier

    def test_consistency_reduces_hierarchical_bound(self):
        args = (1.1, 10**5, 2**12, 8, 500)
        assert hierarchical_range_variance(*args, consistency=True) < (
            hierarchical_range_variance(*args, consistency=False)
        )

    def test_haar_variance_matches_eq3(self):
        eps, n, domain = 1.1, 10**5, 2**10
        expected = 0.5 * 10**2 * frequency_oracle_variance(eps, n)
        assert haar_range_variance(eps, n, domain) == pytest.approx(expected)

    def test_haar_comparable_to_consistent_hh_for_long_ranges(self):
        """Eq. (2) vs Eq. (3): the two bounds approach each other as r -> D."""
        eps, n, domain = 1.1, 10**6, 2**16
        haar = haar_range_variance(eps, n, domain)
        hh8 = hierarchical_range_variance(eps, n, domain, 8, domain - 1, consistency=True)
        assert 0.2 < haar / hh8 < 5.0

    def test_hierarchical_average_error_positive_and_increasing_in_domain(self):
        small = hierarchical_average_error(1.1, 10**5, 2**8, 4)
        large = hierarchical_average_error(1.1, 10**5, 2**16, 4)
        assert 0 < small < large

    def test_prefix_variance_halves(self):
        assert prefix_variance(2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            prefix_variance(-1.0)

    def test_consistency_node_factor(self):
        assert consistency_node_variance_factor(4) == pytest.approx(0.8)


class TestOptimalBranching:
    def test_without_consistency_near_4_9(self):
        optimum = optimal_branching_factor(consistency=False)
        assert optimum == pytest.approx(4.92, abs=0.05)
        assert branching_gradient_without_consistency(optimum) == pytest.approx(0.0, abs=1e-6)

    def test_with_consistency_near_9_2(self):
        optimum = optimal_branching_factor(consistency=True)
        assert optimum == pytest.approx(9.18, abs=0.05)
        assert branching_gradient_with_consistency(optimum) == pytest.approx(0.0, abs=1e-6)

    def test_recommended_powers_of_two(self):
        assert recommended_power_of_two(consistency=False) == 4
        assert recommended_power_of_two(consistency=True) == 8

    def test_bound_factor_minimised_near_optimum(self):
        for consistency in (False, True):
            optimum = optimal_branching_factor(consistency)
            near = variance_bound_factor(int(round(optimum)), consistency)
            assert near <= variance_bound_factor(2, consistency)
            assert near <= variance_bound_factor(64, consistency)

    def test_bound_factor_validation(self):
        with pytest.raises(ValueError):
            variance_bound_factor(1)


class TestMetrics:
    def test_squared_and_absolute_errors(self):
        estimates = np.array([1.0, 2.0, 3.0])
        truths = np.array([1.0, 1.0, 5.0])
        assert np.allclose(squared_errors(estimates, truths), [0.0, 1.0, 4.0])
        assert mean_squared_error(estimates, truths) == pytest.approx(5 / 3)
        assert mean_absolute_error(estimates, truths) == pytest.approx(1.0)
        assert max_absolute_error(estimates, truths) == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.array([]), np.array([]))

    def test_summarize_repetitions(self):
        summary = summarize_repetitions([1.0, 2.0, 3.0])
        assert isinstance(summary, RepeatedMeasurement)
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.count == 3

    def test_summarize_single_value(self):
        summary = summarize_repetitions([5.0])
        assert summary.std == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_repetitions([])

    def test_scaling(self):
        assert scaled_for_presentation(0.0012) == pytest.approx(1.2)

    def test_mse_by_group(self):
        estimates = {1: np.array([1.0, 2.0]), 2: np.array([0.0])}
        truths = {1: np.array([1.0, 1.0]), 2: np.array([2.0])}
        grouped = mse_by_group(estimates, truths)
        assert grouped[1] == pytest.approx(0.5)
        assert grouped[2] == pytest.approx(4.0)
        with pytest.raises(ValueError):
            mse_by_group(estimates, {1: np.array([1.0, 1.0])})
