"""Tests for the Optimized Unary Encoding oracle."""

import numpy as np
import pytest

from repro.frequency_oracles import OptimizedUnaryEncoding
from repro.frequency_oracles.base import standard_oracle_variance


class TestConfiguration:
    def test_probabilities(self):
        oracle = OptimizedUnaryEncoding(16, 1.0)
        assert oracle.p_one == pytest.approx(0.5)
        assert oracle.p_zero == pytest.approx(1.0 / (1.0 + np.e))

    def test_variance_matches_standard_bound(self):
        oracle = OptimizedUnaryEncoding(16, 1.1)
        assert oracle.variance_per_user() == pytest.approx(standard_oracle_variance(1.1))
        assert oracle.variance(1000) == pytest.approx(standard_oracle_variance(1.1) / 1000)

    def test_variance_requires_positive_users(self):
        with pytest.raises(ValueError):
            OptimizedUnaryEncoding(16, 1.1).variance(0)


class TestPerUserProtocol:
    def test_report_shape_and_dtype(self, rng):
        oracle = OptimizedUnaryEncoding(8, 1.0)
        items = rng.integers(0, 8, size=100)
        reports = oracle.privatize(items, rng=rng)
        assert reports.shape == (100, 8)
        assert set(np.unique(reports)) <= {0, 1}

    def test_estimates_sum_close_to_one(self, rng):
        oracle = OptimizedUnaryEncoding(16, 2.0)
        items = rng.integers(0, 16, size=20_000)
        estimates = oracle.estimate(items, rng=rng)
        assert estimates.sum() == pytest.approx(1.0, abs=0.15)

    def test_estimates_recover_point_mass(self, rng):
        oracle = OptimizedUnaryEncoding(8, 3.0)
        items = np.full(20_000, 5)
        estimates = oracle.estimate(items, rng=rng)
        assert estimates[5] == pytest.approx(1.0, abs=0.05)
        others = np.delete(estimates, 5)
        assert np.all(np.abs(others) < 0.05)

    def test_aggregate_rejects_bad_shapes(self):
        oracle = OptimizedUnaryEncoding(8, 1.0)
        with pytest.raises(ValueError):
            oracle.aggregate(np.zeros((10, 4)))
        with pytest.raises(ValueError):
            oracle.aggregate(np.zeros((0, 8)), n_users=0)


class TestAggregateSimulation:
    def test_simulation_is_unbiased(self, rng):
        oracle = OptimizedUnaryEncoding(8, 1.1)
        counts = np.array([100, 500, 1000, 2000, 200, 50, 3000, 150], dtype=float)
        repeats = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(200)]
        )
        mean_estimate = repeats.mean(axis=0)
        truth = counts / counts.sum()
        assert np.allclose(mean_estimate, truth, atol=0.01)

    def test_simulation_matches_per_user_distribution(self, rng):
        """The simulated and per-user estimates have comparable spread."""
        oracle = OptimizedUnaryEncoding(4, 1.0)
        items = np.repeat(np.arange(4), [100, 200, 300, 400])
        counts = np.bincount(items, minlength=4).astype(float)
        per_user = np.array([oracle.estimate(items, rng=rng) for _ in range(60)])
        simulated = np.array(
            [oracle.estimate_from_counts(counts, rng=rng) for _ in range(60)]
        )
        assert np.allclose(per_user.mean(axis=0), simulated.mean(axis=0), atol=0.03)
        assert np.allclose(per_user.std(axis=0), simulated.std(axis=0), atol=0.03)

    def test_empirical_variance_matches_theory(self, rng):
        oracle = OptimizedUnaryEncoding(8, 1.1)
        n_users = 4000
        counts = np.full(8, n_users // 8, dtype=float)
        estimates = np.array(
            [oracle.estimate_from_counts(counts, rng=rng)[0] for _ in range(400)]
        )
        theoretical = oracle.variance(n_users)
        measured = estimates.var()
        assert measured == pytest.approx(theoretical, rel=0.35)

    def test_zero_population_returns_zeros(self, rng):
        oracle = OptimizedUnaryEncoding(8, 1.0)
        assert np.all(oracle.estimate_from_counts(np.zeros(8), rng=rng) == 0)

    def test_count_validation(self, rng):
        oracle = OptimizedUnaryEncoding(8, 1.0)
        with pytest.raises(ValueError):
            oracle.estimate_from_counts(np.ones(4), rng=rng)
        with pytest.raises(ValueError):
            oracle.estimate_from_counts(-np.ones(8), rng=rng)
