"""Tests for the flat range-query baseline (Section 4.2)."""

import numpy as np
import pytest

from repro.core.exceptions import ProtocolUsageError
from repro.flat import FlatRangeQuery
from repro.frequency_oracles.base import standard_oracle_variance


class TestConfiguration:
    def test_naming(self):
        assert FlatRangeQuery(64, 1.0).name == "FlatOUE"
        assert FlatRangeQuery(64, 1.0, oracle="hrr").name == "FlatHRR"


class TestEndToEnd:
    @pytest.mark.parametrize("oracle", ["oue", "hrr"])
    def test_range_estimates_close_to_truth(self, small_cauchy, oracle):
        protocol = FlatRangeQuery(small_cauchy.domain_size, 2.0, oracle=oracle)
        estimator = protocol.run(small_cauchy.items, rng=3)
        truth = small_cauchy.frequencies()
        assert estimator.range_query((10, 20)) == pytest.approx(
            truth[10:21].sum(), abs=0.1
        )

    def test_point_queries_are_accurate(self, small_cauchy):
        protocol = FlatRangeQuery(small_cauchy.domain_size, 3.0)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=4)
        truth = small_cauchy.frequencies()
        mode = int(np.argmax(truth))
        assert estimator.point_query(mode) == pytest.approx(truth[mode], abs=0.03)

    def test_simulated_unbiased(self, small_cauchy):
        protocol = FlatRangeQuery(small_cauchy.domain_size, 1.1)
        truth = small_cauchy.frequencies()[5:30].sum()
        answers = [
            protocol.simulate_aggregate(small_cauchy.counts(), rng=seed).range_query((5, 29))
            for seed in range(12)
        ]
        assert np.mean(answers) == pytest.approx(truth, abs=0.06)

    def test_zero_users_rejected(self):
        protocol = FlatRangeQuery(16, 1.0)
        with pytest.raises(ProtocolUsageError):
            protocol.run(np.array([], dtype=int), rng=0)
        with pytest.raises(ProtocolUsageError):
            protocol.simulate_aggregate(np.zeros(16), rng=0)

    def test_counts_length_checked(self):
        with pytest.raises(ValueError):
            FlatRangeQuery(16, 1.0).simulate_aggregate(np.ones(4), rng=0)


class TestTheory:
    def test_fact1_linear_in_range_length(self):
        protocol = FlatRangeQuery(1024, 1.1)
        v1 = protocol.theoretical_range_variance(1, 10**5)
        v100 = protocol.theoretical_range_variance(100, 10**5)
        assert v100 / v1 == pytest.approx(100.0)
        assert v1 == pytest.approx(standard_oracle_variance(1.1) / 10**5)

    def test_lemma42_average_error(self):
        protocol = FlatRangeQuery(1024, 1.1)
        expected = (1024 + 2) * standard_oracle_variance(1.1) / (3 * 10**5)
        assert protocol.average_worst_case_error(10**5) == pytest.approx(expected)

    def test_validation(self):
        protocol = FlatRangeQuery(64, 1.1)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(0, 100)
        with pytest.raises(ValueError):
            protocol.theoretical_range_variance(65, 100)
        with pytest.raises(ValueError):
            protocol.average_worst_case_error(0)
