"""Tests for the epoch-aware aggregation-service façade (:mod:`repro.engine`).

Three guarantees anchor the engine layer:

* **Bit-identity with the session path**: a single-epoch engine queried
  with ``window="all"`` reproduces ``protocol.run`` exactly, pinned
  against the same hex-float goldens as the decomposition engine for all
  14 configurations (HRR-based cases keep their <= 1e-12 allowance).
* **Durability**: engine -> checkpoint -> restore -> estimator is
  bit-identical for every registry handle (flat, tree, wavelet alias,
  grid2d), epochs merge exactly in any order, and pre-engine v1 payloads
  (bare server states) still restore through the v2 codec.
* **Window semantics**: ``all`` / ``last(k)`` / explicit epoch lists
  resolve deterministically and fail loudly on unknown epochs.
"""

import numpy as np
import pytest

from test_decomposition import CASES, HRR_CASES, _expected, golden  # noqa: F401

from repro import HierarchicalGrid2D, HierarchicalHistogram, make_protocol
from repro.core.exceptions import ProtocolUsageError
from repro.core.serialization import (
    MAGIC_V2,
    SerializationError,
    blob_version,
    pack_blob,
)
from repro.engine import Engine, InvalidWindowError, last, parse_window, resolve_window


def _check(case, actual, expected):
    if np.array_equal(actual, expected):
        return
    assert case in HRR_CASES and np.allclose(
        actual, expected, rtol=0.0, atol=1e-12
    ), f"{case}: engine path drifted from the session goldens"


class TestGoldenBitIdentity:
    """Single-epoch window='all' engine == the plain session path."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_single_epoch_window_all_matches_run_goldens(self, golden, case):
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        engine = Engine.open(protocol)
        engine.session().absorb(items, rng=np.random.default_rng(9))
        estimator = engine.estimator(window="all")
        _check(case, estimator.estimated_frequencies(), _expected(golden, case, "run"))

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_checkpoint_restore_preserves_goldens(self, golden, case):
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        engine = Engine.open(protocol)
        engine.session().absorb(items, rng=np.random.default_rng(9))
        restored = Engine.from_bytes(engine.to_bytes())
        _check(
            case,
            restored.estimator().estimated_frequencies(),
            _expected(golden, case, "run"),
        )


#: Registry handles exercised by the round-trip suite (wavelet = alias).
HANDLES = {
    "flat": {},
    "hh": {"branching": 4},
    "wavelet": {},
    "grid2d": {"domain_size_y": 16},
}


def _items_for(protocol, n_users, seed):
    rng = np.random.default_rng(seed)
    if isinstance(protocol, HierarchicalGrid2D):
        return np.stack(
            [
                rng.integers(0, protocol.domain_size_x, size=n_users),
                rng.integers(0, protocol.domain_size_y, size=n_users),
            ],
            axis=1,
        )
    return rng.integers(0, protocol.domain_size, size=n_users)


def _fingerprint(protocol, estimator) -> np.ndarray:
    """A deterministic array of query answers for equality checks."""
    if isinstance(protocol, HierarchicalGrid2D):
        rects = [((0, 7), (0, 7)), ((2, 13), (5, 11)), ((0, 15), (0, 15))]
        return np.asarray(
            [estimator.rectangle_query(rx, ry) for rx, ry in rects]
        )
    return np.asarray(estimator.estimated_frequencies())


@pytest.mark.parametrize("handle", sorted(HANDLES))
class TestCheckpointRestoreRoundTrip:
    def _engine(self, handle, n_epochs=3):
        protocol = make_protocol(handle, 16, 1.2, **HANDLES[handle])
        engine = Engine.open(protocol)
        rng = np.random.default_rng(7)
        for epoch in range(n_epochs):
            engine.session(epoch=epoch).ingest(
                engine.client().encode_batch(_items_for(protocol, 400, epoch), rng=rng)
            )
        return protocol, engine

    def test_round_trip_is_bit_identical(self, handle, tmp_path):
        protocol, engine = self._engine(handle)
        path = str(tmp_path / "service.ckpt")
        engine.checkpoint(path)
        with open(path, "rb") as fh:
            assert blob_version(fh.read()) == 2
        restored = Engine.restore(path)
        assert restored.epochs == engine.epochs
        assert restored.n_reports() == engine.n_reports()
        for window in ("all", last(2), [0, 2]):
            assert np.array_equal(
                _fingerprint(protocol, engine.estimator(window)),
                _fingerprint(restored.protocol, restored.estimator(window)),
            )

    def test_windows_are_merge_order_invariant(self, handle):
        protocol, engine = self._engine(handle)
        # The same reports folded as one epoch, and as three epochs
        # adopted in reversed order, answer identically.
        single = Engine.open(protocol)
        session = single.session(epoch=0)
        rng = np.random.default_rng(7)
        for epoch in range(3):
            session.ingest(
                single.client().encode_batch(_items_for(protocol, 400, epoch), rng=rng)
            )
        reversed_engine = Engine.open(protocol)
        for new_epoch, epoch in enumerate(reversed(engine.epochs)):
            reversed_engine.adopt_state(
                engine.session(epoch=epoch).snapshot(), epoch=new_epoch
            )
        expected = _fingerprint(protocol, single.estimator())
        assert np.array_equal(
            _fingerprint(protocol, engine.estimator("all")), expected
        )
        assert np.array_equal(
            _fingerprint(protocol, reversed_engine.estimator("all")), expected
        )

    def test_v1_server_state_restores_as_single_epoch(self, handle):
        protocol, engine = self._engine(handle, n_epochs=1)
        server = engine.session(epoch=0).server
        blob = server.state.copy().to_bytes()  # a pre-engine v1 payload
        assert blob_version(blob) == 1
        restored = Engine.from_bytes(blob)
        assert restored.n_reports() == server.n_reports
        assert np.array_equal(
            _fingerprint(protocol, restored.estimator()),
            _fingerprint(protocol, engine.estimator()),
        )


class TestWindows:
    def _engine(self, n_epochs=4):
        engine = Engine.open("hh", domain_size=32, epsilon=1.1, branching=4)
        rng = np.random.default_rng(3)
        for epoch in range(n_epochs):
            engine.session(epoch=epoch).absorb(
                rng.integers(0, 32, size=200), rng=rng
            )
        return engine

    def test_resolution_forms(self):
        engine = self._engine()
        epochs = engine.epochs
        assert resolve_window("all", epochs) == [0, 1, 2, 3]
        assert resolve_window(None, epochs) == [0, 1, 2, 3]
        assert resolve_window(2, epochs) == [2, 3]
        assert resolve_window(last(3), epochs) == [1, 2, 3]
        assert resolve_window(last(4), epochs) == [0, 1, 2, 3]
        assert resolve_window([3, 0], epochs) == [0, 3]  # ascending, dedup order
        assert engine.n_reports(last(2)) == 400

    def test_window_reports_and_estimates_compose(self):
        engine = self._engine()
        total = sum(
            engine.session(epoch=epoch).n_reports for epoch in engine.epochs
        )
        assert engine.n_reports("all") == total
        merged = engine.window_state([1, 2])
        assert merged.n_reports == engine.n_reports([1, 2])
        assert merged.meta == {"epochs": [1, 2]}
        # Live shards are untouched by window materialisation.
        assert engine.session(epoch=1).server.state.meta == {"epoch": 1}

    def test_window_errors(self):
        engine = self._engine()
        with pytest.raises(ProtocolUsageError, match="unknown epoch"):
            engine.estimator(window=[0, 9])
        with pytest.raises(ProtocolUsageError, match="at least one epoch"):
            engine.estimator(window=[])
        with pytest.raises(ProtocolUsageError, match="k >= 1"):
            engine.estimator(window=last(0))
        with pytest.raises(ProtocolUsageError, match="holds only 4"):
            engine.estimator(window=last(99))
        with pytest.raises(ProtocolUsageError, match="unknown window string"):
            engine.estimator(window="yesterday")
        with pytest.raises(ProtocolUsageError, match="invalid window"):
            engine.estimator(window=True)
        empty = Engine.open("flat", domain_size=8, epsilon=1.0)
        # An empty service has nothing in *every* window -- monitoring may
        # poll sliding windows before the first epoch exists.
        assert empty.n_reports() == 0
        assert empty.n_reports(last(7)) == 0
        assert empty.n_reports([0]) == 0
        with pytest.raises(ProtocolUsageError, match="no epochs"):
            empty.estimator()

    def test_window_errors_are_clean_value_errors(self):
        """Malformed windows raise ValueError subclasses, never KeyError.

        The three contract cases: empty selections, unknown epoch keys,
        and last:K with K larger than the number of held epochs.
        """
        engine = self._engine()  # epochs 0..3
        for window in ([], [0, 9], last(5), "yesterday"):
            with pytest.raises(ValueError):
                engine.estimator(window=window)
        with pytest.raises(InvalidWindowError):
            engine.window_state(last(99))
        try:
            engine.estimator(window=[7])
        except KeyError:  # pragma: no cover - the defect this test pins
            raise AssertionError("unknown epochs must not raise KeyError")
        except ValueError:
            pass

    def test_parse_window_cli_forms(self):
        assert parse_window("all") == "all"
        assert parse_window("") == "all"
        assert parse_window("last:3") == last(3)
        assert parse_window("0,2,5") == [0, 2, 5]
        with pytest.raises(ValueError, match="malformed window"):
            parse_window("last:x")
        with pytest.raises(ValueError, match="malformed window"):
            parse_window("a,b")


class TestEngineLifecycle:
    def test_open_accepts_protocol_spec_and_handle(self):
        protocol = HierarchicalHistogram(32, 1.1, branching=4)
        for engine in (
            Engine.open(protocol),
            Engine.open(protocol.spec()),
            Engine.open("hh", domain_size=32, epsilon=1.1, branching=4),
        ):
            assert engine.spec() == protocol.spec()
        with pytest.raises(ProtocolUsageError, match="domain_size and epsilon"):
            Engine.open("hh")
        with pytest.raises(ProtocolUsageError, match="client"):
            Engine.open(object())

    def test_session_reuse_and_auto_epochs(self):
        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        first = engine.session()
        assert first.epoch == 0
        again = engine.session(epoch=0)
        assert again.server is first.server
        assert engine.session().epoch == 1
        assert engine.epochs == (0, 1)

    def test_adopt_state_refuses_existing_epoch(self):
        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        session = engine.session(epoch=0)
        session.absorb(np.arange(8), rng=0)
        with pytest.raises(ProtocolUsageError, match="already exists"):
            engine.adopt_state(session.snapshot(), epoch=0)

    def test_adopt_state_rejects_other_configurations(self):
        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        other = Engine.open("flat", domain_size=8, epsilon=2.0)
        other.session().absorb(np.arange(8), rng=0)
        with pytest.raises(ProtocolUsageError, match="differently configured"):
            engine.adopt_state(other.session(epoch=0).snapshot())

    def test_simulate_matches_simulate_aggregate(self):
        protocol = HierarchicalHistogram(32, 1.1, branching=4)
        counts = np.full(32, 25)
        direct = protocol.simulate_aggregate(counts, rng=np.random.default_rng(4))
        via_engine = Engine.open(protocol).simulate(
            counts, rng=np.random.default_rng(4)
        )
        assert np.array_equal(
            direct.estimated_frequencies(), via_engine.estimated_frequencies()
        )

    def test_simulate_requires_an_aggregate_driver(self):
        engine = Engine.open(HierarchicalGrid2D(16, 16, 1.1))
        with pytest.raises(ProtocolUsageError, match="aggregate simulation"):
            engine.simulate(np.ones(16))

    def test_checkpoint_envelope_is_v2_and_self_describing(self):
        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        engine.session().absorb(np.arange(8), rng=0)
        blob = engine.to_bytes()
        assert blob.startswith(MAGIC_V2)
        # A structurally valid blob that is neither a checkpoint nor a
        # server state must be refused.
        with pytest.raises(SerializationError, match="not an engine checkpoint"):
            Engine.from_bytes(pack_blob({"file_kind": "something-else"}))

    def test_corrupt_epoch_child_names_the_failing_epoch(self):
        from repro.core.serialization import unpack_blob

        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        for epoch in range(3):
            engine.session(epoch=epoch).absorb(np.arange(8), rng=epoch)
        header, arrays = unpack_blob(engine.to_bytes())
        child = bytearray(arrays["epoch_1"])
        child[len(child) // 2] ^= 0x40  # flip one bit inside epoch 1's shard
        arrays["epoch_1"] = bytes(child)
        with pytest.raises(SerializationError, match="epoch 1"):
            Engine.from_bytes(pack_blob(header, arrays, version=2))

    def test_checkpoint_overwrites_atomically(self, tmp_path):
        engine = Engine.open("flat", domain_size=8, epsilon=1.0)
        engine.session().absorb(np.arange(8), rng=0)
        path = str(tmp_path / "svc.ckpt")
        engine.checkpoint(path)
        first = (tmp_path / "svc.ckpt").read_bytes()
        engine.session().absorb(np.arange(8), rng=1)
        engine.checkpoint(path)  # rewrite over the existing file
        second = (tmp_path / "svc.ckpt").read_bytes()
        assert second != first
        assert Engine.restore(path).n_reports() == 16
        # The temp sibling used for the atomic rename never lingers.
        assert [p.name for p in tmp_path.iterdir()] == ["svc.ckpt"]

    def test_server_snapshot_restore_round_trip(self):
        protocol = HierarchicalHistogram(32, 1.1, branching=4)
        server = protocol.server()
        server.ingest(protocol.client().encode_batch(np.arange(32), rng=0))
        frozen = server.snapshot()
        before = server.finalize().estimated_frequencies()
        server.ingest(protocol.client().encode_batch(np.arange(32), rng=1))
        assert server.n_reports == 64
        server.restore(frozen)
        assert server.n_reports == 32
        assert np.array_equal(server.finalize().estimated_frequencies(), before)
        other = HierarchicalHistogram(32, 2.0, branching=4).server()
        with pytest.raises(ProtocolUsageError):
            other.restore(frozen)


class TestEngineCli:
    def _encode(self, tmp_path, shards=1):
        from repro.cli import main, write_items

        data = tmp_path / "users.csv"
        write_items(str(data), np.random.default_rng(2).integers(0, 32, size=600))
        assert main([
            "encode", "--input", str(data), "--domain-size", "32",
            "--epsilon", "1.1", "--method", "hh", "--seed", "5",
            "--shards", str(shards), "--output", str(tmp_path / "r.bin"),
        ]) == 0
        if shards == 1:
            return [str(tmp_path / "r.bin")]
        return [str(tmp_path / f"r.bin.{i}") for i in range(shards)]

    def test_fresh_checkpoint_respects_explicit_epoch(self, tmp_path):
        from repro.cli import main

        (report,) = self._encode(tmp_path)
        path = str(tmp_path / "svc.ckpt")
        # --epoch on a brand-new checkpoint must key the first shard,
        # e.g. a service using dates (20260730) rather than 0, 1, 2...
        assert main([
            "engine", "checkpoint", "--checkpoint", path,
            "--reports", report, "--epoch", "20260730",
        ]) == 0
        assert Engine.restore(path).epochs == (20260730,)

    def test_aggregate_output_is_byte_identical_to_a_plain_server(self, tmp_path):
        from repro.cli import main
        from repro.core.session import load_report_file

        (report_path,) = self._encode(tmp_path)
        state_path = tmp_path / "s.state"
        assert main([
            "aggregate", "--reports", report_path, "--output", str(state_path),
        ]) == 0
        protocol, report = load_report_file(report_path)
        expected = protocol.server().ingest(report).to_bytes()
        assert state_path.read_bytes() == expected

    def test_merge_output_state_is_byte_identical_to_a_plain_server(self, tmp_path):
        from repro.cli import main
        from repro.core.session import load_report_file

        reports = self._encode(tmp_path, shards=2)
        for index, report in enumerate(reports):
            assert main([
                "aggregate", "--reports", report,
                "--output", str(tmp_path / f"s{index}.state"),
            ]) == 0
        assert main([
            "merge", "--states", str(tmp_path / "s0.state"),
            str(tmp_path / "s1.state"), "--ranges", "0:15",
            "--output", str(tmp_path / "out.json"),
            "--output-state", str(tmp_path / "merged.state"),
        ]) == 0
        server = None
        for path in reports:
            protocol, report = load_report_file(path)
            server = server or protocol.server()
            server.ingest(report)
        assert (tmp_path / "merged.state").read_bytes() == server.to_bytes()


class TestConcurrentShardAdoption:
    """The engine's concurrency contract: the epoch map is thread-safe.

    Shard workers (or service threads) may adopt and absorb states from
    many threads at once; the engine must neither lose a shard, corrupt
    an epoch, nor double-assign an epoch key.  These are regression tests
    for the internal lock -- without it, ``_next_epoch`` races hand two
    threads the same fresh key and one shard silently vanishes (or
    ``adopt_state`` raises on a key it was never given).
    """

    N_THREADS = 8
    SHARDS_PER_THREAD = 6

    def _shard_states(self, protocol, seed):
        rng = np.random.default_rng(seed)
        states = []
        for index in range(self.N_THREADS * self.SHARDS_PER_THREAD):
            server = protocol.server()
            items = rng.integers(0, protocol.domain_size, size=20)
            server.ingest(
                protocol.client().encode_batch(items, rng=np.random.default_rng(index))
            )
            states.append(server.state.copy())
        return states

    def test_threaded_adopt_state_assigns_unique_epochs(self):
        import threading

        protocol = make_protocol("flat", 32, 1.0)
        states = self._shard_states(protocol, seed=21)
        engine = Engine.open(protocol)
        failures = []

        def adopt(thread_index):
            try:
                for state in states[thread_index :: self.N_THREADS]:
                    engine.adopt_state(state.to_bytes())
            except Exception as exc:  # noqa: BLE001 - surfaced via assert
                failures.append(exc)

        threads = [
            threading.Thread(target=adopt, args=(index,))
            for index in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(engine.epochs) == len(states)
        assert engine.epochs == tuple(range(len(states)))
        assert engine.n_reports() == 20 * len(states)

    def test_threaded_absorb_shard_merges_exactly(self):
        import threading

        protocol = make_protocol("hh", 32, 1.0, branching=4)
        states = self._shard_states(protocol, seed=22)
        engine = Engine.open(protocol)
        failures = []

        def absorb(thread_index):
            try:
                for state in states[thread_index :: self.N_THREADS]:
                    engine.absorb_shard(state.to_bytes(), epoch=7)
            except Exception as exc:  # noqa: BLE001 - surfaced via assert
                failures.append(exc)

        threads = [
            threading.Thread(target=absorb, args=(index,))
            for index in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert engine.epochs == (7,)
        # merge is associative + commutative: any interleaving of the
        # threaded absorption reproduces the sequential fold exactly
        reference = states[0].copy()
        for state in states[1:]:
            reference.merge(state)
        merged = engine.window_state("all")
        merged.meta = {}
        reference.meta = {}
        assert merged.to_bytes() == reference.to_bytes()

    def test_threaded_sessions_share_one_epoch_safely(self):
        import threading

        protocol = make_protocol("flat", 16, 1.0)
        engine = Engine.open(protocol)
        barrier = threading.Barrier(self.N_THREADS)
        sessions = []
        lock = threading.Lock()

        def open_session():
            barrier.wait()
            session = engine.session(epoch=3)
            with lock:
                sessions.append(session)

        threads = [
            threading.Thread(target=open_session) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # every thread got a view of the SAME shard, not racing fresh ones
        assert engine.epochs == (3,)
        assert len({id(session.server) for session in sessions}) == 1
