"""Hardening tests for the wire format (:mod:`repro.core.serialization`).

The contract: *any* malformed byte input -- wrong magic, truncation at any
offset, garbage JSON, corrupt npy blocks, mutated-but-parseable headers --
surfaces as :class:`SerializationError` with offset context, never as a
raw ``struct.error`` / ``KeyError`` / ``UnicodeDecodeError`` from the
decoder internals.  Fuzz-style sweeps mutate valid envelopes to exercise
every decode stage.
"""

import json

import numpy as np
import pytest

from repro import FlatRangeQuery, HierarchicalHistogram
from repro.core.serialization import (
    FORMAT_VERSION,
    MAGIC,
    MAGIC_V2,
    SerializationError,
    blob_version,
    pack_blob,
    unpack_blob,
)
from repro.core.session import AccumulatorState, Report


@pytest.fixture(scope="module")
def server_blob() -> bytes:
    protocol = HierarchicalHistogram(32, 1.1, branching=4)
    server = protocol.server()
    server.ingest(protocol.client().encode_batch(np.arange(32), rng=0))
    return server.to_bytes()


@pytest.fixture(scope="module")
def report_blob() -> bytes:
    protocol = FlatRangeQuery(16, 1.1, oracle="oue")
    return protocol.client().encode_batch(np.arange(16), rng=0).to_bytes()


class TestVersionedEnvelope:
    def test_default_pack_is_v1_and_v2_is_opt_in(self):
        header = {"file_kind": "x"}
        arrays = {"a": np.arange(4)}
        v1 = pack_blob(header, arrays)
        v2 = pack_blob(header, arrays, version=2)
        assert v1.startswith(MAGIC) and blob_version(v1) == 1
        assert v2.startswith(MAGIC_V2) and blob_version(v2) == 2
        assert FORMAT_VERSION == 2
        # Same logical content, both decode identically.
        for blob in (v1, v2):
            decoded_header, decoded_arrays = unpack_blob(blob)
            assert decoded_header == header
            assert np.array_equal(decoded_arrays["a"], np.arange(4))
        # The payload after the magic is byte-identical across versions.
        assert v1[len(MAGIC) :] == v2[len(MAGIC_V2) :]

    def test_unknown_version_is_refused_at_pack_time(self):
        with pytest.raises(SerializationError, match="format version"):
            pack_blob({}, version=3)

    def test_v1_payloads_decode_unchanged(self, server_blob, report_blob):
        # The acceptance bar: accumulator states and reports from the
        # pre-engine era load through the v2-aware codec.
        assert blob_version(server_blob) == 1
        state = AccumulatorState.from_bytes(server_blob)
        assert state.n_reports == 32
        report = Report.from_bytes(report_blob)
        assert report.n_users == 16


class TestMalformedInput:
    def test_non_bytes_input(self):
        with pytest.raises(SerializationError, match="expected bytes"):
            unpack_blob(12345)
        with pytest.raises(SerializationError, match="expected bytes"):
            blob_version(None)

    def test_wrong_magic_reports_offset_zero(self):
        with pytest.raises(SerializationError, match="offset 0"):
            unpack_blob(b"NOTAMAGIC" + b"\x00" * 32)

    def test_empty_and_tiny_inputs(self):
        for blob in (b"", b"R", MAGIC[:4]):
            with pytest.raises(SerializationError, match="offset 0"):
                unpack_blob(blob)
        with pytest.raises(SerializationError, match="truncated"):
            unpack_blob(MAGIC)  # magic but no header length

    def test_header_length_exceeding_payload(self):
        blob = MAGIC + (2**40).to_bytes(8, "little") + b"{}"
        with pytest.raises(SerializationError, match="declares"):
            unpack_blob(blob)

    def test_garbage_header_json(self):
        payload = b"\xff\xfe not json"
        blob = MAGIC + len(payload).to_bytes(8, "little") + payload
        with pytest.raises(SerializationError, match="corrupt header JSON"):
            unpack_blob(blob)

    def test_header_json_of_the_wrong_shape(self):
        for document in (json.dumps([1, 2, 3]), json.dumps({"arrays": "nope"})):
            payload = document.encode()
            blob = MAGIC + len(payload).to_bytes(8, "little") + payload
            with pytest.raises(SerializationError, match="corrupt header JSON"):
                unpack_blob(blob)
        payload = json.dumps({"header": 7, "arrays": []}).encode()
        blob = MAGIC + len(payload).to_bytes(8, "little") + payload
        with pytest.raises(SerializationError, match="'header' must be an object"):
            unpack_blob(blob)

    def test_corrupt_array_block_reports_its_offset(self):
        blob = bytearray(pack_blob({"k": 1}, {"a": np.arange(8)}))
        # Stomp the npy block header (it starts with numpy's own magic).
        npy_start = bytes(blob).index(b"\x93NUMPY")
        blob[npy_start : npy_start + 6] = b"\x00" * 6
        with pytest.raises(SerializationError, match="corrupt array block 'a' at offset"):
            unpack_blob(bytes(blob))

    def test_every_truncation_of_a_real_state_fails_loudly(self, server_blob):
        # Sampled prefixes across the whole blob, plus the exact layout
        # boundaries (magic, length field, header end).
        boundaries = {0, 4, len(MAGIC), len(MAGIC) + 8, len(MAGIC) + 9}
        boundaries.update(range(0, len(server_blob) - 1, max(1, len(server_blob) // 97)))
        for cut in sorted(boundaries):
            with pytest.raises(SerializationError):
                AccumulatorState.from_bytes(server_blob[:cut])


def _mutations(blob: bytes, rng: np.random.Generator, rounds: int):
    """Seeded single-byte mutations spread across the whole blob."""
    for _ in range(rounds):
        mutated = bytearray(blob)
        position = int(rng.integers(0, len(blob)))
        mutated[position] ^= int(rng.integers(1, 256))
        yield bytes(mutated)


class TestFuzzedEnvelopes:
    """Mutated valid envelopes either decode or raise SerializationError.

    A byte flip may land in numeric payload (decoding to different but
    structurally valid statistics) -- that is fine; what must never happen
    is a raw KeyError / struct.error / UnicodeDecodeError escaping the
    decoder.
    """

    ROUNDS = 300

    def test_fuzzed_accumulator_states(self, server_blob):
        rng = np.random.default_rng(1)
        failures = 0
        for mutated in _mutations(server_blob, rng, self.ROUNDS):
            try:
                state = AccumulatorState.from_bytes(mutated)
            except SerializationError:
                failures += 1
            else:
                assert isinstance(state, AccumulatorState)
        assert failures > 0  # the sweep must actually hit decode errors

    def test_fuzzed_reports(self, report_blob):
        rng = np.random.default_rng(2)
        failures = 0
        for mutated in _mutations(report_blob, rng, self.ROUNDS):
            try:
                report = Report.from_bytes(mutated)
            except SerializationError:
                failures += 1
            else:
                assert isinstance(report, Report)
        assert failures > 0

    def test_fuzzed_engine_checkpoints(self):
        from repro.engine import Engine

        engine = Engine.open("hh", domain_size=16, epsilon=1.1, branching=4)
        engine.session().absorb(np.arange(16), rng=0)
        blob = engine.to_bytes()
        rng = np.random.default_rng(3)
        failures = 0
        for mutated in _mutations(blob, rng, self.ROUNDS):
            try:
                restored = Engine.from_bytes(mutated)
            except SerializationError:
                failures += 1
            except Exception as exc:  # noqa: BLE001 - the assertion target
                raise AssertionError(
                    f"fuzzed checkpoint leaked {type(exc).__name__}: {exc}"
                ) from exc
            else:
                assert isinstance(restored, Engine)
        assert failures > 0

    def test_mutated_but_valid_json_headers_fail_as_decode_errors(self, server_blob):
        # Surgically corrupt *semantic* header fields while keeping the
        # JSON valid: every case must raise SerializationError.
        header, arrays = unpack_blob(server_blob)
        cases = []
        missing_children = dict(header)
        missing_children.pop("num_children")
        cases.append(missing_children)
        wrong_type = dict(header)
        wrong_type["num_children"] = "many"
        cases.append(wrong_type)
        too_many = dict(header)
        too_many["num_children"] = 99
        cases.append(too_many)
        unknown_kind = dict(header)
        unknown_kind["state_kind"] = "martian"
        cases.append(unknown_kind)
        for mutated_header in cases:
            with pytest.raises(SerializationError):
                AccumulatorState.from_bytes(pack_blob(mutated_header, arrays))
