"""Tests for the Discrete Haar Transform utilities."""

import math

import numpy as np
import pytest

from repro.wavelet.haar import (
    evaluate_range_from_coefficients,
    haar_matrix,
    haar_transform,
    inverse_haar_transform,
    leaf_membership,
    range_coefficient_weights,
)


class TestTransform:
    def test_roundtrip(self, rng):
        for size in (2, 4, 8, 64, 256):
            vector = rng.normal(size=size)
            coefficients = haar_transform(vector)
            assert np.allclose(inverse_haar_transform(coefficients), vector)

    def test_smooth_coefficient(self):
        vector = np.array([0.1, 0.15, 0.23, 0.12, 0.2, 0.05, 0.07, 0.08])
        coefficients = haar_transform(vector)
        assert coefficients.smooth == pytest.approx(vector.sum() / math.sqrt(8))

    def test_detail_levels_shapes(self):
        coefficients = haar_transform(np.arange(16, dtype=float))
        assert [len(level) for level in coefficients.details] == [8, 4, 2, 1]
        assert coefficients.height == 4
        assert coefficients.domain_size == 16

    def test_detail_definition_matches_paper(self):
        """c_v = (C_left - C_right) / 2^{j/2} for a node at height j."""
        vector = np.array([1.0, 2.0, 3.0, 4.0])
        coefficients = haar_transform(vector)
        # Height 1, node 0: (1 - 2) / sqrt(2); node 1: (3 - 4) / sqrt(2).
        assert coefficients.details[0][0] == pytest.approx(-1 / math.sqrt(2))
        assert coefficients.details[0][1] == pytest.approx(-1 / math.sqrt(2))
        # Height 2, single node: ((1+2) - (3+4)) / 2.
        assert coefficients.details[1][0] == pytest.approx(-2.0)

    def test_uniform_vector_has_zero_details(self):
        coefficients = haar_transform(np.full(32, 0.5))
        for level in coefficients.details:
            assert np.allclose(level, 0.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            haar_transform(np.ones(6))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            haar_transform(np.ones((2, 4)))


class TestMatrix:
    def test_matrix_reconstruction_matches_inverse(self, rng):
        vector = rng.normal(size=8)
        coefficients = haar_transform(vector)
        matrix = haar_matrix(8)
        assert np.allclose(matrix @ coefficients.as_flat_array(), vector)

    def test_matrix_matches_paper_figure3_row0(self):
        matrix = haar_matrix(8) * math.sqrt(8)
        expected = np.array([1.0, 1.0, math.sqrt(2), 0.0, 2.0, 0.0, 0.0, 0.0])
        assert np.allclose(matrix[0], expected)

    def test_matrix_matches_paper_figure3_row7(self):
        matrix = haar_matrix(8) * math.sqrt(8)
        expected = np.array([1.0, -1.0, 0.0, -math.sqrt(2), 0.0, 0.0, 0.0, -2.0])
        assert np.allclose(matrix[7], expected)

    def test_matrix_columns_orthogonal(self):
        matrix = haar_matrix(16)
        gram = matrix.T @ matrix
        assert np.allclose(gram, np.diag(np.diag(gram)))


class TestLeafMembership:
    def test_signs_and_nodes(self):
        items = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        nodes, signs = leaf_membership(items, 1)
        assert list(nodes) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert list(signs) == [1, -1, 1, -1, 1, -1, 1, -1]
        nodes, signs = leaf_membership(items, 3)
        assert list(nodes) == [0] * 8
        assert list(signs) == [1, 1, 1, 1, -1, -1, -1, -1]

    def test_rejects_bad_height(self):
        with pytest.raises(ValueError):
            leaf_membership(np.array([0]), 0)


class TestRangeEvaluation:
    def test_range_weights_match_prefix_sums(self, rng):
        vector = rng.random(32)
        coefficients = haar_transform(vector)
        for left, right in [(0, 0), (0, 31), (3, 17), (5, 5), (16, 31), (1, 30)]:
            expected = vector[left : right + 1].sum()
            assert evaluate_range_from_coefficients(
                coefficients, left, right
            ) == pytest.approx(expected)

    def test_weights_sparse_per_level(self):
        weights = range_coefficient_weights(3, 17, 32)
        for level in weights.details:
            assert np.count_nonzero(level) <= 2

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            range_coefficient_weights(5, 3, 32)
        with pytest.raises(ValueError):
            range_coefficient_weights(0, 32, 32)


class TestCoefficientContainer:
    def test_copy_is_deep(self):
        coefficients = haar_transform(np.arange(8, dtype=float))
        duplicate = coefficients.copy()
        duplicate.details[0][0] = 999.0
        assert coefficients.details[0][0] != 999.0

    def test_flat_array_length(self):
        coefficients = haar_transform(np.arange(16, dtype=float))
        assert len(coefficients.as_flat_array()) == 16
