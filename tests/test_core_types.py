"""Tests for the small value types in ``repro.core.types``."""

import math

import numpy as np
import pytest

from repro.core.exceptions import (
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
)
from repro.core.types import (
    Domain,
    PrivacyParams,
    RangeSpec,
    is_power_of,
    next_power_of,
)


class TestPowerHelpers:
    def test_next_power_of_two(self):
        assert next_power_of(2, 1) == 1
        assert next_power_of(2, 2) == 2
        assert next_power_of(2, 3) == 4
        assert next_power_of(2, 1000) == 1024

    def test_next_power_of_larger_base(self):
        assert next_power_of(4, 17) == 64
        assert next_power_of(16, 16) == 16
        assert next_power_of(16, 17) == 256

    def test_next_power_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            next_power_of(1, 4)
        with pytest.raises(ValueError):
            next_power_of(2, 0)

    def test_is_power_of(self):
        assert is_power_of(2, 1)
        assert is_power_of(2, 64)
        assert not is_power_of(2, 65)
        assert is_power_of(4, 64)
        assert not is_power_of(4, 32)
        assert not is_power_of(2, 0)


class TestDomain:
    def test_valid_domain(self):
        domain = Domain(16)
        assert domain.size == 16

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "16"])
    def test_invalid_domain_sizes(self, bad):
        with pytest.raises(InvalidDomainError):
            Domain(bad)

    def test_validate_items_accepts_in_range(self):
        domain = Domain(8)
        items = domain.validate_items(np.array([0, 3, 7]))
        assert items.dtype == np.int64
        assert list(items) == [0, 3, 7]

    def test_validate_items_rejects_out_of_range(self):
        domain = Domain(8)
        with pytest.raises(InvalidDomainError):
            domain.validate_items(np.array([0, 8]))
        with pytest.raises(InvalidDomainError):
            domain.validate_items(np.array([-1, 2]))

    def test_validate_items_rejects_non_integers(self):
        domain = Domain(8)
        with pytest.raises(InvalidDomainError):
            domain.validate_items(np.array([0.5, 1.2]))

    def test_validate_items_accepts_integral_floats(self):
        domain = Domain(8)
        items = domain.validate_items(np.array([1.0, 2.0]))
        assert list(items) == [1, 2]

    def test_validate_items_rejects_2d(self):
        with pytest.raises(InvalidDomainError):
            Domain(8).validate_items(np.zeros((2, 2)))

    def test_histogram_and_frequencies(self):
        domain = Domain(4)
        items = np.array([0, 0, 1, 3])
        counts = domain.histogram(items)
        assert list(counts) == [2, 1, 0, 1]
        freqs = domain.frequencies(items)
        assert freqs.sum() == pytest.approx(1.0)
        assert freqs[0] == pytest.approx(0.5)

    def test_padded_size(self):
        assert Domain(10).padded_size(2) == 16
        assert Domain(10).padded_size(4) == 16
        assert Domain(17).padded_size(4) == 64


class TestPrivacyParams:
    def test_derived_quantities(self):
        params = PrivacyParams(math.log(3.0))
        assert params.e_eps == pytest.approx(3.0)
        assert params.keep_probability == pytest.approx(0.75)
        assert params.flip_probability == pytest.approx(0.25)

    def test_grr_keep_probability(self):
        params = PrivacyParams(math.log(3.0))
        assert params.grr_keep_probability(3) == pytest.approx(3.0 / 5.0)
        with pytest.raises(ValueError):
            params.grr_keep_probability(1)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan"), "x", True])
    def test_invalid_epsilon(self, bad):
        with pytest.raises(InvalidPrivacyBudgetError):
            PrivacyParams(bad)


class TestRangeSpec:
    def test_length_and_tuple(self):
        spec = RangeSpec(2, 5)
        assert spec.length == 4
        assert spec.as_tuple() == (2, 5)

    def test_point_range(self):
        assert RangeSpec(3, 3).length == 1

    def test_invalid_ranges(self):
        with pytest.raises(InvalidRangeError):
            RangeSpec(5, 2)
        with pytest.raises(InvalidRangeError):
            RangeSpec(-1, 2)

    def test_validate_for_domain(self):
        spec = RangeSpec(0, 7)
        assert spec.validate_for_domain(8) is spec
        with pytest.raises(InvalidRangeError):
            spec.validate_for_domain(7)

    def test_true_answer(self):
        freqs = np.array([0.1, 0.2, 0.3, 0.4])
        assert RangeSpec(1, 2).true_answer(freqs) == pytest.approx(0.5)
        assert RangeSpec(0, 3).true_answer(freqs) == pytest.approx(1.0)
        with pytest.raises(InvalidRangeError):
            RangeSpec(0, 4).true_answer(freqs)
