"""Tests for the centralized-DP baselines used in the Figure 7 comparison."""

import numpy as np
import pytest

from repro.centralized import (
    CentralizedHierarchical,
    CentralizedWavelet,
    haar_l1_sensitivity,
    laplace_mechanism,
    laplace_noise_scale,
    laplace_variance,
)
from repro.hierarchy.consistency import consistency_violation


class TestLaplacePrimitives:
    def test_noise_scale(self):
        assert laplace_noise_scale(2.0, 1.0) == pytest.approx(0.5)
        assert laplace_noise_scale(0.5, 3.0) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            laplace_noise_scale(1.0, 0.0)

    def test_variance(self):
        assert laplace_variance(1.0, 1.0) == pytest.approx(2.0)
        assert laplace_variance(2.0, 1.0) == pytest.approx(0.5)

    def test_mechanism_is_unbiased(self, rng):
        values = np.array([10.0, 20.0, 30.0])
        repeats = np.array(
            [laplace_mechanism(values, 1.0, rng=rng) for _ in range(2000)]
        )
        assert np.allclose(repeats.mean(axis=0), values, atol=0.2)

    def test_mechanism_spread_matches_scale(self, rng):
        repeats = np.array(
            [laplace_mechanism(np.zeros(1), 0.5, rng=rng)[0] for _ in range(4000)]
        )
        assert repeats.var() == pytest.approx(laplace_variance(0.5), rel=0.2)


class TestCentralizedHierarchical:
    def test_estimates_close_to_truth(self, small_cauchy):
        mechanism = CentralizedHierarchical(small_cauchy.domain_size, 1.0, branching=2)
        estimator = mechanism.run(small_cauchy.counts(), rng=1)
        truth = small_cauchy.frequencies()
        # Centralized noise at N = 20k users is tiny.
        assert estimator.range_query((10, 40)) == pytest.approx(
            truth[10:41].sum(), abs=0.01
        )

    def test_consistency_applied(self, small_cauchy):
        mechanism = CentralizedHierarchical(small_cauchy.domain_size, 1.0, branching=4)
        estimator = mechanism.run(small_cauchy.counts(), rng=2)
        assert consistency_violation(estimator.level_fractions, 4) < 1e-9

    def test_without_consistency(self, small_cauchy):
        mechanism = CentralizedHierarchical(
            small_cauchy.domain_size, 1.0, branching=4, consistency=False
        )
        estimator = mechanism.run(small_cauchy.counts(), rng=3)
        assert not estimator.is_consistent

    def test_more_privacy_means_more_error(self, small_cauchy):
        counts = small_cauchy.counts()
        truth = small_cauchy.frequencies()[5:60].sum()
        errors = {}
        for epsilon in (0.05, 5.0):
            mechanism = CentralizedHierarchical(small_cauchy.domain_size, epsilon, branching=2)
            answers = [
                mechanism.run(counts, rng=seed).range_query((5, 59)) for seed in range(10)
            ]
            errors[epsilon] = np.mean([(answer - truth) ** 2 for answer in answers])
        assert errors[0.05] > errors[5.0]

    def test_per_node_noise_variance(self):
        mechanism = CentralizedHierarchical(256, 1.0, branching=2)
        assert mechanism.per_node_noise_variance(1000) == pytest.approx(
            2 * (8 / 1.0) ** 2 / 1000**2
        )

    def test_input_validation(self, small_cauchy):
        mechanism = CentralizedHierarchical(small_cauchy.domain_size, 1.0)
        with pytest.raises(ValueError):
            mechanism.run(np.ones(10), rng=0)
        with pytest.raises(ValueError):
            mechanism.run(np.zeros(small_cauchy.domain_size), rng=0)


class TestCentralizedWavelet:
    def test_sensitivity_bounded(self):
        assert haar_l1_sensitivity(2) == pytest.approx(1 / np.sqrt(2) + 1 / np.sqrt(2))
        assert haar_l1_sensitivity(1024) < 1 + np.sqrt(2) + 1

    def test_estimates_close_to_truth(self, small_cauchy):
        mechanism = CentralizedWavelet(small_cauchy.domain_size, 1.0)
        estimator = mechanism.run(small_cauchy.counts(), rng=4)
        truth = small_cauchy.frequencies()
        assert estimator.range_query((10, 40)) == pytest.approx(
            truth[10:41].sum(), abs=0.01
        )

    def test_full_range_exact(self, small_cauchy):
        mechanism = CentralizedWavelet(small_cauchy.domain_size, 0.2)
        estimator = mechanism.run(small_cauchy.counts(), rng=5)
        assert estimator.range_query((0, small_cauchy.domain_size - 1)) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_per_coefficient_noise_variance_uniform(self):
        mechanism = CentralizedWavelet(256, 1.0, allocation="uniform")
        expected = 2 * (mechanism.sensitivity / 1.0) ** 2 / 1000**2
        assert mechanism.per_coefficient_noise_variance(1000) == pytest.approx(expected)

    def test_weighted_allocation_gives_coarse_levels_less_noise(self):
        mechanism = CentralizedWavelet(256, 1.0, allocation="weighted")
        fine = mechanism.per_coefficient_noise_variance(1000, height_j=1)
        coarse = mechanism.per_coefficient_noise_variance(1000, height_j=8)
        assert coarse < fine

    def test_weighted_beats_uniform_on_long_ranges(self, small_cauchy):
        counts = small_cauchy.counts()
        truth = small_cauchy.frequencies()[5:60].sum()

        def mse(allocation):
            errors = []
            for seed in range(12):
                mechanism = CentralizedWavelet(
                    small_cauchy.domain_size, 0.1, allocation=allocation
                )
                answer = mechanism.run(counts, rng=seed).range_query((5, 59))
                errors.append((answer - truth) ** 2)
            return np.mean(errors)

        assert mse("weighted") < mse("uniform")

    def test_invalid_allocation_rejected(self):
        with pytest.raises(ValueError):
            CentralizedWavelet(256, 1.0, allocation="other")

    def test_input_validation(self, small_cauchy):
        mechanism = CentralizedWavelet(small_cauchy.domain_size, 1.0)
        with pytest.raises(ValueError):
            mechanism.run(np.ones(10), rng=0)
        with pytest.raises(ValueError):
            mechanism.run(np.zeros(small_cauchy.domain_size), rng=0)

    def test_centralized_error_much_lower_than_local(self, small_cauchy):
        """Sanity check on the central-vs-local gap (1/N^2 vs 1/N scaling)."""
        from repro.wavelet import HaarHRR

        counts = small_cauchy.counts()
        truth = small_cauchy.frequencies()[8:48].sum()
        central = CentralizedWavelet(small_cauchy.domain_size, 1.0)
        local = HaarHRR(small_cauchy.domain_size, 1.0)
        central_errors = [
            (central.run(counts, rng=seed).range_query((8, 47)) - truth) ** 2
            for seed in range(8)
        ]
        local_errors = [
            (local.simulate_aggregate(counts, rng=seed).range_query((8, 47)) - truth) ** 2
            for seed in range(8)
        ]
        assert np.mean(central_errors) < np.mean(local_errors)
