"""Tests for the per-oracle sufficient-statistics accumulators.

Every frequency oracle must support out-of-core aggregation through
``make_accumulator`` / ``accumulate`` / ``finalize`` with three guarantees:

* sharding invariance -- accumulating any partition of a report stream and
  merging in any order is *exactly* (bit-for-bit) equal to accumulating
  the whole stream in one server;
* ``finalize`` agrees with the batch ``aggregate`` path (exactly for the
  integer-statistic oracles, to float rounding for HRR/SHE whose batch
  path debiases before summing);
* ``to_bytes`` / ``from_bytes`` round-trips preserve the statistics.
"""

import numpy as np
import pytest

from repro.core.session import AccumulatorState
from repro.frequency_oracles import (
    BinaryRandomizedResponse,
    GeneralizedRandomizedResponse,
    HadamardRandomizedResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
    SummationHistogramEncoding,
    SymmetricUnaryEncoding,
    ThresholdHistogramEncoding,
)

#: Oracles whose batch ``aggregate`` routes through the accumulator and is
#: therefore bit-identical to ``finalize``; HRR differs by float rounding
#: (its batch path debiases before summing, the accumulator after).
EXACT_AGGREGATE = {"grr", "rr", "oue", "sue", "she", "the", "olh"}

ORACLE_CASES = [
    pytest.param(lambda: GeneralizedRandomizedResponse(32, 1.0), id="grr"),
    pytest.param(lambda: BinaryRandomizedResponse(1.0), id="rr"),
    pytest.param(lambda: OptimizedUnaryEncoding(32, 1.0), id="oue"),
    pytest.param(lambda: SymmetricUnaryEncoding(32, 1.0), id="sue"),
    pytest.param(lambda: SummationHistogramEncoding(16, 1.0), id="she"),
    pytest.param(lambda: ThresholdHistogramEncoding(32, 1.0), id="the"),
    pytest.param(lambda: OptimalLocalHashing(16, 1.0), id="olh"),
    pytest.param(lambda: HadamardRandomizedResponse(32, 1.0), id="hrr"),
]


def _report_batches(oracle, n_batches=6, batch_size=80, seed=3):
    """Privatize ``n_batches`` independent user batches for ``oracle``."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_batches):
        items = rng.integers(0, oracle.domain_size, size=batch_size)
        batches.append((oracle.privatize(items, rng=rng), batch_size))
    return batches


def _accumulate_all(oracle, batches):
    accumulator = oracle.make_accumulator()
    for payload, n in batches:
        oracle.accumulate(accumulator, payload, n_users=n)
    return accumulator


class TestShardingInvariance:
    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_sharded_merge_equals_single_pass(self, make):
        oracle = make()
        batches = _report_batches(oracle)
        single = _accumulate_all(oracle, batches)

        shards = [oracle.make_accumulator() for _ in range(3)]
        for index, (payload, n) in enumerate(batches):
            oracle.accumulate(shards[index % 3], payload, n_users=n)

        # Merge in a deliberately scrambled order.
        merged = shards[2].copy().merge(shards[0]).merge(shards[1])
        assert merged.n_reports == single.n_reports
        assert np.array_equal(oracle.finalize(merged), oracle.finalize(single))

    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_merge_commutative_and_associative(self, make):
        oracle = make()
        batches = _report_batches(oracle, n_batches=3)
        parts = []
        for payload, n in batches:
            accumulator = oracle.make_accumulator()
            oracle.accumulate(accumulator, payload, n_users=n)
            parts.append(accumulator)
        a, b, c = parts

        left = a.copy().merge(b.copy()).merge(c.copy())
        right = a.copy().merge(b.copy().merge(c.copy()))
        swapped = c.copy().merge(b.copy()).merge(a.copy())
        reference = oracle.finalize(left)
        assert np.array_equal(oracle.finalize(right), reference)
        assert np.array_equal(oracle.finalize(swapped), reference)


class TestFinalizeSemantics:
    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_finalize_matches_aggregate(self, make):
        oracle = make()
        rng = np.random.default_rng(11)
        items = rng.integers(0, oracle.domain_size, size=200)
        payload = oracle.privatize(items, rng=rng)

        accumulator = oracle.accumulate(oracle.make_accumulator(), payload)
        streamed = oracle.finalize(accumulator)
        batch = oracle.aggregate(payload, n_users=len(items))
        if oracle.name in EXACT_AGGREGATE:
            assert np.array_equal(streamed, batch)
        else:
            assert np.allclose(streamed, batch, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_finalize_zero_reports_raises(self, make):
        oracle = make()
        with pytest.raises(ValueError):
            oracle.finalize(oracle.make_accumulator())

    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_accumulator_rejects_other_configuration(self, make):
        oracle = make()
        other = type(oracle)(oracle.domain_size, 2.5) if oracle.name != "rr" else BinaryRandomizedResponse(2.5)
        with pytest.raises(ValueError):
            oracle.accumulate(other.make_accumulator(), None)
        mine = oracle.make_accumulator()
        with pytest.raises(ValueError):
            mine.merge(other.make_accumulator())


class TestSerialization:
    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_bytes_roundtrip(self, make):
        oracle = make()
        batches = _report_batches(oracle, n_batches=2)
        accumulator = _accumulate_all(oracle, batches)

        restored = AccumulatorState.from_bytes(accumulator.to_bytes())
        assert type(restored) is type(accumulator)
        assert restored.n_reports == accumulator.n_reports
        assert np.array_equal(oracle.finalize(restored), oracle.finalize(accumulator))

    @pytest.mark.parametrize("make", ORACLE_CASES)
    def test_restored_accumulator_keeps_accumulating(self, make):
        oracle = make()
        batches = _report_batches(oracle, n_batches=4)
        reference = _accumulate_all(oracle, batches)

        resumed = oracle.make_accumulator()
        for payload, n in batches[:2]:
            oracle.accumulate(resumed, payload, n_users=n)
        resumed = AccumulatorState.from_bytes(resumed.to_bytes())
        for payload, n in batches[2:]:
            oracle.accumulate(resumed, payload, n_users=n)
        assert np.array_equal(oracle.finalize(resumed), oracle.finalize(reference))


class TestExactSummation:
    def test_she_batch_sums_are_order_independent(self):
        """Float sums are not associative; the SHE accumulator must be.

        The same report batches accumulated in opposite orders carry the
        same multiset of per-batch partial sums, and ``math.fsum`` makes
        the finalized means independent of that order.
        """
        oracle = SummationHistogramEncoding(8, 0.8)
        rng = np.random.default_rng(0)
        items = rng.integers(0, 8, size=240)
        payload = oracle.privatize(items, rng=rng)

        forward = oracle.make_accumulator()
        for row in range(0, 240, 40):
            oracle.accumulate(forward, payload[row : row + 40])
        backward = oracle.make_accumulator()
        for row in range(200, -1, -40):
            oracle.accumulate(backward, payload[row : row + 40])
        assert sorted(map(tuple, forward.partials)) == sorted(map(tuple, backward.partials))
        assert np.array_equal(oracle.finalize(forward), oracle.finalize(backward))

    def test_she_single_batch_matches_plain_aggregate_bitwise(self):
        """One batch through the accumulator equals the batch path exactly."""
        oracle = SummationHistogramEncoding(16, 1.1)
        rng = np.random.default_rng(4)
        items = rng.integers(0, 16, size=500)
        payload = oracle.privatize(items, rng=rng)
        accumulator = oracle.accumulate(oracle.make_accumulator(), payload)
        assert np.array_equal(
            oracle.finalize(accumulator), payload.sum(axis=0) / len(items)
        )
