"""Tests for the Walsh--Hadamard transform utilities."""

import numpy as np
import pytest

from repro.frequency_oracles.hadamard import (
    fwht,
    hadamard_entry,
    hadamard_matrix,
    ifwht,
    pad_to_power_of_two,
    popcount_parity,
)


class TestPopcountParity:
    def test_small_values(self):
        assert list(popcount_parity(np.array([0, 1, 2, 3, 4, 7]))) == [0, 1, 1, 0, 1, 1]

    def test_large_values(self):
        value = (1 << 40) | (1 << 3)
        assert popcount_parity(np.array([value]))[0] == 0
        assert popcount_parity(np.array([value | 1]))[0] == 1


class TestHadamardMatrix:
    def test_entries_match_definition(self):
        matrix = hadamard_matrix(8)
        for i in range(8):
            for j in range(8):
                expected = (-1) ** bin(i & j).count("1")
                assert matrix[i, j] == expected

    def test_orthogonality(self):
        matrix = hadamard_matrix(16)
        product = matrix @ matrix.T
        assert np.allclose(product, 16 * np.eye(16))

    def test_symmetry(self):
        matrix = hadamard_matrix(8)
        assert np.allclose(matrix, matrix.T)

    def test_matches_paper_figure1_scaled(self):
        """Figure 1 of the paper shows H_8 / sqrt(8)."""
        matrix = hadamard_matrix(8) / np.sqrt(8)
        expected_row_1 = np.array([1, -1, 1, -1, 1, -1, 1, -1]) / np.sqrt(8)
        assert np.allclose(matrix[1], expected_row_1)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            hadamard_matrix(6)


class TestHadamardEntry:
    def test_vectorised_entries(self):
        rows = np.array([0, 1, 2, 3])
        cols = np.array([3, 3, 3, 3])
        matrix = hadamard_matrix(4)
        assert np.allclose(hadamard_entry(rows, cols), matrix[rows, cols])

    def test_broadcasting(self):
        rows = np.arange(4)[:, None]
        cols = np.arange(4)[None, :]
        assert np.allclose(hadamard_entry(rows, cols), hadamard_matrix(4))


class TestFwht:
    def test_matches_matrix_multiplication(self, rng):
        for size in (2, 4, 8, 32):
            vector = rng.normal(size=size)
            assert np.allclose(fwht(vector), hadamard_matrix(size) @ vector)

    def test_inverse_roundtrip(self, rng):
        vector = rng.normal(size=64)
        assert np.allclose(ifwht(fwht(vector)), vector)

    def test_length_one(self):
        assert np.allclose(fwht(np.array([3.0])), [3.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.ones(6))

    def test_does_not_mutate_input(self):
        vector = np.ones(8)
        fwht(vector)
        assert np.all(vector == 1.0)


class TestPadding:
    def test_pad_to_power_of_two(self):
        assert pad_to_power_of_two(1) == 1
        assert pad_to_power_of_two(5) == 8
        assert pad_to_power_of_two(8) == 8
        assert pad_to_power_of_two(1000) == 1024
