"""Tests for the aggregate-segment hierarchy and its supporting kernels.

PR 10 makes windowed queries over sealed epochs O(log k) instead of
O(k) by folding power-of-two runs of epochs into *aggregate segments*
(elementwise int64 sums, same framing as leaf segments).  The contract
under test:

* **Bit-identity**: any window answered through the aggregate planner
  is byte-for-byte identical to the naive per-epoch pushdown sum
  (``use_aggregates=False``), across the golden configurations.
* **Minimal cover**: ``plan_cover`` decomposes a window into aligned
  power-of-two blocks plus leaf epochs, covering each selected epoch
  exactly once and never touching an unselected one.
* **Graceful degradation**: non-contiguous windows fall back to leaf
  segments; SHE (no int pushdown) never builds aggregates; a corrupt
  aggregate is discarded and the window replanned from leaves.
* **column_sums / hash cache**: the blocked summation kernel and the
  cross-epoch OLH support cache are exact and observable.
"""

import importlib.util
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_decomposition import CASES
from test_engine import _items_for

from repro import make_protocol
from repro.core.kernels import get_backend
from repro.core.kernels.hash_cache import (
    OlhHashCache,
    configure_hash_cache,
    default_hash_cache,
    hash_cache_stats,
)
from repro.core.kernels.reference import column_sums
from repro.engine import (
    PLAN_AGGREGATE,
    PLAN_EPOCH,
    Engine,
    last,
    plan_cover,
    plan_epochs,
)

HAVE_NUMBA = importlib.util.find_spec("numba") is not None
needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")


def _sealed_engine(tmp_path, n_epochs, protocol_factory=None, users=48):
    factory = protocol_factory or (
        lambda: make_protocol("hh", 16, 1.2, branching=4)
    )
    protocol = factory()
    engine = Engine.open(factory(), store_dir=str(tmp_path / "store"))
    for epoch in range(n_epochs):
        engine.session(epoch=epoch).absorb(
            _items_for(protocol, users, epoch), rng=np.random.default_rng(epoch)
        )
        engine.seal_epoch(epoch)
    return engine


def _states_equal(a, b):
    assert a.n_reports == b.n_reports
    assert a.n_users == b.n_users
    lhs, rhs = a.children, b.children
    assert len(lhs) == len(rhs)
    for left, right in zip(lhs, rhs):
        assert set(left.vectors) == set(right.vectors)
        for name in left.vectors:
            assert np.array_equal(left.vectors[name], right.vectors[name]), name


# --------------------------------------------------------------------- #
# planner: cover correctness
# --------------------------------------------------------------------- #
class TestPlanCover:
    def test_aligned_window_is_single_aggregate(self):
        plan = plan_cover(list(range(8, 16)), lambda level, start: True, max_level=4)
        assert plan == [(PLAN_AGGREGATE, 3, 8)]

    def test_unaligned_window_mixes_levels(self):
        plan = plan_cover(list(range(6, 70)), lambda level, start: True, max_level=10)
        assert (PLAN_AGGREGATE, 5, 32) in plan
        assert plan_epochs(plan) == list(range(6, 70))

    def test_missing_aggregates_fall_back_to_leaves(self):
        plan = plan_cover([0, 1, 2, 3], lambda level, start: False, max_level=4)
        assert plan == [(PLAN_EPOCH, e) for e in range(4)]

    def test_non_contiguous_window_uses_leaves_between_runs(self):
        plan = plan_cover([0, 1, 4, 5], lambda level, start: True, max_level=4)
        assert plan == [
            (PLAN_AGGREGATE, 1, 0),
            (PLAN_AGGREGATE, 1, 4),
        ]
        scattered = plan_cover([1, 3, 5], lambda level, start: True, max_level=4)
        assert scattered == [(PLAN_EPOCH, e) for e in (1, 3, 5)]

    def test_max_level_zero_means_all_leaves(self):
        plan = plan_cover(list(range(16)), lambda level, start: True, max_level=0)
        assert plan == [(PLAN_EPOCH, e) for e in range(16)]

    @settings(max_examples=200, deadline=None)
    @given(
        selected=st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=0,
            max_size=64,
            unique=True,
        ),
        max_level=st.integers(min_value=0, max_value=8),
        denies=st.sets(st.integers(min_value=0, max_value=8)),
    )
    def test_cover_is_exact_and_disjoint(self, selected, max_level, denies):
        """cover(plan) == window, each epoch exactly once, no strays."""
        window = sorted(selected)
        plan = plan_cover(window, lambda level, start: level not in denies, max_level)
        flattened = plan_epochs(plan)
        assert flattened == window  # exact cover, in order, no overlap
        for node in plan:
            if node[0] == PLAN_AGGREGATE:
                _, level, start = node
                assert start % (1 << level) == 0  # alignment invariant
                assert level <= max_level
                assert level not in denies


# --------------------------------------------------------------------- #
# store-backed windows through the hierarchy
# --------------------------------------------------------------------- #
class TestAggregateWindows:
    def test_last_k_spanning_aggregate_boundary(self, tmp_path):
        """``last:8`` over 16 sealed epochs is one aligned L3 block."""
        engine = _sealed_engine(tmp_path, 16)
        store = engine.store
        keys = engine._resolve(last(8))
        assert keys == list(range(8, 16))
        plan = store.plan_window(keys)
        assert plan == [(PLAN_AGGREGATE, 3, 8)]
        planned = store.pushdown_state(keys)
        naive = store.pushdown_state(keys, use_aggregates=False)
        _states_equal(planned, naive)
        # The exact boundary case: a window starting mid-block.
        boundary = engine._resolve(last(9))
        nodes = store.plan_window(boundary)
        assert nodes[0] == (PLAN_EPOCH, 7)
        _states_equal(
            store.pushdown_state(boundary),
            store.pushdown_state(boundary, use_aggregates=False),
        )

    def test_explicit_non_contiguous_windows_use_leaves(self, tmp_path):
        engine = _sealed_engine(tmp_path, 12)
        store = engine.store
        window = [0, 3, 7, 11]
        assert store.plan_window(window) == [(PLAN_EPOCH, e) for e in window]
        _states_equal(
            store.pushdown_state(window),
            store.pushdown_state(window, use_aggregates=False),
        )

    @pytest.mark.parametrize(
        "case", sorted(c for c in CASES if "she" not in c.lower())
    )
    def test_golden_configs_bit_identical_through_aggregates(
        self, case, tmp_path
    ):
        factory = CASES[case]
        protocol = factory()
        if not hasattr(protocol, "domain_size"):  # pragma: no cover
            pytest.skip("windowed estimators need a 1-D domain")
        engine = _sealed_engine(tmp_path, 8, protocol_factory=factory)
        store = engine.store
        if not store.aggregate_keys():
            pytest.skip(f"{case} has no integer pushdown")
        for window in (last(8), last(5), [2, 3, 4, 5]):
            keys = engine._resolve(window)
            planned = store.pushdown_state(keys)
            naive = store.pushdown_state(keys, use_aggregates=False)
            _states_equal(planned, naive)

    def test_she_never_builds_aggregates(self, tmp_path):
        """SHE keeps float partials: no pushdown, hence no aggregates."""
        engine = _sealed_engine(
            tmp_path, 8,
            protocol_factory=lambda: make_protocol("flat", 16, 1.1, oracle="she"),
        )
        store = engine.store
        assert store.aggregate_keys() == []
        assert store.pushdown_state(list(range(8))) is None
        assert engine.estimator("all") is not None

    def test_seal_builds_and_restore_reloads(self, tmp_path):
        engine = _sealed_engine(tmp_path, 16)
        keys_before = engine.store.aggregate_keys()
        assert (1, 0) in keys_before and (3, 8) in keys_before
        engine.checkpoint()
        restored = Engine.restore(str(tmp_path / "store"))
        assert restored.store.aggregate_keys() == keys_before
        _states_equal(
            restored.store.pushdown_state(list(range(16))),
            engine.store.pushdown_state(list(range(16)), use_aggregates=False),
        )

    def test_dirty_epoch_invalidates_covering_aggregates(self, tmp_path):
        engine = _sealed_engine(tmp_path, 8)
        store = engine.store
        assert (2, 4) in store.aggregate_keys()
        engine.session(epoch=5).absorb(
            np.arange(16), rng=np.random.default_rng(99)
        )
        remaining = store.aggregate_keys()
        assert (1, 4) not in remaining
        assert (2, 4) not in remaining
        assert (3, 0) not in remaining
        assert (1, 0) in remaining  # untouched block survives
        engine.seal_epoch(5)
        assert (3, 0) in store.aggregate_keys()  # rebuilt bottom-up

    def test_corrupt_aggregate_is_discarded_and_replanned(self, tmp_path):
        engine = _sealed_engine(tmp_path, 8)
        store = engine.store
        naive = store.pushdown_state(list(range(8)), use_aggregates=False)
        entry = store.aggregate_entries()[-1]
        path = os.path.join(str(tmp_path / "store"), entry["file"])
        store.close()
        with open(path, "r+b") as handle:
            handle.seek(32)
            byte = handle.read(1)
            handle.seek(32)
            handle.write(bytes([byte[0] ^ 0x40]))
        restored = Engine.restore(str(tmp_path / "store"))
        healed = restored.store.pushdown_state(list(range(8)))
        _states_equal(healed, naive)  # repaired via leaves, not raised
        key = (entry["level"], entry["start"])
        assert key not in restored.store.aggregate_keys()

    def test_clean_checkpoint_skips_manifest_rewrite(self, tmp_path):
        engine = _sealed_engine(tmp_path, 6)
        engine.checkpoint()
        manifest = os.path.join(str(tmp_path / "store"), "MANIFEST.json")
        stamp = os.stat(manifest).st_mtime_ns
        assert not engine.store.manifest_dirty
        engine.checkpoint()  # nothing dirty, nothing built: no rewrite
        assert os.stat(manifest).st_mtime_ns == stamp


# --------------------------------------------------------------------- #
# column_sums kernel
# --------------------------------------------------------------------- #
class TestColumnSums:
    def test_matches_numpy_sum(self):
        rng = np.random.default_rng(0)
        vectors = [
            rng.integers(-1000, 1000, size=1000, dtype=np.int64)
            for _ in range(7)
        ]
        expected = np.sum(vectors, axis=0, dtype=np.int64)
        assert np.array_equal(column_sums(vectors), expected)

    def test_blocked_path_covers_large_vectors(self):
        n = (1 << 15) * 2 + 17  # spans several blocks plus a ragged tail
        vectors = [np.full(n, 3, dtype=np.int64), np.full(n, -1, dtype=np.int64)]
        out = column_sums(vectors)
        assert out.shape == (n,)
        assert np.all(out == 2)

    def test_out_is_overwritten_not_accumulated(self):
        out = np.full(4, 77, dtype=np.int64)
        result = column_sums([np.arange(4, dtype=np.int64)], out=out)
        assert result is out
        assert np.array_equal(out, [0, 1, 2, 3])

    def test_result_is_writable_even_from_readonly_views(self):
        source = np.arange(8, dtype=np.int64)
        view = source[:]
        view.flags.writeable = False
        result = column_sums([view, view])
        assert result.flags.writeable
        result += 1  # engine merges live states in place into this

    def test_empty_and_mismatch_errors(self):
        with pytest.raises(ValueError):
            column_sums([])
        with pytest.raises(ValueError):
            column_sums([np.arange(3, dtype=np.int64),
                         np.arange(4, dtype=np.int64)])
        zero = column_sums([], out=np.full(3, 9, dtype=np.int64))
        assert np.array_equal(zero, [0, 0, 0])

    @needs_numba
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=5000),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_numba_matches_reference(self, n, k, seed):
        rng = np.random.default_rng(seed)
        vectors = [
            rng.integers(-(2**40), 2**40, size=n, dtype=np.int64)
            for _ in range(k)
        ]
        reference = get_backend("numpy").column_sums(vectors)
        accelerated = get_backend("numba").column_sums(vectors)
        assert np.array_equal(accelerated, reference)


# --------------------------------------------------------------------- #
# OLH hash cache
# --------------------------------------------------------------------- #
class TestOlhHashCache:
    def _support_key(self, cache, seed=0):
        rng = np.random.default_rng(seed)
        return cache.key(
            16, 5,
            rng.integers(1, 100, size=8, dtype=np.int64),
            rng.integers(0, 100, size=8, dtype=np.int64),
            rng.integers(0, 5, size=8, dtype=np.int64),
        )

    def test_hit_miss_and_eviction_counters(self):
        cache = OlhHashCache(max_bytes=2048)
        key = self._support_key(cache)
        assert cache.get(key) is None
        support = np.ones((8, 16), dtype=np.int64)  # 1024 bytes
        cache.put(key, support)
        assert np.array_equal(cache.get(key), support)
        other = self._support_key(cache, seed=1)
        cache.put(other, np.zeros((8, 16), dtype=np.int64))
        third = self._support_key(cache, seed=2)
        cache.put(third, np.zeros((8, 16), dtype=np.int64))  # evicts LRU
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] >= 1
        assert stats["bytes"] <= 2048

    def test_key_is_sensitive_to_every_input(self):
        cache = OlhHashCache(max_bytes=1024)
        mult = np.arange(4, dtype=np.int64)
        offs = np.arange(4, dtype=np.int64)
        buck = np.arange(4, dtype=np.int64) % 3
        base = cache.key(16, 3, mult, offs, buck)
        assert cache.key(17, 3, mult, offs, buck) != base
        assert cache.key(16, 4, mult, offs, buck) != base
        assert cache.key(16, 3, mult + 1, offs, buck) != base
        assert cache.key(16, 3, mult, offs + 1, buck) != base
        assert cache.key(16, 3, mult, offs, (buck + 1) % 3) != base

    def test_disabled_cache_is_inert(self):
        cache = OlhHashCache(max_bytes=0)
        assert not cache.enabled
        key = self._support_key(cache)
        cache.put(key, np.ones((2, 16), dtype=np.int64))
        assert cache.get(key) is None
        assert cache.stats()["entries"] == 0

    def test_accumulate_bit_identical_with_cache_on_and_off(self):
        def ingest():
            protocol = make_protocol("flat", 32, 1.3, oracle="olh")
            server = protocol.server()
            rng = np.random.default_rng(7)
            items = np.arange(32).repeat(3)
            client = protocol.client()
            for report in client.encode_batches(items, 24, rng=rng):
                server.ingest(report)
            return server.state.to_bytes()

        previous = hash_cache_stats()["max_bytes"]
        try:
            configure_hash_cache(0)
            cold = ingest()
            configure_hash_cache(8 * 1024 * 1024)
            warm_first = ingest()
            before = hash_cache_stats()["hits"]
            warm_second = ingest()  # identical batches: all cache hits
            assert hash_cache_stats()["hits"] > before
            assert cold == warm_first == warm_second
        finally:
            configure_hash_cache(previous)

    def test_default_cache_stats_shape(self):
        stats = hash_cache_stats()
        for field in ("entries", "bytes", "max_bytes", "hits",
                      "misses", "evictions"):
            assert field in stats
        assert default_hash_cache().enabled == (stats["max_bytes"] > 0)
