"""Batch query engine: vectorised answers must match the per-query paths.

The batch kernels (`range_queries_batch`, `prefix_queries`,
`quantile_queries_batch`, `rectangle_queries`) answer whole workloads with
pure NumPy; these tests pin them, property-based, to the seed per-query
semantics for every protocol:

* the vectorised canonical B-adic decomposition selects exactly the node
  set of ``DomainTree.decompose_range`` (answers agree up to float-sum
  reordering, asserted at 1e-9 absolute as per the acceptance criteria);
* the Haar coefficient batch path matches the per-query coefficient path
  and the exact prefix-sum path;
* quantile batches equal the per-phi searches exactly;
* every end-to-end protocol (flat / HH with both level strategies /
  HaarHRR / 2-D grids) answers random workloads identically per-query and
  batched, including edge ranges (full domain, single item, boundaries).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidRangeError
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.hierarchy.hh import HierarchicalEstimator
from repro.hierarchy.tree import DomainTree
from repro.multidim import HierarchicalGrid2D
from repro.queries.workload import (
    RangeWorkload,
    all_range_workload,
    length_workload,
    prefix_workload,
    random_range_workload,
    sampled_range_workload,
    true_answers,
)
from repro.wavelet import HaarHRR
from repro.wavelet.haar import (
    evaluate_range_from_coefficients,
    evaluate_ranges_from_coefficients,
    haar_transform,
)

COMMON_SETTINGS = settings(max_examples=40, deadline=None)

TOLERANCE = 1e-9


def _edge_workload(domain_size: int) -> RangeWorkload:
    """Full domain, single items and boundary-hugging ranges."""
    pairs = [
        (0, domain_size - 1),
        (0, 0),
        (domain_size - 1, domain_size - 1),
        (0, domain_size // 2),
        (domain_size // 2, domain_size - 1),
    ]
    if domain_size > 2:
        pairs.append((1, domain_size - 2))
    arr = np.asarray(pairs, dtype=np.int64)
    return RangeWorkload(arr[:, 0], arr[:, 1], domain_size)


def _random_plus_edges(domain_size: int, num_queries: int, seed: int) -> RangeWorkload:
    rng = np.random.default_rng(seed)
    random_part = random_range_workload(domain_size, num_queries, rng)
    edges = _edge_workload(domain_size)
    return RangeWorkload(
        np.concatenate([random_part.lefts, edges.lefts]),
        np.concatenate([random_part.rights, edges.rights]),
        domain_size,
    )


# --------------------------------------------------------------------- #
# the vectorised canonical decomposition itself
# --------------------------------------------------------------------- #
class TestBatchDecomposition:
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=2, max_value=400),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @COMMON_SETTINGS
    def test_batch_runs_select_decompose_range_node_sets(
        self, branching, domain_size, seed
    ):
        tree = DomainTree(domain_size, branching)
        workload = _random_plus_edges(domain_size, 30, seed)
        runs = tree.decompose_ranges_batch(workload.lefts, workload.rights)
        for query_index in range(len(workload)):
            selected = set()
            for level, (left_lo, left_hi, right_lo, right_hi) in enumerate(runs):
                for lo, hi in (
                    (left_lo[query_index], left_hi[query_index]),
                    (right_lo[query_index], right_hi[query_index]),
                ):
                    for index in range(int(lo), int(hi) + 1):
                        selected.add((level, index))
            expected = {
                (node.level, node.index)
                for node in tree.decompose_range(
                    int(workload.lefts[query_index]),
                    int(workload.rights[query_index]),
                )
            }
            assert selected == expected

    def test_full_padded_domain_decomposes_to_root(self):
        tree = DomainTree(16, 2)
        runs = tree.decompose_ranges_batch(np.array([0]), np.array([15]))
        root_left_lo, root_left_hi = runs[0][0], runs[0][1]
        assert root_left_lo[0] == 0 and root_left_hi[0] == 0
        for level in range(1, tree.num_levels):
            left_lo, left_hi, right_lo, right_hi = runs[level]
            assert left_hi[0] < left_lo[0] and right_hi[0] < right_lo[0]


# --------------------------------------------------------------------- #
# hierarchical estimators (both consistency states, synthetic values)
# --------------------------------------------------------------------- #
class TestHierarchicalBatch:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=300),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @COMMON_SETTINGS
    def test_inconsistent_batch_matches_per_query_decomposition(
        self, branching, domain_size, seed
    ):
        rng = np.random.default_rng(seed)
        tree = DomainTree(domain_size, branching)
        levels = [
            rng.standard_normal(tree.level_size(level))
            for level in range(tree.num_levels)
        ]
        estimator = HierarchicalEstimator(tree, levels, consistent=False)
        workload = _random_plus_edges(domain_size, 40, seed)
        batch = estimator.range_queries_batch(workload.lefts, workload.rights)
        for query_index in range(len(workload)):
            nodes = tree.decompose_range(
                int(workload.lefts[query_index]), int(workload.rights[query_index])
            )
            seed_answer = float(
                sum(levels[node.level][node.index] for node in nodes)
            )
            assert batch[query_index] == pytest.approx(seed_answer, abs=TOLERANCE)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @COMMON_SETTINGS
    def test_consistent_batch_matches_per_query(self, branching, domain_size, seed):
        rng = np.random.default_rng(seed)
        tree = DomainTree(domain_size, branching)
        levels = [
            rng.standard_normal(tree.level_size(level))
            for level in range(tree.num_levels)
        ]
        estimator = HierarchicalEstimator(
            tree, levels, consistent=False
        ).with_consistency()
        workload = _random_plus_edges(domain_size, 30, seed)
        batch = estimator.range_queries_batch(workload.lefts, workload.rights)
        per_query = np.array([estimator.range_query(query) for query in workload])
        np.testing.assert_allclose(batch, per_query, atol=TOLERANCE)


# --------------------------------------------------------------------- #
# Haar coefficient path
# --------------------------------------------------------------------- #
class TestHaarBatch:
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @COMMON_SETTINGS
    def test_coefficient_batch_matches_per_query_and_exact(self, log_domain, seed):
        domain_size = 2**log_domain
        rng = np.random.default_rng(seed)
        vector = rng.standard_normal(domain_size)
        coefficients = haar_transform(vector)
        workload = _random_plus_edges(domain_size, 40, seed)
        batch = evaluate_ranges_from_coefficients(
            coefficients, workload.lefts, workload.rights
        )
        prefix = np.concatenate(([0.0], np.cumsum(vector)))
        for query_index in range(len(workload)):
            left = int(workload.lefts[query_index])
            right = int(workload.rights[query_index])
            per_query = evaluate_range_from_coefficients(coefficients, left, right)
            assert batch[query_index] == pytest.approx(per_query, abs=TOLERANCE)
            assert batch[query_index] == pytest.approx(
                prefix[right + 1] - prefix[left], abs=1e-8
            )


# --------------------------------------------------------------------- #
# end-to-end protocols: batch == per-query on real estimators
# --------------------------------------------------------------------- #
def _protocol_estimators(small_cauchy):
    """One finalized estimator per protocol family the paper studies."""
    counts = small_cauchy.counts()
    domain_size = len(counts)
    protocols = [
        FlatRangeQuery(domain_size, 1.1, oracle="oue"),
        HierarchicalHistogram(domain_size, 1.1, branching=4, oracle="oue", consistency=False),
        HierarchicalHistogram(domain_size, 1.1, branching=4, oracle="oue", consistency=True),
        HierarchicalHistogram(
            domain_size, 1.1, branching=4, oracle="oue",
            consistency=False, level_strategy="split",
        ),
        HierarchicalHistogram(domain_size, 1.1, branching=2, oracle="olh", consistency=True),
        HaarHRR(domain_size, 1.1),
    ]
    rng = np.random.default_rng(99)
    return [
        (protocol, protocol.simulate_aggregate(counts, rng=rng)) for protocol in protocols
    ]


class TestProtocolBatchEquivalence:
    def test_batch_matches_per_query_for_every_protocol(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        workload = _random_plus_edges(domain_size, 60, seed=3)
        for protocol, estimator in _protocol_estimators(small_cauchy):
            batch = estimator.range_queries_batch(workload.lefts, workload.rights)
            per_query = np.array(
                [estimator.range_query(query) for query in workload]
            )
            np.testing.assert_allclose(
                batch, per_query, atol=TOLERANCE,
                err_msg=f"batch != per-query for {protocol.name}",
            )
            # Every accepted workload form dispatches to the same kernel.
            np.testing.assert_array_equal(batch, estimator.range_queries(workload))
            np.testing.assert_array_equal(
                batch, estimator.range_queries((workload.lefts, workload.rights))
            )
            np.testing.assert_array_equal(
                batch,
                estimator.range_queries(
                    np.stack([workload.lefts, workload.rights], axis=1)
                ),
            )
            np.testing.assert_array_equal(
                batch, estimator.range_queries(workload.as_specs())
            )

    def test_prefix_batch_matches_per_query(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        endpoints = np.array([0, 1, domain_size // 2, domain_size - 1])
        for protocol, estimator in _protocol_estimators(small_cauchy):
            batch = estimator.prefix_queries(endpoints)
            per_query = np.array(
                [estimator.prefix_query(int(endpoint)) for endpoint in endpoints]
            )
            np.testing.assert_allclose(batch, per_query, atol=TOLERANCE)

    def test_quantile_batch_matches_per_phi_exactly(self, small_cauchy):
        phis = np.linspace(0.0, 1.0, 23)
        for protocol, estimator in _protocol_estimators(small_cauchy):
            batch = estimator.quantile_queries_batch(phis)
            per_phi = [estimator.quantile_query(float(phi)) for phi in phis]
            assert batch.tolist() == per_phi
            assert estimator.quantile_queries(phis) == per_phi

    def test_haar_coefficient_batch_on_estimator(self, small_cauchy):
        counts = small_cauchy.counts()
        domain_size = len(counts)
        estimator = HaarHRR(domain_size, 1.1).simulate_aggregate(
            counts, rng=np.random.default_rng(5)
        )
        workload = _random_plus_edges(domain_size, 50, seed=11)
        batch = estimator.range_queries_from_coefficients(
            workload.lefts, workload.rights
        )
        per_query = np.array(
            [estimator.range_query_from_coefficients(query) for query in workload]
        )
        np.testing.assert_allclose(batch, per_query, atol=TOLERANCE)
        # The coefficient path and the prefix-sum path agree (exact
        # invertibility of the Haar representation).
        np.testing.assert_allclose(
            batch,
            estimator.range_queries_batch(workload.lefts, workload.rights),
            atol=1e-8,
        )


def _seed_rectangle_answer(estimator, x_range, y_range) -> float:
    """The seed per-query algorithm, reimplemented as an independent oracle:
    sum the grid cells indexed by the Cartesian product of the per-axis
    canonical decompositions, expanding root nodes to their level-1
    children."""
    tree_x, tree_y = estimator._tree_x, estimator._tree_y
    nodes_x = tree_x.decompose_range(*x_range)
    nodes_y = tree_y.decompose_range(*y_range)
    answer = 0.0
    for node_x in nodes_x:
        for node_y in nodes_y:
            level_x, level_y = max(node_x.level, 1), max(node_y.level, 1)
            grid = estimator.grid(level_x, level_y)
            xs = range(tree_x.level_size(1)) if node_x.level == 0 else [node_x.index]
            ys = range(tree_y.level_size(1)) if node_y.level == 0 else [node_y.index]
            for index_x in xs:
                for index_y in ys:
                    answer += float(grid[index_x, index_y])
    return answer


class TestGrid2DBatch:
    def test_rectangle_batch_matches_per_query(self):
        rng = np.random.default_rng(21)
        protocol = HierarchicalGrid2D(16, 32, epsilon=2.0, branching=2, oracle="hrr")
        items_x = rng.integers(0, 16, size=4000)
        items_y = rng.integers(0, 32, size=4000)
        estimator = protocol.run(items_x, items_y, rng=rng)
        endpoints = rng.integers(0, [16, 16, 32, 32], size=(40, 4))
        x_lefts = np.minimum(endpoints[:, 0], endpoints[:, 1])
        x_rights = np.maximum(endpoints[:, 0], endpoints[:, 1])
        y_lefts = np.minimum(endpoints[:, 2], endpoints[:, 3])
        y_rights = np.maximum(endpoints[:, 2], endpoints[:, 3])
        # Edge rectangles: full plane, single cell, full rows/columns.
        x_lefts = np.concatenate([x_lefts, [0, 0, 0, 5]])
        x_rights = np.concatenate([x_rights, [15, 0, 15, 5]])
        y_lefts = np.concatenate([y_lefts, [0, 0, 7, 0]])
        y_rights = np.concatenate([y_rights, [31, 0, 7, 31]])
        batch = estimator.rectangle_queries(x_lefts, x_rights, y_lefts, y_rights)
        for query_index in range(len(x_lefts)):
            x_range = (int(x_lefts[query_index]), int(x_rights[query_index]))
            y_range = (int(y_lefts[query_index]), int(y_rights[query_index]))
            # Independent oracle: the seed per-query algorithm over the
            # decomposition node products (rectangle_query itself is now a
            # wrapper over the batch kernel, so it cannot serve as one).
            seed_answer = _seed_rectangle_answer(estimator, x_range, y_range)
            assert batch[query_index] == pytest.approx(seed_answer, abs=TOLERANCE)
            assert estimator.rectangle_query(x_range, y_range) == pytest.approx(
                seed_answer, abs=TOLERANCE
            )

    def test_rectangle_batch_validation(self):
        rng = np.random.default_rng(2)
        protocol = HierarchicalGrid2D(8, 8, epsilon=2.0)
        estimator = protocol.run(
            rng.integers(0, 8, size=500), rng.integers(0, 8, size=500), rng=rng
        )
        with pytest.raises(InvalidRangeError):
            estimator.rectangle_queries(
                np.array([4]), np.array([2]), np.array([0]), np.array([1])
            )
        with pytest.raises(InvalidRangeError):
            estimator.rectangle_queries(
                np.array([0]), np.array([8]), np.array([0]), np.array([1])
            )


# --------------------------------------------------------------------- #
# workload layer
# --------------------------------------------------------------------- #
class TestRangeWorkload:
    def test_array_generators_match_spec_generators(self):
        domain_size = 37
        assert all_range_workload(domain_size).as_specs() == [
            spec for spec in all_range_workload(domain_size)
        ]
        from repro.queries.workload import (
            all_range_queries,
            prefix_queries,
            sampled_range_queries,
        )

        workload = all_range_workload(domain_size, min_length=3)
        assert workload.as_specs() == all_range_queries(domain_size, min_length=3)
        assert prefix_workload(domain_size).as_specs() == prefix_queries(domain_size)
        sampled = sampled_range_workload(domain_size, 7)
        assert sampled.as_specs() == sampled_range_queries(domain_size, 7)
        lengths = length_workload(domain_size, 5)
        assert np.all(lengths.lengths == 5)
        assert len(lengths) == domain_size - 5 + 1

    def test_one_shot_validation(self):
        with pytest.raises(InvalidRangeError):
            RangeWorkload(np.array([3]), np.array([1]))
        with pytest.raises(InvalidRangeError):
            RangeWorkload(np.array([-1]), np.array([1]))
        with pytest.raises(InvalidRangeError):
            RangeWorkload(np.array([0]), np.array([10]), domain_size=10)
        with pytest.raises(InvalidRangeError):
            RangeWorkload(np.array([0, 1]), np.array([1]))

    def test_true_answers_accepts_both_forms(self):
        rng = np.random.default_rng(0)
        frequencies = rng.random(32)
        frequencies /= frequencies.sum()
        workload = random_range_workload(32, 100, rng)
        via_arrays = true_answers(workload, frequencies)
        via_specs = true_answers(workload.as_specs(), frequencies)
        np.testing.assert_array_equal(via_arrays, via_specs)
        brute = np.array(
            [
                frequencies[left : right + 1].sum()
                for left, right in zip(workload.lefts, workload.rights)
            ]
        )
        np.testing.assert_allclose(via_arrays, brute, atol=1e-12)

    def test_group_indices_by_length(self):
        workload = RangeWorkload(np.array([0, 2, 1]), np.array([1, 3, 1]))
        groups = workload.group_indices_by_length()
        assert sorted(groups) == [1, 2]
        np.testing.assert_array_equal(groups[2], [0, 1])
        np.testing.assert_array_equal(groups[1], [2])

    def test_empty_workload(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        estimator = FlatRangeQuery(domain_size, 1.1).simulate_aggregate(
            small_cauchy.counts(), rng=np.random.default_rng(1)
        )
        empty = RangeWorkload(np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert estimator.range_queries(empty).shape == (0,)
        assert estimator.range_queries([]).shape == (0,)

    def test_batch_validation_on_estimator(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        estimator = FlatRangeQuery(domain_size, 1.1).simulate_aggregate(
            small_cauchy.counts(), rng=np.random.default_rng(1)
        )
        with pytest.raises(InvalidRangeError):
            estimator.range_queries_batch(np.array([0]), np.array([domain_size]))
        with pytest.raises(InvalidRangeError):
            estimator.range_queries_batch(np.array([5]), np.array([2]))
        with pytest.raises(InvalidRangeError):
            estimator.range_queries_batch(np.array([-2]), np.array([2]))

    def test_quantile_rejects_nan_and_out_of_range(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        estimator = FlatRangeQuery(domain_size, 1.1).simulate_aggregate(
            small_cauchy.counts(), rng=np.random.default_rng(1)
        )
        for bad in (float("nan"), -0.1, 1.1):
            with pytest.raises(ValueError):
                estimator.quantile_query(bad)
            with pytest.raises(ValueError):
                estimator.quantile_queries_batch([0.5, bad])

    def test_malformed_query_tuples_fail_loudly(self, small_cauchy):
        domain_size = len(small_cauchy.counts())
        estimator = FlatRangeQuery(domain_size, 1.1).simulate_aggregate(
            small_cauchy.counts(), rng=np.random.default_rng(1)
        )
        # A (lefts, rights) pair of *lists* is not silently reinterpreted
        # as two individual 2-element queries: the 3-element entries fail
        # strict unpacking instead of being truncated.
        with pytest.raises(ValueError):
            estimator.range_queries(([0, 5, 7], [3, 6, 9]))


# --------------------------------------------------------------------- #
# process-parallel repetitions (satellite: runner workers)
# --------------------------------------------------------------------- #
class TestParallelEvaluateMethod:
    def test_parallel_repetitions_identical_to_serial(self, small_cauchy):
        from repro.experiments.runner import (
            WorkloadEvaluation,
            evaluate_method,
            make_method,
        )

        counts = small_cauchy.counts()
        domain_size = len(counts)
        frequencies = counts / counts.sum()
        workload = WorkloadEvaluation.from_frequencies(
            random_range_workload(domain_size, 50, np.random.default_rng(4)),
            frequencies,
        )
        protocol = make_method("HHc4", domain_size, 1.1)
        serial = evaluate_method(protocol, counts, workload, repetitions=3, rng=11)
        parallel = evaluate_method(
            protocol, counts, workload, repetitions=3, rng=11, workers=2
        )
        assert serial == parallel

    def test_workers_validation(self, small_cauchy):
        from repro.experiments.runner import (
            WorkloadEvaluation,
            evaluate_method,
            make_method,
        )

        counts = small_cauchy.counts()
        domain_size = len(counts)
        workload = WorkloadEvaluation.from_frequencies(
            prefix_workload(domain_size), counts / counts.sum()
        )
        protocol = make_method("FlatOUE", domain_size, 1.1)
        with pytest.raises(ValueError):
            evaluate_method(protocol, counts, workload, repetitions=1, workers=0)
