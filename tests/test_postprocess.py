"""Tests for the unified post-processing subsystem (:mod:`repro.core.postprocess`).

Four guarantees anchor the pipeline layer:

* **Bit-identical defaults**: the empty pipeline (and the hierarchical
  ``consistency=True`` -> ``"consistency"`` mapping) reproduces the
  pre-pipeline outputs exactly; the golden decomposition tests pin this
  for all 14 configurations, and the equivalences are re-checked here at
  the pipeline level.
* **Mathematical contracts**: NormSub projects onto the simplex
  (hypothesis-checked), MonotoneCdf yields monotone clipped CDFs, the tree
  processors match the relocated constrained-inference math, and the grid
  processor reconciles shared marginals.
* **Round-trips**: pipeline spellings survive ``spec()`` ->
  ``protocol_from_spec``, serialized states, report files, engine
  checkpoints and the CLI ``--postprocess`` flag.
* **Accuracy**: on the ablation sweep's synthetic populations NormSub
  never increases the whole-workload range-query MSE of flat OUE.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import make_protocol, protocol_from_spec
from repro.cli import main as cli_main
from repro.core.postprocess import (
    FREQUENCIES,
    GRID,
    HAAR,
    TREE,
    GridMarginalConsistency,
    HaarCoefficientThreshold,
    MonotoneCdf,
    NonNegativeClip,
    NormSub,
    PostContext,
    PostPipeline,
    available_pipelines,
    make_pipeline,
    project_onto_simplex,
    tree_enforce_consistency,
)
from repro.core.session import load_server
from repro.engine import Engine
from repro.experiments.runner import build_range_workload
from repro.hierarchy.least_squares import least_squares_levels
from repro.hierarchy.tree import DomainTree
from repro.queries.prefix import monotone_cdf
from repro.queries.workload import true_answers
from repro.wavelet.haar import HaarCoefficients

COMMON_SETTINGS = settings(max_examples=60, deadline=None)


# --------------------------------------------------------------------- #
# registry and pipeline mechanics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_every_token_resolves(self):
        for token in available_pipelines():
            pipeline = make_pipeline(token)
            assert isinstance(pipeline, PostPipeline)
            assert pipeline.spec == token or token == "none"

    def test_composite_spellings(self):
        pipeline = make_pipeline("consistency+norm_sub")
        assert pipeline.spec == "consistency+norm_sub"
        assert [processor.name for processor in pipeline.processors] == [
            "weighted_averaging",
            "mean_consistency",
            "norm_sub",
        ]

    def test_none_spellings_are_empty(self):
        for spelling in (None, "none", "", "none+none"):
            pipeline = make_pipeline(spelling)
            assert not pipeline
            assert pipeline.spec == "none"

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError, match="unknown post-processing token"):
            make_pipeline("bogus")

    def test_kind_validation_fails_fast(self):
        with pytest.raises(ValueError, match="does not apply to 'frequencies'"):
            make_pipeline("consistency").validate_for(FREQUENCIES)
        with pytest.raises(ValueError, match="does not apply to 'haar'"):
            make_pipeline("norm_sub").validate_for(HAAR)
        make_pipeline("clip+norm_sub").validate_for(TREE)  # tree-compatible

    def test_protocol_constructors_validate_eagerly(self):
        with pytest.raises(ValueError):
            make_protocol("flat", 16, 1.1, postprocess="consistency")
        with pytest.raises(ValueError):
            make_protocol("haar", 16, 1.1, postprocess="norm_sub")
        with pytest.raises(ValueError):
            make_protocol("grid2d", 16, 1.1, postprocess="monotone_cdf")
        with pytest.raises(ValueError):
            make_protocol("hh", 16, 1.1, postprocess="definitely-not-a-token")

    def test_parametric_tokens(self):
        pipeline = make_pipeline("haar_threshold:3.5")
        assert pipeline.spec == "haar_threshold:3.5"
        assert pipeline.processors[0].multiplier == 3.5
        relaxed = make_pipeline("mean_consistency:none")
        assert relaxed.processors[0].root_value is None
        assert make_pipeline("mean_consistency:0.5").processors[0].root_value == 0.5
        with pytest.raises(ValueError, match="does not take"):
            make_pipeline("clip:2.0")
        with pytest.raises(ValueError, match="malformed parameter"):
            make_pipeline("haar_threshold:abc")

    def test_parameterized_processors_round_trip_through_spec(self):
        # A tuned processor instance must survive spec() -> rebuild with
        # its parameters intact (not silently reset to registry defaults).
        protocol = make_protocol(
            "haar", 64, 1.1, postprocess=HaarCoefficientThreshold(multiplier=10.0)
        )
        assert protocol.spec()["postprocess"] == "haar_threshold:10.0"
        rebuilt = protocol_from_spec(protocol.spec())
        counts = np.random.default_rng(28).integers(0, 200, size=64)
        a = protocol.simulate_aggregate(counts, rng=np.random.default_rng(29))
        b = rebuilt.simulate_aggregate(counts, rng=np.random.default_rng(29))
        assert np.array_equal(a.estimated_frequencies(), b.estimated_frequencies())
        default = make_protocol("haar", 64, 1.1, postprocess="haar_threshold")
        c = default.simulate_aggregate(counts, rng=np.random.default_rng(29))
        assert not np.array_equal(a.estimated_frequencies(), c.estimated_frequencies())

    def test_tree_consistency_folding(self):
        assert make_pipeline("consistency").tree_consistent() is True
        assert make_pipeline("consistency+norm_sub").tree_consistent() is False
        assert make_pipeline("least_squares").tree_consistent() is True
        assert make_pipeline("none").tree_consistent() is False
        assert make_pipeline("none").tree_consistent(initial=True) is True


# --------------------------------------------------------------------- #
# processor math
# --------------------------------------------------------------------- #
class TestSimplexProjection:
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @COMMON_SETTINGS
    def test_normsub_outputs_live_on_the_simplex(self, values):
        projected = project_onto_simplex(np.asarray(values))
        assert np.all(projected >= 0.0)
        assert np.isclose(projected.sum(), 1.0, atol=1e-9)

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @COMMON_SETTINGS
    def test_projection_is_idempotent(self, values):
        once = project_onto_simplex(np.asarray(values))
        twice = project_onto_simplex(once)
        assert np.allclose(once, twice, atol=1e-9)

    def test_simplex_vectors_are_fixed_points(self):
        rng = np.random.default_rng(0)
        simplex = rng.dirichlet(np.ones(50))
        assert np.allclose(project_onto_simplex(simplex), simplex, atol=1e-12)

    def test_projection_never_increases_distance_to_simplex_points(self):
        rng = np.random.default_rng(1)
        truth = rng.dirichlet(np.ones(64))
        noisy = truth + rng.normal(0, 0.05, size=64)
        projected = project_onto_simplex(noisy)
        assert np.linalg.norm(projected - truth) <= np.linalg.norm(noisy - truth) + 1e-12


class TestFrequencyProcessors:
    def test_clip_clamps_negatives_only(self):
        context = PostContext(kind=FREQUENCIES)
        values = np.asarray([-0.2, 0.0, 0.3, -0.1, 0.5])
        clipped = NonNegativeClip().apply(values, context)
        assert np.array_equal(clipped, [0.0, 0.0, 0.3, 0.0, 0.5])
        assert values[0] == -0.2  # input untouched

    def test_monotone_cdf_processor_contract(self):
        context = PostContext(kind=FREQUENCIES)
        rng = np.random.default_rng(2)
        noisy = rng.dirichlet(np.ones(32)) + rng.normal(0, 0.05, size=32)
        cleaned = MonotoneCdf().apply(noisy, context)
        cdf = np.cumsum(cleaned)
        assert np.all(cleaned >= 0.0)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] <= 1.0 + 1e-12

    def test_monotonize_matches_the_old_inline_logic(self):
        rng = np.random.default_rng(3)
        raw_cdf = np.cumsum(rng.normal(0.03, 0.05, size=40))
        expected = np.clip(np.maximum.accumulate(raw_cdf), 0.0, 1.0)
        assert np.array_equal(MonotoneCdf.monotonize(raw_cdf), expected)

    def test_queries_prefix_delegates_to_the_processor(self, small_cauchy):
        protocol = make_protocol("flat", 64, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=np.random.default_rng(4))
        via_helper = monotone_cdf(estimator)
        via_processor = MonotoneCdf.monotonize(estimator.cdf(), clip=True)
        assert np.array_equal(via_helper, via_processor)
        assert np.all(np.diff(via_helper) >= 0.0)
        assert via_helper.min() >= 0.0 and via_helper.max() <= 1.0


class TestTreeProcessors:
    def _noisy_levels(self, domain, branching, seed):
        tree = DomainTree(domain, branching)
        rng = np.random.default_rng(seed)
        levels = [
            rng.normal(1.0 / tree.level_size(level), 0.05, size=tree.level_size(level))
            for level in range(tree.num_levels)
        ]
        levels[0] = np.array([1.0])
        return tree, levels

    def test_consistency_pipeline_matches_enforce_consistency(self):
        tree, levels = self._noisy_levels(64, 4, seed=5)
        context = PostContext(kind=TREE, branching=4, tree=tree)
        via_pipeline = make_pipeline("consistency").apply(levels, context)
        direct = tree_enforce_consistency(levels, 4, root_value=1.0)
        for a, b in zip(via_pipeline, direct):
            assert np.array_equal(a, b)

    def test_least_squares_pipeline_matches_module(self):
        tree, levels = self._noisy_levels(16, 2, seed=6)
        context = PostContext(kind=TREE, branching=2, tree=tree)
        via_pipeline = make_pipeline("least_squares").apply(levels, context)
        direct = least_squares_levels(tree, levels)
        for a, b in zip(via_pipeline, direct):
            assert np.array_equal(a, b)

    def test_norm_sub_projects_every_non_root_level(self):
        tree, levels = self._noisy_levels(64, 4, seed=7)
        context = PostContext(kind=TREE, branching=4, tree=tree)
        projected = NormSub().apply(levels, context)
        assert np.array_equal(projected[0], levels[0])
        for level in projected[1:]:
            assert np.all(level >= 0.0)
            assert np.isclose(level.sum(), 1.0, atol=1e-9)

    def test_missing_context_fails_cleanly(self):
        _, levels = self._noisy_levels(16, 2, seed=8)
        with pytest.raises(Exception, match="branching"):
            make_pipeline("consistency").apply(levels, PostContext(kind=TREE))
        with pytest.raises(Exception, match="tree"):
            make_pipeline("least_squares").apply(levels, PostContext(kind=TREE, branching=2))


class TestHaarThreshold:
    def test_zeroes_sub_floor_details_and_keeps_strong_ones(self):
        details = [np.asarray([0.5, -0.001, 0.3, 0.0005]), np.asarray([0.002, -0.4])]
        coefficients = HaarCoefficients(smooth=0.5, details=details)
        context = PostContext(kind=HAAR, noise_variances={1: 1e-4, 2: 1e-4})
        out = HaarCoefficientThreshold(multiplier=2.0).apply(coefficients, context)
        assert np.array_equal(out.details[0], [0.5, 0.0, 0.3, 0.0])
        assert np.array_equal(out.details[1], [0.0, -0.4])
        # Input untouched; infinite variances (no users) leave values alone.
        assert coefficients.details[0][1] == -0.001
        context_inf = PostContext(kind=HAAR, noise_variances={1: float("inf"), 2: 1e-4})
        untouched = HaarCoefficientThreshold().apply(coefficients, context_inf)
        assert np.array_equal(untouched.details[0], details[0])

    def test_missing_noise_floor_fails_cleanly(self):
        coefficients = HaarCoefficients(smooth=0.5, details=[np.zeros(2)])
        with pytest.raises(Exception, match="noise variances"):
            HaarCoefficientThreshold().apply(coefficients, PostContext(kind=HAAR))

    def test_protocol_surface_reduces_reconstruction_noise(self):
        counts = np.zeros(64)
        counts[10] = 4000
        counts[40] = 6000
        raw = make_protocol("haar", 64, 1.1).simulate_aggregate(
            counts, rng=np.random.default_rng(9)
        )
        denoised = make_protocol(
            "haar", 64, 1.1, postprocess="haar_threshold"
        ).simulate_aggregate(counts, rng=np.random.default_rng(9))
        truth = counts / counts.sum()
        raw_error = np.mean((raw.estimated_frequencies() - truth) ** 2)
        denoised_error = np.mean((denoised.estimated_frequencies() - truth) ** 2)
        assert denoised_error <= raw_error


class TestGridMarginalConsistency:
    def test_shared_marginals_agree_after_processing(self):
        rng = np.random.default_rng(10)
        tree = DomainTree(16, 2)
        grids = {
            (lx, ly): rng.normal(0.1, 0.05, size=(tree.level_size(lx), tree.level_size(ly)))
            for lx in range(1, 5)
            for ly in range(1, 5)
        }
        out = GridMarginalConsistency().apply(grids, PostContext(kind=GRID))
        for lx in range(1, 5):
            members = [out[(lx, ly)].sum(axis=1) for ly in range(1, 5)]
            for marginal in members[1:]:
                assert np.allclose(marginal, members[0], atol=1e-9)
        # The y-axis pass runs last, so y-marginals agree exactly too.
        for ly in range(1, 5):
            members = [out[(lx, ly)].sum(axis=0) for lx in range(1, 5)]
            for marginal in members[1:]:
                assert np.allclose(marginal, members[0], atol=1e-9)

    def test_protocol_surface_keeps_rectangle_accuracy(self):
        protocol = make_protocol("grid2d", 16, 1.5, branching=2, postprocess="grid_consistency")
        rng = np.random.default_rng(11)
        items = rng.integers(0, 16, size=(20_000, 2))
        estimator = protocol.run(items[:, 0], items[:, 1], rng=np.random.default_rng(12))
        answer = estimator.rectangle_query((0, 15), (0, 15))
        assert answer == pytest.approx(1.0, abs=0.2)


# --------------------------------------------------------------------- #
# default equivalences (the golden tests pin the full 14-config matrix)
# --------------------------------------------------------------------- #
class TestDefaultEquivalence:
    def test_consistency_flag_equals_consistency_pipeline(self):
        counts = np.random.default_rng(13).integers(0, 300, size=64)
        legacy = make_protocol("hh", 64, 1.1, branching=4, consistency=True)
        pipelined = make_protocol(
            "hh", 64, 1.1, branching=4, consistency=False, postprocess="consistency"
        )
        a = legacy.simulate_aggregate(counts, rng=np.random.default_rng(14))
        b = pipelined.simulate_aggregate(counts, rng=np.random.default_rng(14))
        assert np.array_equal(a.estimated_frequencies(), b.estimated_frequencies())
        assert a.is_consistent and b.is_consistent

    def test_explicit_none_equals_default_for_every_family(self):
        counts = np.random.default_rng(15).integers(1, 100, size=32)
        for handle, kwargs in (
            ("flat", {}),
            ("hh", {"consistency": False}),
            ("haar", {}),
        ):
            default = make_protocol(handle, 32, 1.1, **kwargs)
            explicit = make_protocol(handle, 32, 1.1, postprocess="none", **kwargs)
            a = default.simulate_aggregate(counts, rng=np.random.default_rng(16))
            b = explicit.simulate_aggregate(counts, rng=np.random.default_rng(16))
            assert np.array_equal(a.estimated_frequencies(), b.estimated_frequencies()), handle


class TestHierarchicalFlagTruthfulness:
    """An explicit pipeline drives the reported flag and the CI suffix."""

    def test_pipeline_none_overrides_default_consistency(self):
        protocol = make_protocol("hh", 64, 1.1, postprocess="none")
        assert protocol.consistency is False
        assert protocol.name == "TreeOUE"
        counts = np.random.default_rng(30).integers(0, 100, size=64)
        estimator = protocol.simulate_aggregate(counts, rng=np.random.default_rng(31))
        assert estimator.is_consistent is False

    def test_pipeline_consistency_reports_ci(self):
        protocol = make_protocol("hh", 64, 1.1, consistency=False, postprocess="consistency")
        assert protocol.consistency is True
        assert protocol.name == "TreeOUECI"

    def test_consistency_breaking_pipeline_reports_false(self):
        protocol = make_protocol("hh", 64, 1.1, postprocess="consistency+norm_sub")
        assert protocol.consistency is False
        assert protocol.name == "TreeOUE"
        # The reported flag survives the spec round-trip.
        rebuilt = protocol_from_spec(protocol.spec())
        assert rebuilt.consistency is False
        assert rebuilt.spec() == protocol.spec()


class TestWithConsistency:
    """Satellite: idempotent, cache-safe hierarchical post-processing."""

    def _estimator(self):
        counts = np.random.default_rng(17).integers(0, 500, size=64)
        protocol = make_protocol("hh", 64, 1.1, branching=4, consistency=False)
        return protocol.simulate_aggregate(counts, rng=np.random.default_rng(18))

    def test_with_consistency_is_idempotent(self):
        raw = self._estimator()
        once = raw.with_consistency()
        assert once is not raw
        assert once.with_consistency() is once
        assert once.with_consistency().with_consistency() is once

    def test_no_stale_caches_after_post_processing(self):
        raw = self._estimator()
        lefts = np.asarray([0, 3, 10], np.int64)
        rights = np.asarray([63, 40, 20], np.int64)
        # Warm every cache on the raw estimator first.
        raw.range_queries_batch(lefts, rights)
        raw.quantile_queries_batch([0.25, 0.5])
        fixed = raw.with_consistency()
        assert fixed._prefix_cache is None
        assert fixed._monotone_cdf_cache is None
        assert fixed._level_prefix_cache is None
        fresh = self._estimator().with_consistency()
        assert np.array_equal(
            fixed.range_queries_batch(lefts, rights),
            fresh.range_queries_batch(lefts, rights),
        )
        assert np.array_equal(
            fixed.quantile_queries_batch([0.25, 0.5]),
            fresh.quantile_queries_batch([0.25, 0.5]),
        )


class TestDeprecatedConsistencyAlias:
    """Satellite: the legacy entry point warns but stays behavior-identical."""

    def test_enforce_consistency_warns_and_matches(self):
        from repro.hierarchy.consistency import enforce_consistency

        rng = np.random.default_rng(19)
        levels = [np.array([1.0]), rng.normal(0.25, 0.02, 4), rng.normal(0.0625, 0.02, 16)]
        with pytest.warns(DeprecationWarning, match="postprocess"):
            legacy = enforce_consistency(levels, 4, root_value=1.0)
        canonical = tree_enforce_consistency(levels, 4, root_value=1.0)
        for a, b in zip(legacy, canonical):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------- #
# acceptance: NormSub on the ablation sweep's populations
# --------------------------------------------------------------------- #
class TestNormSubAccuracyAcceptance:
    @pytest.mark.parametrize("domain_size", [64, 256])
    def test_norm_sub_never_increases_workload_mse(self, domain_size):
        """Flat-OUE whole-workload MSE with NormSub <= raw.

        The per-seed guarantee is the item-level one (projection onto a
        convex set containing the truth contracts the L2 error); the
        workload-level comparison uses the ablation sweep's metric -- the
        MSE *mean over repetitions* -- on the sweep's synthetic Cauchy
        populations at its smoke scale (``n = 2^14`` users).
        """
        from repro.experiments.runner import cauchy_counts

        raw_mses, cleaned_mses = [], []
        for seed in range(10):
            counts = cauchy_counts(domain_size, 2**14, 0.4, rng=np.random.default_rng(seed))
            frequencies = counts / counts.sum()
            workload = build_range_workload(domain_size, 2**7, 16)
            truths = true_answers(workload, frequencies)
            raw = make_protocol("flat", domain_size, 1.1)
            cleaned = make_protocol("flat", domain_size, 1.1, postprocess="norm_sub")
            raw_estimator = raw.simulate_aggregate(counts, rng=np.random.default_rng(seed + 100))
            cleaned_estimator = cleaned.simulate_aggregate(
                counts, rng=np.random.default_rng(seed + 100)
            )
            # Same seed -> identical oracle randomness: the pipeline is the
            # only difference, and it is exactly the simplex projection.
            raw_frequencies = raw_estimator.estimated_frequencies()
            cleaned_frequencies = cleaned_estimator.estimated_frequencies()
            assert np.array_equal(project_onto_simplex(raw_frequencies), cleaned_frequencies)
            assert np.all(cleaned_frequencies >= 0.0)
            assert np.isclose(cleaned_frequencies.sum(), 1.0, atol=1e-9)
            # Guaranteed per seed: the projection contracts the item-level
            # L2 error (the truth lies on the simplex).
            assert np.linalg.norm(cleaned_frequencies - frequencies) <= (
                np.linalg.norm(raw_frequencies - frequencies) + 1e-12
            )
            raw_mses.append(float(np.mean((raw_estimator.range_queries(workload) - truths) ** 2)))
            cleaned_mses.append(
                float(
                    np.mean((cleaned_estimator.range_queries(workload) - truths) ** 2)
                )
            )
        assert np.mean(cleaned_mses) <= np.mean(raw_mses)


# --------------------------------------------------------------------- #
# round-trips: spec, serialization, engine, CLI
# --------------------------------------------------------------------- #
PIPELINED_SPECS = {
    "flat": {"postprocess": "norm_sub"},
    "hh": {"branching": 4, "consistency": False, "postprocess": "consistency+norm_sub"},
    "haar": {"postprocess": "haar_threshold"},
    "grid2d": {"domain_size_y": 16, "postprocess": "grid_consistency"},
}


class TestRoundTrips:
    @pytest.mark.parametrize("handle", sorted(PIPELINED_SPECS))
    def test_spec_round_trip(self, handle):
        protocol = make_protocol(handle, 16, 1.1, **PIPELINED_SPECS[handle])
        spec = protocol.spec()
        assert spec["postprocess"] == PIPELINED_SPECS[handle]["postprocess"]
        rebuilt = protocol_from_spec(spec)
        assert rebuilt.spec() == spec

    def test_default_spec_has_no_postprocess_key(self):
        # Pre-pipeline specs must stay byte-identical, so the key is only
        # written when a pipeline is explicitly configured.
        for handle in ("flat", "hh", "haar", "grid2d"):
            assert "postprocess" not in make_protocol(handle, 16, 1.1).spec()

    def test_state_round_trip_preserves_pipeline(self):
        protocol = make_protocol("flat", 32, 1.1, postprocess="norm_sub")
        items = np.random.default_rng(23).integers(0, 32, size=500)
        server = protocol.server()
        server.ingest(protocol.client().encode_batch(items, rng=np.random.default_rng(24)))
        revived = load_server(server.to_bytes())
        assert revived.protocol.spec()["postprocess"] == "norm_sub"
        frequencies = revived.finalize().estimated_frequencies()
        assert np.array_equal(frequencies, server.finalize().estimated_frequencies())
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)

    def test_states_merge_across_pipeline_settings(self):
        # Post-processing never touches the sufficient statistics, so
        # shards of differently post-processed (but otherwise identical)
        # protocols are exchangeable.
        raw = make_protocol("flat", 32, 1.1)
        cleaned = make_protocol("flat", 32, 1.1, postprocess="norm_sub")
        rng = np.random.default_rng(25)
        server_a = raw.server()
        server_a.ingest(raw.client().encode_batch(rng.integers(0, 32, 300), rng=rng))
        server_b = cleaned.server()
        server_b.ingest(cleaned.client().encode_batch(rng.integers(0, 32, 300), rng=rng))
        merged = server_b.merge(server_a.state)
        assert merged.n_reports == 600
        frequencies = merged.finalize().estimated_frequencies()
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)  # b's pipeline wins

    def test_engine_checkpoint_round_trip_and_override(self, tmp_path):
        protocol = make_protocol("flat", 32, 1.1, postprocess="norm_sub")
        engine = Engine.open(protocol)
        rng = np.random.default_rng(26)
        engine.session(epoch=0).absorb(rng.integers(0, 32, 400), rng=rng)
        engine.session(epoch=1).absorb(rng.integers(0, 32, 400), rng=rng)
        path = str(tmp_path / "svc.ckpt")
        engine.checkpoint(path)
        restored = Engine.restore(path)
        assert restored.spec()["postprocess"] == "norm_sub"
        frequencies = restored.estimator().estimated_frequencies()
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)
        # Re-finalize the same shards under a different pipeline.
        raw_view = restored.with_postprocess("none")
        raw_frequencies = raw_view.estimator().estimated_frequencies()
        assert raw_frequencies.min() < 0.0  # OUE noise goes negative
        assert np.array_equal(project_onto_simplex(raw_frequencies), frequencies)
        # The views share the live shards of existing epochs: reports
        # absorbed through one view land in the other too.
        raw_view.session(epoch=1).absorb(rng.integers(0, 32, 100), rng=rng)
        assert restored.n_reports() == raw_view.n_reports() == 900


class TestCliPostprocess:
    def _encode(self, tmp_path, extra=()):
        users = tmp_path / "users.csv"
        users.write_text(
            "\n".join(str(v) for v in np.random.default_rng(27).integers(0, 64, 600))
            + "\n"
        )
        reports = tmp_path / "r.bin"
        cli_main(
            [
                "encode",
                "--input",
                str(users),
                "--domain-size",
                "64",
                "--method",
                "flat",
                "--seed",
                "3",
                "--output",
                str(reports),
                *extra,
            ]
        )
        return reports

    def test_encode_aggregate_merge_applies_pipeline(self, tmp_path, capsys):
        reports = self._encode(tmp_path, extra=["--postprocess", "norm_sub"])
        state = tmp_path / "s.state"
        cli_main(["aggregate", "--reports", str(reports), "--output", str(state)])
        out = tmp_path / "out.json"
        cli_main([ "merge", "--states", str(state), "--dump-frequencies", "--output", str(out), ])
        frequencies = np.asarray(json.loads(out.read_text())["frequencies"])
        assert frequencies.min() >= 0.0
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)

    def test_aggregate_accepts_shards_differing_only_in_pipeline(self, tmp_path, capsys):
        # Post-processing never touches the accumulated statistics, so
        # report shards encoded under different pipelines fold together
        # (the first file's pipeline wins).
        plain = self._encode(tmp_path)
        cleaned = tmp_path / "r2.bin"
        users = tmp_path / "users.csv"
        cli_main(
            [
                "encode",
                "--input",
                str(users),
                "--domain-size",
                "64",
                "--method",
                "flat",
                "--postprocess",
                "norm_sub",
                "--seed",
                "4",
                "--output",
                str(cleaned),
            ]
        )
        state = tmp_path / "mixed.state"
        cli_main([ "aggregate", "--reports", str(cleaned), str(plain), "--output", str(state), ])
        out = tmp_path / "mixed.json"
        cli_main(["merge", "--states", str(state), "--dump-frequencies", "--output", str(out)])
        payload = json.loads(out.read_text())
        assert payload["n_users"] == 1200
        frequencies = np.asarray(payload["frequencies"])
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)  # first file's pipeline

    def test_engine_query_postprocess_override(self, tmp_path, capsys):
        reports = self._encode(tmp_path)
        checkpoint = tmp_path / "svc.ckpt"
        cli_main(
            [
                "engine",
                "checkpoint",
                "--checkpoint",
                str(checkpoint),
                "--reports",
                str(reports),
            ]
        )
        out = tmp_path / "q.json"
        cli_main(
            [
                "engine",
                "query",
                "--checkpoint",
                str(checkpoint),
                "--dump-frequencies",
                "--postprocess",
                "norm_sub",
                "--output",
                str(out),
            ]
        )
        payload = json.loads(out.read_text())
        assert payload["postprocess"] == "norm_sub"
        frequencies = np.asarray(payload["frequencies"])
        assert frequencies.min() >= 0.0
        assert np.isclose(frequencies.sum(), 1.0, atol=1e-9)

    def test_engine_query_surfaces_window_errors(self, tmp_path, capsys):
        reports = self._encode(tmp_path)
        checkpoint = tmp_path / "svc.ckpt"
        cli_main(
            [
                "engine",
                "checkpoint",
                "--checkpoint",
                str(checkpoint),
                "--reports",
                str(reports),
            ]
        )
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "engine",
                    "query",
                    "--checkpoint",
                    str(checkpoint),
                    "--window",
                    "last:9",
                    "--ranges",
                    "0:5",
                ]
            )
        assert "holds only 1" in str(excinfo.value)

    def test_bad_postprocess_token_exits_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self._encode(tmp_path, extra=["--postprocess", "nope"])
        assert "unknown post-processing token" in str(excinfo.value)
