"""Property-based tests (hypothesis) for the core data structures.

These check structural invariants for arbitrary inputs rather than specific
examples: B-adic decompositions tile ranges exactly, the Haar and Hadamard
transforms invert, constrained inference really enforces consistency and
preserves exact trees, and estimators stay internally consistent.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.types import RangeSpec, is_power_of, next_power_of
from repro.frequency_oracles.hadamard import fwht, hadamard_matrix, ifwht
from repro.hierarchy.badic import badic_decomposition, decomposition_size_bound, is_badic
from repro.core.postprocess import tree_enforce_consistency
from repro.hierarchy.consistency import consistency_violation
from repro.hierarchy.tree import DomainTree
from repro.wavelet.haar import (
    evaluate_range_from_coefficients,
    haar_transform,
    inverse_haar_transform,
)

# Keep hypothesis deadlines generous: numpy work inside properties can be
# slower on loaded CI machines.
COMMON_SETTINGS = settings(max_examples=60, deadline=None)


class TestPowerProperties:
    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=2, max_value=16))
    @COMMON_SETTINGS
    def test_next_power_is_power_and_bounds_value(self, value, base):
        power = next_power_of(base, value)
        assert power >= value
        assert is_power_of(base, power)
        # Minimality: the next smaller power of the base is below the value.
        if power > 1:
            assert power // base < value


class TestBAdicProperties:
    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=0, max_value=4000),
    )
    @COMMON_SETTINGS
    def test_decomposition_tiles_range_exactly(self, branching, a, b):
        left, right = min(a, b), max(a, b)
        blocks = badic_decomposition(left, right, branching)
        # Blocks are disjoint, consecutive and cover [left, right] exactly.
        position = left
        for block in blocks:
            assert block.start == position
            assert is_badic(block.start, block.length, branching)
            position = block.end + 1
        assert position == right + 1

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=3000),
    )
    @COMMON_SETTINGS
    def test_block_count_within_fact3_bound(self, branching, length):
        blocks = badic_decomposition(0, length - 1, branching)
        assert len(blocks) <= decomposition_size_bound(length, branching)


class TestTransformProperties:
    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=2**30))
    @COMMON_SETTINGS
    def test_fwht_involution(self, log_size, seed):
        size = 2**log_size
        vector = np.random.default_rng(seed).normal(size=size)
        assert np.allclose(ifwht(fwht(vector)), vector)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2**30))
    @COMMON_SETTINGS
    def test_haar_roundtrip(self, log_size, seed):
        size = 2**log_size
        vector = np.random.default_rng(seed).random(size=size)
        assert np.allclose(inverse_haar_transform(haar_transform(vector)), vector)

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2**30),
        st.data(),
    )
    @COMMON_SETTINGS
    def test_haar_range_evaluation_matches_direct_sum(self, log_size, seed, data):
        size = 2**log_size
        vector = np.random.default_rng(seed).random(size=size)
        left = data.draw(st.integers(min_value=0, max_value=size - 1))
        right = data.draw(st.integers(min_value=left, max_value=size - 1))
        coefficients = haar_transform(vector)
        assert evaluate_range_from_coefficients(coefficients, left, right) == pytest.approx(
            vector[left : right + 1].sum()
        )

    @given(st.integers(min_value=1, max_value=5))
    @COMMON_SETTINGS
    def test_hadamard_matrix_is_orthogonal(self, log_size):
        size = 2**log_size
        matrix = hadamard_matrix(size)
        assert np.allclose(matrix @ matrix, size * np.eye(size))


class TestConsistencyProperties:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**30),
    )
    @COMMON_SETTINGS
    def test_constrained_inference_enforces_consistency(self, branching, height, seed):
        rng = np.random.default_rng(seed)
        levels = [
            rng.normal(0.5, 0.2, size=branching**depth) for depth in range(height + 1)
        ]
        adjusted = tree_enforce_consistency(levels, branching, root_value=1.0)
        assert consistency_violation(adjusted, branching) < 1e-8
        assert adjusted[0][0] == pytest.approx(1.0)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=2**30),
    )
    @COMMON_SETTINGS
    def test_exact_trees_are_fixed_points(self, branching, height, seed):
        rng = np.random.default_rng(seed)
        domain = branching**height
        counts = rng.integers(1, 100, size=domain).astype(float)
        tree = DomainTree(domain, branching)
        levels = [
            tree.level_histogram(counts, level) / counts.sum()
            for level in range(tree.num_levels)
        ]
        adjusted = tree_enforce_consistency(levels, branching, root_value=1.0)
        for before, after in zip(levels, adjusted):
            assert np.allclose(before, after, atol=1e-9)


class TestTreeProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=300),
        st.data(),
    )
    @COMMON_SETTINGS
    def test_decompose_range_covers_requested_items(self, branching, domain, data):
        tree = DomainTree(domain, branching)
        left = data.draw(st.integers(min_value=0, max_value=domain - 1))
        right = data.draw(st.integers(min_value=left, max_value=domain - 1))
        nodes = tree.decompose_range(left, right)
        covered = []
        for node in nodes:
            interval = tree.node_interval(node)
            covered.extend(range(interval.start, interval.end + 1))
        assert covered == list(range(left, right + 1))

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=200),
        st.integers(min_value=0, max_value=2**30),
    )
    @COMMON_SETTINGS
    def test_level_histograms_preserve_mass(self, branching, domain, seed):
        tree = DomainTree(domain, branching)
        counts = np.random.default_rng(seed).integers(0, 50, size=domain).astype(float)
        for level in range(tree.num_levels):
            assert tree.level_histogram(counts, level).sum() == pytest.approx(counts.sum())


class TestRangeSpecProperties:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
    @COMMON_SETTINGS
    def test_length_positive(self, a, b):
        assume(a <= b)
        assert RangeSpec(a, b).length == b - a + 1


class TestEstimatorConsistencyProperties:
    @given(st.integers(min_value=0, max_value=2**30), st.data())
    @settings(max_examples=15, deadline=None)
    def test_hh_consistent_estimator_is_decomposition_invariant(self, seed, data):
        """After CI, leaf sums and B-adic decomposition answers agree."""
        from repro.hierarchy import HierarchicalHistogram

        rng = np.random.default_rng(seed)
        domain = 32
        counts = rng.integers(5, 200, size=domain).astype(float)
        protocol = HierarchicalHistogram(domain, 1.0, branching=2, oracle="hrr")
        estimator = protocol.simulate_aggregate(counts, rng=rng)
        left = data.draw(st.integers(min_value=0, max_value=domain - 1))
        right = data.draw(st.integers(min_value=left, max_value=domain - 1))
        freqs = estimator.estimated_frequencies()
        assert estimator.range_query((left, right)) == pytest.approx(
            freqs[left : right + 1].sum(), abs=1e-9
        )
