"""Tests for the experiment harness: configs, method naming and evaluation."""

import numpy as np
import pytest

from repro.experiments import (
    PRESETS,
    WorkloadEvaluation,
    build_prefix_workload,
    build_range_workload,
    cauchy_counts,
    evaluate_method,
    format_table,
    get_config,
    make_method,
)
from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.wavelet import HaarHRR


class TestConfig:
    def test_presets_exist(self):
        assert {"smoke", "default", "paper"} <= set(PRESETS)

    def test_get_config(self):
        assert get_config("smoke").repetitions == 1
        with pytest.raises(KeyError):
            get_config("gigantic")

    def test_scaled_override(self):
        config = get_config("smoke").scaled(n_users=123, epsilon=0.7)
        assert config.n_users == 123
        assert config.epsilon == 0.7
        # The original preset is untouched (frozen dataclass copy).
        assert get_config("smoke").n_users != 123


class TestMethodNaming:
    @pytest.mark.parametrize(
        "name, cls, checks",
        [
            ("FlatOUE", FlatRangeQuery, {"oracle_name": "oue"}),
            ("HHc4", HierarchicalHistogram, {"branching": 4, "consistency": True}),
            ("HH16", HierarchicalHistogram, {"branching": 16, "consistency": False}),
            ("HaarHRR", HaarHRR, {}),
            ("TreeHRRCI", HierarchicalHistogram, {"oracle_name": "hrr", "consistency": True}),
            ("TreeOLH", HierarchicalHistogram, {"oracle_name": "olh", "consistency": False}),
        ],
    )
    def test_make_method(self, name, cls, checks):
        protocol = make_method(name, 64, 1.1)
        assert isinstance(protocol, cls)
        for attribute, expected in checks.items():
            assert getattr(protocol, attribute) == expected

    def test_tree_names_use_supplied_branching(self):
        protocol = make_method("TreeOUECI", 64, 1.1, branching=8)
        assert protocol.branching == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_method("MadeUp", 64, 1.1)

    def test_names_are_case_insensitive(self):
        assert isinstance(make_method("haarhrr", 64, 1.1), HaarHRR)


class TestWorkloads:
    def test_small_domains_are_exhaustive(self):
        queries = build_range_workload(16, exhaustive_limit=32, num_start_points=4)
        assert len(queries) == 16 * 17 // 2

    def test_large_domains_are_sampled(self):
        queries = build_range_workload(4096, exhaustive_limit=512, num_start_points=8)
        assert 0 < len(queries) < 4096 * 10

    def test_prefix_workload(self):
        assert len(build_prefix_workload(100)) == 100

    def test_workload_evaluation_truths(self):
        freqs = np.array([0.25, 0.25, 0.25, 0.25])
        queries = build_range_workload(4, exhaustive_limit=8, num_start_points=2)
        workload = WorkloadEvaluation.from_frequencies(queries, freqs)
        assert len(workload.truths) == len(workload.queries)
        assert workload.truths.max() <= 1.0 + 1e-9


class TestEvaluation:
    def test_evaluate_method_simulated(self):
        counts = cauchy_counts(64, 20_000, 0.4, rng=0)
        freqs = counts / counts.sum()
        queries = build_range_workload(64, 128, 8)
        workload = WorkloadEvaluation.from_frequencies(queries, freqs)
        protocol = make_method("HHc4", 64, 1.1)
        result = evaluate_method(protocol, counts, workload, repetitions=2, rng=1)
        assert result.method == "TreeOUECI"
        assert result.repetitions == 2
        assert 0 < result.mse_mean < 0.1
        assert result.scaled() == pytest.approx(result.mse_mean * 1000)

    def test_evaluate_method_per_user(self):
        counts = cauchy_counts(64, 5_000, 0.4, rng=0)
        items = np.repeat(np.arange(64), counts.astype(int))
        freqs = counts / counts.sum()
        queries = build_range_workload(64, 128, 8)
        workload = WorkloadEvaluation.from_frequencies(queries, freqs)
        protocol = make_method("HaarHRR", 64, 1.1)
        result = evaluate_method(
            protocol, counts, workload, repetitions=1, rng=1, simulated=False, items=items
        )
        assert result.mse_mean > 0

    def test_per_user_requires_items(self):
        counts = cauchy_counts(64, 1_000, 0.4, rng=0)
        queries = build_range_workload(64, 128, 8)
        workload = WorkloadEvaluation.from_frequencies(queries, counts / counts.sum())
        with pytest.raises(ValueError):
            evaluate_method(
                make_method("HHc2", 64, 1.1), counts, workload, 1, rng=0, simulated=False
            )

    def test_repetitions_validated(self):
        counts = cauchy_counts(64, 1_000, 0.4, rng=0)
        queries = build_range_workload(64, 128, 8)
        workload = WorkloadEvaluation.from_frequencies(queries, counts / counts.sum())
        with pytest.raises(ValueError):
            evaluate_method(make_method("HHc2", 64, 1.1), counts, workload, 0, rng=0)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            [("a", 1), ("bbbb", 22)], headers=("name", "value"), title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
