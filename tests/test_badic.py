"""Tests for B-adic intervals and the canonical range decomposition."""

import pytest

from repro.core.exceptions import InvalidRangeError
from repro.hierarchy.badic import (
    badic_decomposition,
    decomposition_size_bound,
    is_badic,
    worst_case_nodes_per_level,
)


class TestIsBadic:
    def test_dyadic_examples(self):
        assert is_badic(0, 4, 2)
        assert is_badic(4, 4, 2)
        assert not is_badic(2, 4, 2)
        assert is_badic(6, 2, 2)
        assert not is_badic(3, 2, 2)

    def test_higher_branching(self):
        assert is_badic(0, 16, 4)
        assert is_badic(16, 16, 4)
        assert not is_badic(8, 16, 4)
        assert not is_badic(0, 8, 4)  # 8 is not a power of 4

    def test_degenerate(self):
        assert is_badic(5, 1, 2)
        assert not is_badic(-1, 2, 2)
        assert not is_badic(0, 0, 2)


class TestDecomposition:
    def test_paper_example(self):
        """D=32, B=2: [2, 22] = [2,3] u [4,7] u [8,15] u [16,19] u [20,21] u [22,22]."""
        blocks = badic_decomposition(2, 22, 2)
        intervals = [(block.start, block.end) for block in blocks]
        assert intervals == [(2, 3), (4, 7), (8, 15), (16, 19), (20, 21), (22, 22)]

    def test_blocks_cover_range_exactly(self):
        blocks = badic_decomposition(5, 200, 4)
        covered = []
        for block in blocks:
            covered.extend(range(block.start, block.end + 1))
        assert covered == list(range(5, 201))

    def test_blocks_are_badic(self):
        for branching in (2, 3, 4, 8):
            blocks = badic_decomposition(7, 90, branching)
            for block in blocks:
                assert is_badic(block.start, block.length, branching)
                assert branching**block.level_from_leaves == block.length

    def test_single_point(self):
        blocks = badic_decomposition(9, 9, 2)
        assert len(blocks) == 1
        assert blocks[0].length == 1

    def test_full_aligned_range(self):
        blocks = badic_decomposition(0, 63, 2)
        assert len(blocks) == 1
        assert blocks[0].length == 64

    def test_size_respects_fact3_bound(self):
        for branching in (2, 4, 8, 16):
            for left, right in [(0, 99), (3, 77), (13, 500), (1, 1022)]:
                blocks = badic_decomposition(left, right, branching)
                bound = decomposition_size_bound(right - left + 1, branching)
                assert len(blocks) <= bound

    def test_invalid_inputs(self):
        with pytest.raises(InvalidRangeError):
            badic_decomposition(5, 4, 2)
        with pytest.raises(InvalidRangeError):
            badic_decomposition(-1, 4, 2)
        with pytest.raises(ValueError):
            badic_decomposition(0, 4, 1)


class TestBounds:
    def test_worst_case_nodes_per_level(self):
        assert worst_case_nodes_per_level(2) == 2
        assert worst_case_nodes_per_level(16) == 30

    def test_decomposition_size_bound_validation(self):
        with pytest.raises(ValueError):
            decomposition_size_bound(0, 2)
        with pytest.raises(ValueError):
            decomposition_size_bound(4, 1)
