"""Tests for the kernel backend registry and backend equivalence.

Three layers of guarantees:

* **Registry semantics** (always run): selection order (explicit argument
  beats ``REPRO_KERNEL_BACKEND`` beats the numpy default), graceful
  degradation to numpy with a :class:`KernelBackendWarning` when a backend
  is unknown or unavailable, hard :class:`KernelBackendError` from
  ``get_backend``, and the guarantee that the backend is a pure execution
  knob -- never serialized into specs or accumulator configs, and states
  produced under different backends merge freely.
* **Batch encoding** (always run): ``encode_batches`` produces exactly the
  report stream of the equivalent ``encode_batch`` sequence.
* **numpy/numba equivalence** (skipped when numba is absent): a hypothesis
  sweep driving every kernel with generated populations across seeds,
  dtypes and chunk sizes, asserting bit-identical outputs, plus a rerun of
  the 14 golden configurations under the numba backend (HRR cases allowed
  the contractual <= 1e-12 drift).
"""

import importlib.util
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FlatRangeQuery
from repro.core.kernels import (
    DEFAULT_KERNEL_BACKEND,
    KERNEL_BACKEND_ENV,
    KernelBackend,
    KernelBackendError,
    KernelBackendWarning,
    available_backends,
    clear_backend_cache,
    get_backend,
    resolve_backend,
)
from repro.core.kernels import reference
from repro.frequency_oracles import (
    GeneralizedRandomizedResponse,
    HadamardRandomizedResponse,
    OptimalLocalHashing,
    OptimizedUnaryEncoding,
)

from test_decomposition import CASES, _check, _expected, golden  # noqa: F401

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

# JIT compilation dominates the first call of every kernel; keep example
# counts moderate and deadlines off.
SWEEP_SETTINGS = settings(max_examples=25, deadline=None)

#: Integer dtypes the unary (N, D) report matrices may arrive in.  Float
#: dtypes are excluded by contract: ``unary_sums`` consumes the uint8
#: matrices produced by ``unary_perturb`` (or int upcasts of them).
UNARY_DTYPES = (np.uint8, np.int32, np.int64)


@pytest.fixture(autouse=True)
def _no_backend_env(monkeypatch):
    """Isolate every test from an ambient REPRO_KERNEL_BACKEND setting."""
    monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)


# --------------------------------------------------------------------- #
# registry semantics (no numba required)
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_available_backends_lists_both(self):
        assert available_backends() == ["numba", "numpy"]

    def test_get_numpy_backend(self):
        backend = get_backend("numpy")
        assert isinstance(backend, KernelBackend)
        assert backend.name == "numpy"
        for kernel in KernelBackend.KERNEL_NAMES:
            assert callable(getattr(backend, kernel))
        assert backend.multinomial_level_split is reference.multinomial_level_split

    def test_get_backend_is_cached(self):
        assert get_backend("numpy") is get_backend("NumPy  ".strip())

    def test_get_backend_unknown_raises(self):
        with pytest.raises(KernelBackendError, match="unknown kernel backend"):
            get_backend("fortran")

    def test_resolve_default_is_numpy(self):
        assert resolve_backend(None).name == DEFAULT_KERNEL_BACKEND

    def test_resolve_env_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_resolve_blank_env_is_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "   ")
        assert resolve_backend(None).name == DEFAULT_KERNEL_BACKEND

    def test_resolve_passthrough_instance(self):
        backend = KernelBackend("custom", dict(reference.KERNELS))
        assert resolve_backend(backend) is backend

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "no-such-backend")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numpy").name == "numpy"

    def test_unknown_name_warns_and_falls_back(self):
        with pytest.warns(KernelBackendWarning, match="unknown kernel backend"):
            backend = resolve_backend("no-such-backend")
        assert backend.name == DEFAULT_KERNEL_BACKEND

    def test_unknown_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "no-such-backend")
        with pytest.warns(KernelBackendWarning):
            assert resolve_backend(None).name == DEFAULT_KERNEL_BACKEND

    def test_missing_kernel_rejected(self):
        kernels = dict(reference.KERNELS)
        del kernels["olh_encode"]
        with pytest.raises(KernelBackendError, match="missing kernels"):
            KernelBackend("partial", kernels)

    def test_unavailable_backend_raises_from_get(self, monkeypatch):
        import repro.core.kernels as kernels_module

        def unavailable():
            raise ImportError("No module named 'numba'")

        monkeypatch.setattr(kernels_module, "_load_numba_backend", unavailable)
        monkeypatch.setitem(
            kernels_module._BACKEND_LOADERS, "numba", unavailable
        )
        clear_backend_cache()
        try:
            with pytest.raises(KernelBackendError, match="not available"):
                get_backend("numba")
        finally:
            clear_backend_cache()

    def test_unavailable_backend_degrades_from_resolve(self, monkeypatch):
        import repro.core.kernels as kernels_module

        def unavailable():
            raise ImportError("No module named 'numba'")

        monkeypatch.setitem(
            kernels_module._BACKEND_LOADERS, "numba", unavailable
        )
        clear_backend_cache()
        try:
            with pytest.warns(KernelBackendWarning, match="falling back"):
                backend = resolve_backend("numba")
            assert backend.name == "numpy"
            # The same degradation must hold when the request arrives
            # through the environment (a deployment toggling the knob on a
            # machine without the accelerator installed).
            monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
            with pytest.warns(KernelBackendWarning):
                oracle = OptimizedUnaryEncoding(16, 1.0)
            assert oracle.kernel_backend == "numpy"
        finally:
            clear_backend_cache()


class TestBackendIsExecutionKnob:
    def test_oracle_exposes_backend_name(self):
        oracle = OptimizedUnaryEncoding(16, 1.0, kernel_backend="numpy")
        assert oracle.kernel_backend == "numpy"
        assert oracle.kernels is get_backend("numpy")

    def test_backend_not_in_spec_or_config(self, monkeypatch):
        baseline = FlatRangeQuery(32, 1.1, oracle="oue").spec()
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert FlatRangeQuery(32, 1.1, oracle="oue").spec() == baseline
        oracle = OptimizedUnaryEncoding(16, 1.0, kernel_backend="numpy")
        config = oracle.make_accumulator().config
        assert "backend" not in str(config).lower()

    def test_states_merge_across_backends(self):
        # Simulate heterogeneous shards with a distinctly-named backend
        # built from the same kernels: merging must only depend on the
        # protocol, never on who computed the sums.
        other = KernelBackend("other", dict(reference.KERNELS))
        protocol = FlatRangeQuery(32, 1.1, oracle="oue")
        items = np.random.default_rng(3).integers(0, 32, size=400)
        rng = np.random.default_rng(4)
        shard_a = protocol.server()
        shard_b = protocol.server()
        client = protocol.client()
        shard_a.ingest(client.encode_batch(items[:200], rng=rng))
        shard_b.ingest(client.encode_batch(items[200:], rng=rng))
        assert shard_a.kernel_backend == "numpy"
        merged = protocol.server()
        merged.merge(shard_a).merge(shard_b)
        assert merged.n_reports == 400
        oracle = OptimizedUnaryEncoding(32, 1.1, kernel_backend=other)
        assert oracle.kernel_backend == "other"

    def test_client_and_server_report_backend(self):
        protocol = FlatRangeQuery(16, 1.0, oracle="oue")
        assert protocol.client().kernel_backend == "numpy"
        assert protocol.server().kernel_backend == "numpy"


class TestEncodeBatches:
    def test_matches_sequential_encode_batch(self):
        protocol = FlatRangeQuery(32, 1.1, oracle="oue")
        items = np.random.default_rng(5).integers(0, 32, size=250)
        expected = []
        rng = np.random.default_rng(6)
        client = protocol.client()
        for start in range(0, len(items), 100):
            expected.append(client.encode_batch(items[start : start + 100], rng=rng))
        actual = client.encode_batches(items, 100, rng=np.random.default_rng(6))
        assert len(actual) == len(expected) == 3
        for got, want in zip(actual, expected):
            assert got.to_bytes() == want.to_bytes()

    def test_rejects_bad_batch_size(self):
        client = FlatRangeQuery(16, 1.0, oracle="grr").client()
        with pytest.raises(ValueError, match="batch_size"):
            client.encode_batches(np.arange(8), 0)


# --------------------------------------------------------------------- #
# numpy/numba equivalence sweep (requires numba)
# --------------------------------------------------------------------- #
def _backends():
    return get_backend("numpy"), get_backend("numba")


@needs_numba
class TestNumbaEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=600),
        domain=st.integers(min_value=2, max_value=300),
    )
    @SWEEP_SETTINGS
    def test_grr_perturb(self, seed, n, domain):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        items = rng.integers(0, domain, size=n)
        keep = rng.random(n) < 0.7
        noise = rng.integers(0, domain - 1, size=n)
        expected = numpy_backend.grr_perturb(items, keep, noise)
        actual = numba_backend.grr_perturb(items, keep, noise)
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=500),
        domain=st.integers(min_value=2, max_value=400),
        buckets=st.integers(min_value=2, max_value=64),
    )
    @SWEEP_SETTINGS
    def test_olh_encode(self, seed, n, domain, buckets):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        multipliers = rng.integers(1, reference.HASH_PRIME, size=n)
        offsets = rng.integers(0, reference.HASH_PRIME, size=n)
        items = rng.integers(0, domain, size=n)
        keep = rng.random(n) < 0.6
        noise = rng.integers(0, buckets - 1, size=n)
        expected = numpy_backend.olh_encode(
            multipliers, offsets, items, buckets, keep, noise
        )
        actual = numba_backend.olh_encode(
            multipliers, offsets, items, buckets, keep, noise
        )
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=400),
        domain=st.integers(min_value=1, max_value=200),
        buckets=st.integers(min_value=2, max_value=32),
        chunk=st.integers(min_value=1, max_value=700),
    )
    @SWEEP_SETTINGS
    def test_olh_support(self, seed, n, domain, buckets, chunk):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        multipliers = rng.integers(1, reference.HASH_PRIME, size=n)
        offsets = rng.integers(0, reference.HASH_PRIME, size=n)
        reported = rng.integers(0, buckets, size=n)
        expected = numpy_backend.olh_support(
            multipliers, offsets, reported, domain, buckets, chunk
        )
        actual = numba_backend.olh_support(
            multipliers, offsets, reported, domain, buckets, chunk
        )
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=1, max_value=300),
        domain=st.integers(min_value=1, max_value=200),
        p_zero=st.floats(min_value=0.0, max_value=1.0),
        p_one=st.floats(min_value=0.0, max_value=1.0),
    )
    @SWEEP_SETTINGS
    def test_unary_perturb(self, seed, n, domain, p_zero, p_one):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        uniforms = rng.random((n, domain))
        true_uniforms = rng.random(n)
        items = rng.integers(0, domain, size=n)
        expected = numpy_backend.unary_perturb(
            uniforms, p_zero, items, true_uniforms, p_one
        )
        actual = numba_backend.unary_perturb(
            uniforms, p_zero, items, true_uniforms, p_one
        )
        assert actual.dtype == expected.dtype == np.uint8
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=400),
        domain=st.integers(min_value=1, max_value=300),
        dtype_index=st.integers(min_value=0, max_value=len(UNARY_DTYPES) - 1),
    )
    @SWEEP_SETTINGS
    def test_unary_sums(self, seed, n, domain, dtype_index):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        reports = rng.integers(0, 2, size=(n, domain)).astype(UNARY_DTYPES[dtype_index])
        expected = numpy_backend.unary_sums(reports)
        actual = numba_backend.unary_sums(reports)
        assert actual.dtype == expected.dtype == np.int64
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=500),
        log_padded=st.integers(min_value=0, max_value=10),
    )
    @SWEEP_SETTINGS
    def test_hrr_encode(self, seed, n, log_padded):
        numpy_backend, numba_backend = _backends()
        padded = 1 << log_padded
        rng = np.random.default_rng(seed)
        items = rng.integers(0, padded, size=n)
        signs = np.where(rng.random(n) < 0.5, 1.0, -1.0)
        indices = rng.integers(0, padded, size=n)
        keep = rng.random(n) < 0.75
        expected = numpy_backend.hrr_encode(items, signs, indices, keep)
        actual = numba_backend.hrr_encode(items, signs, indices, keep)
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=800),
        log_padded=st.integers(min_value=0, max_value=10),
    )
    @SWEEP_SETTINGS
    def test_hrr_value_sums(self, seed, n, log_padded):
        numpy_backend, numba_backend = _backends()
        padded = 1 << log_padded
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, padded, size=n)
        values = np.where(rng.random(n) < 0.5, 1.0, -1.0)
        expected = numpy_backend.hrr_value_sums(indices, values, padded)
        actual = numba_backend.hrr_value_sums(indices, values, padded)
        assert actual.dtype == expected.dtype == np.int64
        np.testing.assert_array_equal(actual, expected)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=600),
        domain=st.integers(min_value=1, max_value=300),
    )
    @SWEEP_SETTINGS
    def test_categorical_counts(self, seed, n, domain):
        numpy_backend, numba_backend = _backends()
        rng = np.random.default_rng(seed)
        reports = rng.integers(0, domain, size=n)
        expected = numpy_backend.categorical_counts(reports, domain)
        actual = numba_backend.categorical_counts(reports, domain)
        assert actual.dtype == expected.dtype == np.int64
        np.testing.assert_array_equal(actual, expected)

    def test_categorical_counts_rejects_out_of_domain(self):
        _, numba_backend = _backends()
        with pytest.raises(ValueError, match="outside the domain"):
            numba_backend.categorical_counts(np.array([0, 5]), 4)
        with pytest.raises(ValueError, match="outside the domain"):
            numba_backend.categorical_counts(np.array([-1, 2]), 4)


@needs_numba
class TestNumbaOracleParity:
    """Whole-oracle parity: privatize + accumulate under both backends."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda backend: OptimizedUnaryEncoding(48, 1.2, kernel_backend=backend),
            lambda backend: GeneralizedRandomizedResponse(48, 1.2, kernel_backend=backend),
            lambda backend: OptimalLocalHashing(48, 1.2, kernel_backend=backend),
            lambda backend: HadamardRandomizedResponse(48, 1.2, kernel_backend=backend),
        ],
        ids=["oue", "grr", "olh", "hrr"],
    )
    def test_estimates_identical(self, factory):
        items = np.random.default_rng(17).integers(0, 48, size=1_500)
        results = {}
        for backend in ("numpy", "numba"):
            oracle = factory(backend)
            assert oracle.kernel_backend == backend
            reports = oracle.privatize(items, rng=np.random.default_rng(23))
            results[backend] = oracle.aggregate(reports)
        np.testing.assert_allclose(
            results["numba"], results["numpy"], rtol=0.0, atol=1e-12
        )


@needs_numba
class TestNumbaGoldenConfigs:
    """The 14 golden configurations, executed under the numba backend."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_run_matches_golden(self, golden, case, monkeypatch):  # noqa: F811
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        estimator = protocol.run(items, rng=np.random.default_rng(9))
        _check(case, estimator.estimated_frequencies(), _expected(golden, case, "run"))

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_streamed_batches_match_golden(self, golden, case, monkeypatch):  # noqa: F811
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        protocol = CASES[case]()
        items = np.random.default_rng(0).integers(0, protocol.domain_size, size=600)
        client = protocol.client()
        server = protocol.server()
        assert client.kernel_backend == "numba"
        assert server.kernel_backend == "numba"
        rng = np.random.default_rng(21)
        server.ingest(client.encode_batches(items, -(-len(items) // 4), rng=rng))
        _check(
            case,
            server.finalize().estimated_frequencies(),
            _expected(golden, case, "stream"),
        )
