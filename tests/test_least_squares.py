"""Tests for the explicit least-squares consistency (Lemma 4.6 machinery)."""

import numpy as np
import pytest

from repro.hierarchy.consistency import mean_consistency, weighted_averaging
from repro.hierarchy.least_squares import (
    design_matrix,
    flatten_levels,
    least_squares_leaves,
    least_squares_levels,
    range_query_variance_factor,
)
from repro.hierarchy.tree import DomainTree


def _random_levels(tree, rng, noise=0.1):
    return [
        rng.normal(0.3, noise, size=tree.level_size(level))
        for level in range(tree.num_levels)
    ]


class TestDesignMatrix:
    def test_shape_and_row_sums(self):
        tree = DomainTree(8, 2)
        matrix = design_matrix(tree)
        # 1 + 2 + 4 + 8 nodes, 8 leaves.
        assert matrix.shape == (15, 8)
        assert matrix[0].sum() == 8  # root covers every leaf
        assert matrix[-1].sum() == 1  # last leaf node covers one leaf

    def test_single_level_matches_lemma_example(self):
        """For a one-level tree H = [1_D; I_D] as in the Lemma 4.6 proof."""
        tree = DomainTree(4, 4)
        matrix = design_matrix(tree)
        assert np.allclose(matrix[0], np.ones(4))
        assert np.allclose(matrix[1:], np.eye(4))

    def test_flatten_levels_order(self):
        levels = [np.array([1.0]), np.array([2.0, 3.0]), np.array([4.0, 5.0, 6.0, 7.0])]
        assert list(flatten_levels(levels)) == [1, 2, 3, 4, 5, 6, 7]


class TestEquivalenceWithTwoStage:
    @pytest.mark.parametrize("branching, height", [(2, 3), (2, 4), (4, 2), (3, 3)])
    def test_matches_hay_two_stage(self, branching, height):
        """The linear-time two-stage algorithm computes the exact OLS solution."""
        rng = np.random.default_rng(height * 10 + branching)
        tree = DomainTree(branching**height, branching)
        levels = _random_levels(tree, rng)
        two_stage = mean_consistency(
            weighted_averaging(levels, branching), branching, root_value=None
        )
        ols_leaves = least_squares_leaves(tree, levels)
        assert np.allclose(two_stage[-1], ols_leaves, atol=1e-10)

    def test_levels_are_consistent(self):
        rng = np.random.default_rng(1)
        tree = DomainTree(16, 2)
        levels = least_squares_levels(tree, _random_levels(tree, rng))
        for depth in range(len(levels) - 1):
            child_sums = levels[depth + 1].reshape(-1, 2).sum(axis=1)
            assert np.allclose(levels[depth], child_sums)

    def test_wrong_observation_count_rejected(self):
        tree = DomainTree(8, 2)
        with pytest.raises(ValueError):
            least_squares_leaves(tree, [np.array([1.0]), np.array([0.5, 0.5])])


class TestVarianceFactors:
    def test_point_query_factor_single_level(self):
        """Lemma 4.6: a point query has factor B/(B+1) in a one-level tree."""
        for branching in (2, 4, 8):
            tree = DomainTree(branching, branching)
            factor = range_query_variance_factor(tree, 0, 0)
            assert factor == pytest.approx(branching / (branching + 1))

    def test_full_range_factor_single_level(self):
        """The whole-domain query also has factor B/(B+1)."""
        branching = 4
        tree = DomainTree(branching, branching)
        factor = range_query_variance_factor(tree, 0, branching - 1)
        assert factor == pytest.approx(branching / (branching + 1))

    def test_worst_range_factor_bounded_by_lemma(self):
        """Any single-level range's factor is at most (B+1)/4."""
        branching = 8
        tree = DomainTree(branching, branching)
        worst = max(
            range_query_variance_factor(tree, 0, right) for right in range(branching)
        )
        assert worst <= (branching + 1) / 4 + 1e-9

    def test_multi_level_point_query_below_single_node_variance(self):
        """Post-inference variance of a leaf is below the raw V_F (factor < 1)."""
        tree = DomainTree(16, 2)
        assert range_query_variance_factor(tree, 5, 5) < 1.0

    def test_invalid_range_rejected(self):
        tree = DomainTree(8, 2)
        with pytest.raises(ValueError):
            range_query_variance_factor(tree, 5, 3)
        with pytest.raises(ValueError):
            range_query_variance_factor(tree, 0, 8)
