"""Tests for prefix, CDF and quantile queries (Section 4.7)."""

import numpy as np
import pytest

from repro.flat import FlatRangeQuery
from repro.hierarchy import HierarchicalHistogram
from repro.queries.prefix import (
    estimated_cdf,
    monotone_cdf,
    prefix_answers,
    prefix_variance_reduction_factor,
)
from repro.queries.quantile import (
    deciles,
    estimate_quantile,
    evaluate_quantiles,
    quantile_by_binary_search,
    quantile_rank,
    true_quantile,
)
from repro.wavelet import HaarHRR


class TestTrueQuantiles:
    def test_uniform_distribution(self):
        freqs = np.full(10, 0.1)
        assert true_quantile(freqs, 0.5) == 4
        assert true_quantile(freqs, 0.05) == 0
        assert true_quantile(freqs, 1.0) == 9

    def test_point_mass(self):
        freqs = np.zeros(10)
        freqs[7] = 1.0
        for phi in (0.1, 0.5, 0.9):
            assert true_quantile(freqs, phi) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            true_quantile(np.full(4, 0.25), 1.5)
        with pytest.raises(ValueError):
            true_quantile(np.zeros(4), 0.5)

    def test_quantile_rank(self):
        freqs = np.array([0.2, 0.3, 0.5])
        assert quantile_rank(freqs, 0) == pytest.approx(0.2)
        assert quantile_rank(freqs, 2) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            quantile_rank(freqs, 3)


class TestEstimatedQuantiles:
    def test_quantiles_close_to_truth(self, medium_cauchy):
        protocol = HierarchicalHistogram(medium_cauchy.domain_size, 1.5, branching=4)
        estimator = protocol.simulate_aggregate(medium_cauchy.counts(), rng=3)
        freqs = medium_cauchy.frequencies()
        for phi in (0.25, 0.5, 0.75):
            estimated = estimate_quantile(estimator, phi)
            achieved_rank = quantile_rank(freqs, estimated)
            assert abs(achieved_rank - phi) < 0.08

    def test_evaluate_quantiles_structure(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=4)
        evaluations = evaluate_quantiles(estimator, small_cauchy.frequencies(), deciles())
        assert len(evaluations) == 9
        for evaluation in evaluations:
            assert 0 <= evaluation.estimated_item < small_cauchy.domain_size
            assert evaluation.value_error >= 0
            assert 0 <= evaluation.quantile_error <= 1

    def test_deciles(self):
        assert deciles() == [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

    def test_binary_search_quantile_close_to_cdf_quantile(self, medium_cauchy):
        protocol = HierarchicalHistogram(medium_cauchy.domain_size, 1.5, branching=4)
        estimator = protocol.simulate_aggregate(medium_cauchy.counts(), rng=12)
        freqs = medium_cauchy.frequencies()
        for phi in (0.25, 0.5, 0.75):
            by_search = quantile_by_binary_search(estimator, phi)
            achieved = quantile_rank(freqs, by_search)
            assert abs(achieved - phi) < 0.08

    def test_binary_search_quantile_exact_estimator(self):
        """On a noiseless estimator binary search matches the CDF search."""
        from repro.flat import FlatEstimator
        from repro.core.types import Domain

        freqs = np.array([0.1, 0.4, 0.2, 0.1, 0.1, 0.05, 0.03, 0.02])
        estimator = FlatEstimator(Domain(8), freqs)
        for phi in (0.05, 0.1, 0.5, 0.77, 1.0):
            assert quantile_by_binary_search(estimator, phi) == estimator.quantile_query(phi)

    def test_binary_search_quantile_validation(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=13)
        with pytest.raises(ValueError):
            quantile_by_binary_search(estimator, -0.2)

    def test_quantile_query_validation(self, small_cauchy):
        protocol = FlatRangeQuery(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=5)
        with pytest.raises(ValueError):
            estimator.quantile_query(-0.1)
        with pytest.raises(ValueError):
            estimator.quantile_query(1.1)


class TestPrefixHelpers:
    def test_prefix_answers_match_range_queries(self, small_cauchy):
        protocol = HierarchicalHistogram(small_cauchy.domain_size, 1.1, branching=4)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=6)
        endpoints = [0, 10, 40, 63]
        answers = prefix_answers(estimator, endpoints)
        expected = [estimator.range_query((0, b)) for b in endpoints]
        assert np.allclose(answers, expected)

    def test_cdf_shapes_and_final_value(self, small_cauchy):
        protocol = HaarHRR(small_cauchy.domain_size, 1.1)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=7)
        cdf = estimated_cdf(estimator)
        assert len(cdf) == small_cauchy.domain_size
        assert cdf[-1] == pytest.approx(1.0, abs=0.05)

    def test_monotone_cdf_is_monotone_and_clipped(self, small_cauchy):
        protocol = FlatRangeQuery(small_cauchy.domain_size, 0.5)
        estimator = protocol.simulate_aggregate(small_cauchy.counts(), rng=8)
        cdf = monotone_cdf(estimator)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf.min() >= 0.0 and cdf.max() <= 1.0

    def test_reduction_factor_constant(self):
        assert prefix_variance_reduction_factor() == pytest.approx(0.5)
