"""Tests for the network-facing aggregation service (:mod:`repro.service`).

Three guarantees anchor the service layer:

* **Bit-identity**: sharded ingestion through the gateway -- any number
  of workers, any round-robin interleaving -- answers queries exactly as
  a single process ingesting the same framed batches would.  Merge is
  exact, so scale-out is never an accuracy trade.
* **Durability**: epoch closes checkpoint through the v2 engine
  envelope; a hard kill loses only the un-checkpointed epoch in flight,
  and a restart from the checkpoint resumes with every closed epoch
  intact and ingestion continuing on a fresh key.
* **Wire hygiene**: the framed batch codec round-trips reports exactly
  and fails loudly (with offsets) on malformed input, and the gateway
  maps every failure mode onto a meaningful HTTP status instead of
  dying.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro import make_protocol
from repro.core.serialization import (
    MAGIC_BATCH,
    SerializationError,
    pack_report_batch,
    report_batch_header,
    unpack_report_batch,
)
from repro.core.session import Report, load_server
from repro.service import (
    AggregationService,
    ServiceThread,
    WorkerPool,
    generate_batches,
    ingest_batches_single_process,
    request_json,
)
from repro.service.faults import (
    ServiceProcess,
    chaos_stream,
    delivered_indices,
    kill_worker,
    truncate_wal_tail,
)
from repro.service.http import split_url
from repro.service.loadgen import percentile, run_loadgen

SPEC = {"name": "flat", "domain_size": 64, "epsilon": 1.0}
TREE_SPEC = {"name": "hh", "domain_size": 64, "epsilon": 1.0, "branching": 4}


def encode_reports(spec, n_users, seed, chunks=4):
    """Privatize ``n_users`` synthetic users into ``chunks`` reports."""
    protocol = make_protocol(
        spec["name"],
        spec["domain_size"],
        spec["epsilon"],
        **{k: v for k, v in spec.items() if k not in ("name", "domain_size", "epsilon")},
    )
    rng = np.random.default_rng(seed)
    items = rng.integers(0, spec["domain_size"], size=n_users)
    client = protocol.client()
    return protocol, [
        client.encode_batch(chunk, rng=rng) for chunk in np.array_split(items, chunks)
    ]


class TestReportBatchCodec:
    def test_round_trip_report_objects(self):
        protocol, reports = encode_reports(SPEC, 120, seed=0, chunks=3)
        blob = pack_report_batch(protocol.spec(), reports)
        header, frames = unpack_report_batch(blob)
        assert header["count"] == 3
        assert header["n_users"] == 120
        assert header["protocol"] == protocol.spec()
        for original, frame in zip(reports, frames):
            assert frame == original.to_bytes()
            assert Report.from_bytes(frame).n_users == original.n_users

    def test_accepts_packed_bytes_and_live_protocols(self):
        protocol, reports = encode_reports(SPEC, 60, seed=1, chunks=2)
        from_objects = pack_report_batch(protocol, reports)
        from_bytes = pack_report_batch(
            protocol.spec(), [report.to_bytes() for report in reports]
        )
        assert from_objects == from_bytes  # a pure container either way
        assert report_batch_header(from_bytes)["n_users"] == 60

    def test_header_peek_is_cheap_and_consistent(self):
        protocol, reports = encode_reports(TREE_SPEC, 80, seed=2, chunks=2)
        blob = pack_report_batch(protocol.spec(), reports)
        header = report_batch_header(blob)
        assert header == unpack_report_batch(blob)[0]
        # peeking must also work on a truncated prefix that still holds
        # the header (the gateway routes before the body fully decodes)
        full_header_len = len(blob) - sum(8 + len(r.to_bytes()) for r in reports)
        assert report_batch_header(blob[:full_header_len]) == header

    def test_spec_is_optional(self):
        _, reports = encode_reports(SPEC, 30, seed=3, chunks=1)
        blob = pack_report_batch(None, reports)
        assert "protocol" not in report_batch_header(blob)

    def test_wrong_magic_is_refused(self):
        with pytest.raises(SerializationError, match="magic"):
            unpack_report_batch(b"REPROACC\x01" + b"\x00" * 32)
        with pytest.raises(SerializationError):
            report_batch_header(b"junk")

    def test_truncated_frames_report_offsets(self):
        protocol, reports = encode_reports(SPEC, 40, seed=4, chunks=2)
        blob = pack_report_batch(protocol.spec(), reports)
        with pytest.raises(SerializationError, match="offset"):
            unpack_report_batch(blob[:-5])

    def test_trailing_garbage_is_refused(self):
        protocol, reports = encode_reports(SPEC, 40, seed=5, chunks=1)
        blob = pack_report_batch(protocol.spec(), reports)
        with pytest.raises(SerializationError, match="trailing"):
            unpack_report_batch(blob + b"\x00\x01")

    def test_non_report_input_is_refused(self):
        with pytest.raises(SerializationError, match="cannot frame"):
            pack_report_batch(SPEC, [object()])


class TestWorkerPool:
    def test_sharded_ingest_is_bit_identical_to_single_process(self):
        import asyncio

        protocol, reports = encode_reports(SPEC, 400, seed=6, chunks=8)
        blobs = [pack_report_batch(protocol.spec(), [report]) for report in reports]

        async def run():
            pool = WorkerPool(protocol.spec(), num_workers=3).start()
            try:
                for blob in blobs:
                    await pool.ingest(blob)
                stats = await pool.stats()
                states = await pool.close_epoch()
            finally:
                await pool.shutdown(graceful=True)
            return stats, states

        stats, states = asyncio.run(run())
        assert sum(stat["epoch_reports"] for stat in stats) == 400
        assert all(stat["errors"] == 0 for stat in stats)
        # merge the shard states in reverse order: still bit-identical
        merged = load_server(states[-1])
        for blob in reversed(states[:-1]):
            merged.merge(load_server(blob).state)
        reference = ingest_batches_single_process(protocol.spec(), blobs)
        assert merged.to_bytes() == reference.to_bytes()
        assert np.array_equal(
            merged.finalize().estimated_frequencies(),
            reference.finalize().estimated_frequencies(),
        )

    def test_worker_survives_malformed_batches(self):
        import asyncio

        protocol, reports = encode_reports(SPEC, 50, seed=7, chunks=1)
        good = pack_report_batch(protocol.spec(), reports)

        # a hand-built container with valid framing but a corrupt report
        # inside (pack_report_batch itself refuses to frame garbage)
        import struct

        corrupt_frame = b"REPROACC\x01" + b"\x00" * 40
        batch_header = json.dumps(
            {"batch_kind": "report-batch", "count": 1, "n_users": 1}
        ).encode("utf-8")
        bad = (
            MAGIC_BATCH
            + struct.pack("<Q", len(batch_header))
            + batch_header
            + struct.pack("<Q", len(corrupt_frame))
            + corrupt_frame
        )

        async def run():
            pool = WorkerPool(protocol.spec(), num_workers=1).start()
            try:
                await pool.ingest(bad)
                await pool.ingest(good)
                stats = await pool.stats()
                states = await pool.close_epoch()
            finally:
                await pool.shutdown(graceful=True)
            return stats, states

        stats, states = asyncio.run(run())
        assert stats[0]["errors"] == 1
        assert stats[0]["last_error"]
        assert load_server(states[0]).n_reports == 50


@pytest.fixture(scope="class")
def live_service():
    """One running gateway (2 workers) shared by the e2e tests."""
    service = AggregationService(TREE_SPEC, num_workers=2)
    with ServiceThread(service) as handle:
        yield handle


class TestGatewayEndToEnd:
    N_USERS = 360

    def test_concurrent_ingest_close_query_matches_single_process(self, live_service):
        url = live_service.url
        assert request_json(url + "/healthz")["status"] == "ok"
        spec = request_json(url + "/spec")
        assert all(spec[key] == value for key, value in TREE_SPEC.items())

        protocol, reports = encode_reports(TREE_SPEC, self.N_USERS, seed=8, chunks=12)
        blobs = [pack_report_batch(protocol.spec(), [report]) for report in reports]

        failures = []

        def post(worker_blobs):
            try:
                for blob in worker_blobs:
                    reply = request_json(url + "/ingest", method="POST", body=blob)
                    assert reply["queued"] > 0
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                failures.append(exc)

        threads = [
            threading.Thread(target=post, args=(blobs[i::3],)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

        stats = request_json(url + "/stats")
        assert stats["pending_reports"] == self.N_USERS
        closed = request_json(url + "/close", method="POST")
        assert closed["closed"] and closed["reports"] == self.N_USERS

        answer = request_json(
            url + "/query?ranges=0:15,16:63&quantiles=0.5&frequencies=1&window=all"
        )
        assert answer["n_users"] == self.N_USERS

        reference = ingest_batches_single_process(protocol.spec(), blobs)
        estimator = reference.finalize()
        for key, value in answer["ranges"].items():
            left, right = (int(part) for part in key.split(":"))
            assert value == estimator.range_query((left, right))
        assert answer["quantiles"]["0.5"] == int(estimator.quantile_query(0.5))
        assert answer["frequencies"] == [
            float(v) for v in estimator.estimated_frequencies()
        ]

    def test_postprocess_requery_changes_only_the_pipeline(self, live_service):
        url = live_service.url
        base = request_json(url + "/query?ranges=0:31")
        alt = request_json(url + "/query?ranges=0:31&postprocess=clip")
        assert alt["postprocess"] == "clip"
        assert base["n_users"] == alt["n_users"]

    def test_error_routes(self, live_service):
        url = live_service.url
        with pytest.raises(RuntimeError, match="404"):
            request_json(url + "/nope")
        with pytest.raises(RuntimeError, match="405"):
            request_json(url + "/ingest")  # GET on a POST route
        with pytest.raises(RuntimeError, match="not a framed report batch"):
            request_json(url + "/ingest", method="POST", body=b"junk")
        with pytest.raises(RuntimeError, match="411"):
            request_json(url + "/ingest", method="POST", body=b"")
        with pytest.raises(RuntimeError, match="400"):
            request_json(url + "/query?window=nonsense")
        with pytest.raises(RuntimeError, match="409"):
            request_json(url + "/query?window=17")  # unknown epoch
        # a batch for a different configuration is refused up front
        other, reports = encode_reports(SPEC, 10, seed=9, chunks=1)
        mismatched = pack_report_batch(other.spec(), reports)
        with pytest.raises(RuntimeError, match="different protocol"):
            request_json(url + "/ingest", method="POST", body=mismatched)

    def test_truncated_body_gets_a_400_not_a_hang(self, live_service):
        import http.client

        host, port, _ = split_url(live_service.url)
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/ingest")
            connection.putheader("Content-Length", "1000")
            connection.endheaders()
            connection.send(b"short")
            connection.sock.shutdown(1)  # half-close: body can never arrive
            response = connection.getresponse()
            assert response.status == 400
            assert b"truncated body" in response.read()
        finally:
            connection.close()


class TestCheckpointRecovery:
    def test_kill_and_restore_loses_no_closed_epoch(self, tmp_path):
        path = str(tmp_path / "service.ckpt")
        protocol, reports = encode_reports(SPEC, 300, seed=10, chunks=6)
        blobs = [pack_report_batch(protocol.spec(), [report]) for report in reports]

        service = AggregationService(
            SPEC, num_workers=2, checkpoint_path=path, checkpoint_every=1
        )
        handle = ServiceThread(service).start()
        url = handle.url
        for blob in blobs[:3]:
            request_json(url + "/ingest", method="POST", body=blob)
        request_json(url + "/close", method="POST")
        for blob in blobs[3:5]:
            request_json(url + "/ingest", method="POST", body=blob)
        request_json(url + "/close", method="POST")
        before = request_json(url + "/query?ranges=0:31&window=all")
        # epoch 2 is mid-flight when the process dies
        request_json(url + "/ingest", method="POST", body=blobs[5])
        handle.stop(flush=False)

        restored = AggregationService.from_checkpoint(path, num_workers=2)
        assert restored.engine.epochs == (0, 1)
        assert restored.current_epoch == 2
        with ServiceThread(restored) as handle2:
            url2 = handle2.url
            after = request_json(url2 + "/query?ranges=0:31&window=all")
            assert after["ranges"] == before["ranges"]
            assert after["n_users"] == before["n_users"]
            # service keeps working: the lost batch is simply re-sent
            request_json(url2 + "/ingest", method="POST", body=blobs[5])
            closed = request_json(url2 + "/close", method="POST")
            assert closed["epoch"] == 2
            windows = request_json(url2 + "/query?ranges=0:31&window=last:1")
            assert windows["epochs"] == [2]

    def test_graceful_stop_flushes_the_open_epoch(self, tmp_path):
        path = str(tmp_path / "flush.ckpt")
        protocol, reports = encode_reports(SPEC, 100, seed=11, chunks=2)
        service = AggregationService(SPEC, num_workers=2, checkpoint_path=path)
        with ServiceThread(service) as handle:
            for report in reports:
                request_json(
                    handle.url + "/ingest",
                    method="POST",
                    body=pack_report_batch(protocol.spec(), [report]),
                )
            # no explicit /close: the context exit flushes
        from repro.engine import Engine

        engine = Engine.restore(path)
        assert engine.epochs == (0,)
        assert engine.n_reports() == 100


class TestLoadgen:
    def test_percentile(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 99) == 5.0
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == pytest.approx(50.5)
        assert percentile(samples, 100) == 100.0

    def test_loadgen_against_a_live_service(self):
        dataset, blobs = generate_batches(SPEC, n_users=200, batch_size=50, seed=12)
        assert dataset.n_users == 200 and len(blobs) == 4
        service = AggregationService(SPEC, num_workers=2)
        with ServiceThread(service) as handle:
            result = run_loadgen(
                handle.url, blobs, dataset.n_users, concurrency=2
            )
            answer = request_json(handle.url + "/query?frequencies=1")
        assert result.errors == 0
        assert result.n_users == 200
        assert result.closed_epoch == 0
        assert result.reports_per_s > 0
        assert result.latency_p99_ms >= result.latency_p50_ms >= 0
        document = json.loads(json.dumps(result.to_document()))
        assert document["batches"] == 4
        reference = ingest_batches_single_process(SPEC, blobs).finalize()
        assert answer["frequencies"] == [
            float(v) for v in reference.estimated_frequencies()
        ]

    def test_grid_specs_are_refused(self):
        with pytest.raises(ValueError, match="1-D"):
            generate_batches(
                {"name": "grid2d", "domain_size": 8, "epsilon": 1.0},
                n_users=10,
                batch_size=5,
            )


def make_blobs(spec, n_users, seed, chunks):
    """Framed one-report batches plus their single-process reference."""
    protocol, reports = encode_reports(spec, n_users, seed=seed, chunks=chunks)
    blobs = [pack_report_batch(protocol.spec(), [report]) for report in reports]
    reference = ingest_batches_single_process(protocol.spec(), blobs).finalize()
    return blobs, [float(v) for v in reference.estimated_frequencies()]


def assert_matches_reference(url, reference_frequencies):
    """The strongest claim the service makes: answers are bit-identical."""
    answer = request_json(url + "/query?frequencies=1&window=all")
    assert answer["frequencies"] == reference_frequencies


class TestFaultTolerance:
    """Chaos tests: inject a fault, recover, demand bit-identity."""

    @pytest.mark.chaos
    def test_worker_kill_mid_ingest_is_exactly_once(self, tmp_path):
        blobs, reference = make_blobs(SPEC, 240, seed=20, chunks=8)
        service = AggregationService(
            SPEC, num_workers=2, wal_dir=str(tmp_path / "wal"),
            supervise_interval=0.05,
        )
        with ServiceThread(service) as handle:
            url = handle.url
            for index, blob in enumerate(blobs[:4]):
                request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"wk:{index}"},
                )
            kill_worker(handle, 0)
            assert request_json(url + "/healthz")["status"] in ("ok", "degraded")
            for index, blob in enumerate(blobs[4:], start=4):
                request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"wk:{index}"},
                )
            closed = request_json(url + "/close", method="POST")
            assert closed["closed"] and closed["reports"] == 240
            assert_matches_reference(url, reference)
            stats = request_json(url + "/stats")
            assert stats["restart_count"] >= 1
            assert stats["replayed_batches"] >= 1

    @pytest.mark.chaos
    def test_all_workers_dead_defers_to_wal_and_recovers(self, tmp_path):
        blobs, reference = make_blobs(SPEC, 120, seed=21, chunks=4)
        service = AggregationService(
            SPEC, num_workers=2, wal_dir=str(tmp_path / "wal"),
            supervise_interval=None,  # force the close-time repair path
        )
        with ServiceThread(service) as handle:
            url = handle.url
            request_json(
                url + "/ingest", method="POST", body=blobs[0],
                headers={"Idempotency-Key": "dead:0"},
            )
            kill_worker(handle, 0)
            kill_worker(handle, 1)
            # every shard is dead: with a WAL the ingest is still
            # acknowledged (deferred), not 503'd
            for index, blob in enumerate(blobs[1:], start=1):
                reply = request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"dead:{index}"},
                )
                assert reply["queued"] == 30
            assert request_json(url + "/healthz")["status"] == "degraded"
            closed = request_json(url + "/close", method="POST")
            assert closed["reports"] == 120
            assert_matches_reference(url, reference)
            stats = request_json(url + "/stats")
            assert stats["accepted"]["deferred_batches"] >= 1
            assert stats["restart_count"] >= 2

    @pytest.mark.chaos
    def test_gateway_sigkill_mid_epoch_replays_from_wal(self, tmp_path):
        blobs, reference = make_blobs(SPEC, 250, seed=22, chunks=5)
        wal_dir = str(tmp_path / "wal")
        ckpt = str(tmp_path / "service.ckpt")
        with ServiceProcess(
            SPEC, checkpoint_path=ckpt, wal_dir=wal_dir,
            num_workers=2, checkpoint_every=1,
        ) as victim:
            url = victim.url
            for index, blob in enumerate(blobs[:3]):
                request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"gw:{index}"},
                )
            request_json(url + "/close", method="POST")
            # epoch 1 in flight: these two are acknowledged, then the
            # gateway dies before any close or checkpoint sees them
            for index, blob in enumerate(blobs[3:], start=3):
                request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"gw:{index}"},
                )
            victim.kill()

        restored = AggregationService.from_checkpoint(
            ckpt, num_workers=2, wal_dir=wal_dir
        )
        with ServiceThread(restored) as handle:
            url = handle.url
            stats = request_json(url + "/stats")
            assert stats["replayed_batches"] == 2
            assert stats["current_epoch"] == 1
            # a client retry of an already-recovered batch is a duplicate
            reply = request_json(
                url + "/ingest", method="POST", body=blobs[4],
                headers={"Idempotency-Key": "gw:4"},
            )
            assert reply.get("duplicate") is True
            closed = request_json(url + "/close", method="POST")
            assert closed["epoch"] == 1 and closed["reports"] == 100
            assert_matches_reference(url, reference)

    def test_chaos_stream_duplicates_reorders_dedup_exactly(self, tmp_path):
        blobs, reference = make_blobs(SPEC, 180, seed=23, chunks=6)
        schedule = chaos_stream(blobs, seed=7, drop=0.3, duplicate=0.5)
        assert delivered_indices(schedule) == list(range(len(blobs)))
        assert len(schedule) > len(blobs)  # seed 7 produces duplicates
        service = AggregationService(
            SPEC, num_workers=2, wal_dir=str(tmp_path / "wal")
        )
        with ServiceThread(service) as handle:
            url = handle.url
            for index, blob in schedule:
                request_json(
                    url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"chaos:{index}"},
                )
            closed = request_json(url + "/close", method="POST")
            assert closed["reports"] == 180
            assert_matches_reference(url, reference)
            stats = request_json(url + "/stats")
            assert stats["accepted"]["duplicates_dropped"] == len(schedule) - len(
                blobs
            )

    def test_torn_wal_tail_loses_only_the_unacked_record(self, tmp_path):
        blobs, _ = make_blobs(SPEC, 90, seed=24, chunks=3)
        wal_dir = str(tmp_path / "wal")
        service = AggregationService(SPEC, num_workers=2, wal_dir=wal_dir)
        handle = ServiceThread(service).start()
        try:
            for index, blob in enumerate(blobs):
                request_json(
                    handle.url + "/ingest", method="POST", body=blob,
                    headers={"Idempotency-Key": f"torn:{index}"},
                )
        finally:
            handle.stop(flush=False)  # crash: epoch 0 lives only in the WAL
        # tear the tail of the open segment: the last record's append was
        # cut short, so its ack never went out -- recovery must keep the
        # first two batches and drop the torn one
        truncate_wal_tail(service.wal.segment_path(0), 4)

        reference = ingest_batches_single_process(SPEC, blobs[:2]).finalize()
        restored = AggregationService(SPEC, num_workers=2, wal_dir=wal_dir)
        with ServiceThread(restored) as handle2:
            closed = request_json(handle2.url + "/close", method="POST")
            assert closed["reports"] == 60
            answer = request_json(handle2.url + "/query?frequencies=1&window=all")
            assert answer["frequencies"] == [
                float(v) for v in reference.estimated_frequencies()
            ]

    def test_saturated_pool_rejects_with_429_and_retry_after(self):
        blobs, _ = make_blobs(SPEC, 60, seed=25, chunks=2)
        service = AggregationService(SPEC, num_workers=2, max_inflight=4)
        with ServiceThread(service) as handle:
            for worker in handle.service.pool.workers:
                worker.pending = 99  # every queue artificially at its bound
            with pytest.raises(RuntimeError, match="429"):
                request_json(
                    handle.url + "/ingest", method="POST", body=blobs[0],
                    max_retries=0,
                )
            # the rejection carries a Retry-After hint
            import http.client

            host, port, _ = split_url(handle.url)
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request(
                    "POST", "/ingest", body=blobs[0],
                    headers={"Content-Type": "application/octet-stream"},
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 429
                assert float(response.getheader("Retry-After")) > 0
            finally:
                conn.close()
            for worker in handle.service.pool.workers:
                worker.pending = 0
            # with retries the client rides out the saturation window
            reply = request_json(
                handle.url + "/ingest", method="POST", body=blobs[0]
            )
            assert reply["queued"] == 30
            stats = request_json(handle.url + "/stats")
            assert stats["accepted"]["rejected_busy"] >= 2

    def test_stuck_connection_gets_408_not_a_held_slot(self):
        service = AggregationService(SPEC, num_workers=1, request_timeout=0.3)
        with ServiceThread(service) as handle:
            host, port, _ = split_url(handle.url)
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.sendall(b"POST /ingest HTTP/1.1\r\n")  # never finishes
                data = sock.recv(65536)
            assert b"408" in data.split(b"\r\n", 1)[0]
            # the service is fine afterwards
            assert request_json(handle.url + "/healthz")["status"] == "ok"
            stats = request_json(handle.url + "/stats")
            assert stats["timed_out_connections"] == 1

    @pytest.mark.chaos
    def test_pool_reaps_killed_workers_without_zombies(self):
        import asyncio
        import multiprocessing

        blobs, _ = make_blobs(SPEC, 60, seed=26, chunks=2)

        async def run():
            pool = WorkerPool(SPEC, num_workers=2, restart_backoff_s=0.01).start()
            try:
                await pool.ingest(blobs[0])
                kill_worker(pool, 0)
                assert pool.dead_indices() == [0]
                respawned = await pool.ensure_alive(force=True)
                assert respawned == [0]
                assert pool.restart_count == 1
                await pool.ingest_on(0, blobs[1])  # replacement works
                stats = await pool.stats()
                assert all(stat["alive"] for stat in stats)
            finally:
                await pool.shutdown(graceful=True)

        asyncio.run(run())
        # shutdown reaped everything: no zombie children survive
        assert multiprocessing.active_children() == []
