"""Tests for the client/server streaming API of the range-query protocols.

Covers the core guarantees of the redesign:

* ``run()`` is a thin wrapper: with the same seeded generator, one client
  batch plus one server produces an estimator identical to ``run()``;
* sharding invariance -- ingesting any partition of a report stream on any
  number of servers and merging in any order finalizes to frequencies that
  are *exactly* (``np.array_equal``) those of single-server ingestion;
* reports and accumulator states survive ``to_bytes``/``from_bytes``;
* the CLI ``encode`` / ``aggregate`` / ``merge`` pipeline reproduces the
  same exactness guarantees on files.
"""

import json

import numpy as np
import pytest

from repro import (
    FlatRangeQuery,
    HaarHRR,
    HierarchicalHistogram,
    ProtocolUsageError,
    load_server,
    make_protocol,
    protocol_from_spec,
)
from repro.cli import main, write_items
from repro.core.protocol import RangeQueryEstimator
from repro.core.session import Report, load_server_file
from repro.core.types import Domain

PROTOCOL_CASES = [
    pytest.param(lambda: FlatRangeQuery(64, 1.1, oracle="oue"), id="flat-oue"),
    pytest.param(lambda: FlatRangeQuery(64, 1.1, oracle="grr"), id="flat-grr"),
    pytest.param(lambda: FlatRangeQuery(64, 1.1, oracle="hrr"), id="flat-hrr"),
    pytest.param(lambda: FlatRangeQuery(64, 1.1, oracle="sue"), id="flat-sue"),
    pytest.param(lambda: FlatRangeQuery(64, 1.1, oracle="the"), id="flat-the"),
    pytest.param(lambda: FlatRangeQuery(16, 1.1, oracle="she"), id="flat-she"),
    pytest.param(lambda: FlatRangeQuery(16, 1.1, oracle="olh"), id="flat-olh"),
    pytest.param(
        lambda: HierarchicalHistogram(64, 1.1, branching=4, oracle="oue"),
        id="hh-oue-ci",
    ),
    pytest.param(
        lambda: HierarchicalHistogram(64, 1.1, branching=4, oracle="hrr", consistency=False),
        id="hh-hrr",
    ),
    pytest.param(
        lambda: HierarchicalHistogram(16, 1.1, branching=4, oracle="olh"),
        id="hh-olh",
    ),
    pytest.param(
        lambda: HierarchicalHistogram(64, 1.1, branching=4, level_strategy="split"),
        id="hh-split",
    ),
    pytest.param(lambda: HaarHRR(64, 1.1), id="haar"),
]


def _items_for(protocol, n_users=600, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, protocol.domain_size, size=n_users)


def _encode_stream(protocol, items, n_batches=8, seed=42):
    """Encode ``items`` as a stream of report batches from one rng."""
    client = protocol.client()
    rng = np.random.default_rng(seed)
    return [client.encode_batch(batch, rng=rng) for batch in np.array_split(items, n_batches)]


class TestRunIsAThinWrapper:
    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_run_equals_one_client_one_server(self, make):
        protocol = make()
        items = _items_for(protocol)
        via_run = protocol.run(items, rng=np.random.default_rng(9))

        server = protocol.server()
        server.ingest(protocol.client().encode_batch(items, rng=np.random.default_rng(9)))
        via_session = server.finalize()
        assert np.array_equal(
            via_run.estimated_frequencies(), via_session.estimated_frequencies()
        )

    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_estimates_track_the_population(self, make):
        """Statistical sanity: the streamed estimator is near the truth."""
        protocol = make()
        rng = np.random.default_rng(1)
        items = rng.integers(0, protocol.domain_size // 2, size=4000)
        server = protocol.server().ingest(_encode_stream(protocol, items))
        estimator = server.finalize()
        exact = Domain(protocol.domain_size).frequencies(items)
        answer = estimator.range_query((0, protocol.domain_size // 2 - 1))
        truth = float(exact[: protocol.domain_size // 2].sum())
        # GRR's variance grows linearly with D (which is why the paper only
        # uses it inside OLH); give it a correspondingly wider band.
        wide = isinstance(protocol, FlatRangeQuery) and protocol.oracle_name == "grr"
        assert answer == pytest.approx(truth, abs=1.5 if wide else 0.25)


class TestShardingInvariance:
    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_any_sharding_any_merge_order_is_exact(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _items_for(protocol))
        reference = (
            protocol.server().ingest(reports).finalize().estimated_frequencies()
        )

        shards = [protocol.server() for _ in range(3)]
        for index, report in enumerate(reports):
            shards[index % 3].ingest(report)

        orders = [(0, 1, 2), (2, 0, 1), (1, 2, 0)]
        for order in orders:
            states = [shards[i].state.copy() for i in order]
            combined = protocol.server(state=states[0])
            combined.merge(states[1]).merge(states[2])
            assert combined.n_reports == len(_items_for(protocol))
            assert np.array_equal(
                combined.finalize().estimated_frequencies(), reference
            )

    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_merge_is_associative(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _items_for(protocol), n_batches=3)
        parts = [protocol.server().ingest(report).state for report in reports]
        a, b, c = parts

        left = protocol.server(state=a.copy().merge(b.copy()).merge(c.copy()))
        right = protocol.server(state=a.copy().merge(b.copy().merge(c.copy())))
        assert np.array_equal(
            left.finalize().estimated_frequencies(),
            right.finalize().estimated_frequencies(),
        )

    def test_merge_rejects_mismatched_protocols(self):
        a = FlatRangeQuery(64, 1.1).server()
        b = FlatRangeQuery(64, 2.0).server()
        with pytest.raises(ProtocolUsageError):
            a.merge(b)
        hh = HierarchicalHistogram(64, 1.1).server()
        with pytest.raises(ProtocolUsageError):
            a.merge(hh)


class TestSessionBasics:
    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_single_item_encode(self, make):
        protocol = make()
        client = protocol.client()
        rng = np.random.default_rng(5)
        server = protocol.server()
        for item in range(10):
            server.ingest(client.encode(item % protocol.domain_size, rng=rng))
        assert server.n_reports == 10
        estimator = server.finalize()
        assert isinstance(estimator, RangeQueryEstimator)
        assert len(estimator.estimated_frequencies()) == protocol.domain_size

    def test_empty_batch_is_a_noop(self):
        protocol = FlatRangeQuery(64, 1.1)
        server = protocol.server()
        server.ingest(protocol.client().encode_batch(np.array([], dtype=np.int64)))
        assert server.n_reports == 0

    def test_finalize_without_reports_raises(self):
        for protocol in (FlatRangeQuery(64, 1.1), HierarchicalHistogram(64, 1.1), HaarHRR(64, 1.1)):
            with pytest.raises(ProtocolUsageError):
                protocol.server().finalize()

    def test_server_rejects_wrong_report_type(self):
        flat = FlatRangeQuery(64, 1.1)
        haar_report = HaarHRR(64, 1.1).client().encode_batch(np.arange(8))
        with pytest.raises(ProtocolUsageError):
            flat.server().ingest(haar_report)

    def test_ingest_after_finalize_keeps_accumulating(self):
        protocol = FlatRangeQuery(64, 1.1)
        reports = _encode_stream(protocol, _items_for(protocol), n_batches=2)
        incremental = protocol.server().ingest(reports[0])
        incremental.finalize()
        incremental.ingest(reports[1])
        reference = protocol.server().ingest(reports)
        assert np.array_equal(
            incremental.finalize().estimated_frequencies(),
            reference.finalize().estimated_frequencies(),
        )


class TestSerialization:
    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_server_bytes_roundtrip_rebuilds_protocol(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _items_for(protocol))
        server = protocol.server().ingest(reports)
        restored = load_server(server.to_bytes())
        assert restored.protocol.spec() == protocol.spec()
        assert restored.n_reports == server.n_reports
        assert np.array_equal(
            restored.finalize().estimated_frequencies(),
            server.finalize().estimated_frequencies(),
        )

    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_report_bytes_roundtrip(self, make):
        protocol = make()
        reports = _encode_stream(protocol, _items_for(protocol), n_batches=2)
        direct = protocol.server().ingest(reports)
        revived = protocol.server().ingest(
            [Report.from_bytes(report.to_bytes()) for report in reports]
        )
        assert np.array_equal(
            direct.finalize().estimated_frequencies(),
            revived.finalize().estimated_frequencies(),
        )

    @pytest.mark.parametrize("make", PROTOCOL_CASES)
    def test_protocol_spec_roundtrip(self, make):
        protocol = make()
        rebuilt = protocol_from_spec(protocol.spec())
        assert rebuilt.spec() == protocol.spec()
        assert rebuilt.name == protocol.name


class TestRegistryImprovements:
    def test_wavelet_alias(self):
        protocol = make_protocol("wavelet", 64, 1.0)
        assert isinstance(protocol, HaarHRR)

    def test_unknown_kwarg_names_handle_and_parameters(self):
        with pytest.raises(TypeError) as excinfo:
            make_protocol("hh", 64, 1.0, branchin=8)
        message = str(excinfo.value)
        assert "'hh'" in message and "branchin" in message and "branching" in message

    def test_unknown_protocol_lists_aliases(self):
        with pytest.raises(KeyError) as excinfo:
            make_protocol("nope", 64, 1.0)
        assert "wavelet" in str(excinfo.value)


class _FixedEstimator(RangeQueryEstimator):
    def __init__(self, frequencies):
        super().__init__(Domain(len(frequencies)))
        self._frequencies = np.asarray(frequencies, dtype=np.float64)

    def estimated_frequencies(self):
        return self._frequencies.copy()


class TestMonotoneCdfCache:
    def test_quantiles_use_and_invalidate_the_cache(self):
        estimator = _FixedEstimator([0.5, 0.1, 0.2, 0.2])
        assert estimator._monotone_cdf_cache is None
        first = estimator.quantile_query(0.5)
        cached = estimator._monotone_cdf_cache
        assert cached is not None
        assert estimator.quantile_query(0.5) == first
        assert estimator._monotone_cdf_cache is cached

        estimator._frequencies = np.array([0.0, 0.0, 0.0, 1.0])
        estimator.invalidate_cache()
        assert estimator._monotone_cdf_cache is None
        assert estimator.quantile_query(0.5) == 3


class TestCliStreamingPipeline:
    def test_encode_aggregate_merge_matches_single_pass(self, tmp_path):
        data = tmp_path / "users.csv"
        rng = np.random.default_rng(2)
        write_items(str(data), rng.integers(0, 64, size=3000))

        encode_args = [
            "encode",
            "--input", str(data),
            "--domain-size", "64",
            "--epsilon", "1.5",
            "--method", "hh",
            "--branching", "4",
            "--seed", "7",
            "--shards", "3",
            "--output", str(tmp_path / "reports.bin"),
        ]
        assert main(encode_args) == 0
        report_files = [str(tmp_path / f"reports.bin.{i}") for i in range(3)]

        for index, path in enumerate(report_files):
            assert main(["aggregate", "--reports", path,
                         "--output", str(tmp_path / f"shard{index}.state")]) == 0
        assert main(["aggregate", "--reports", *report_files,
                     "--output", str(tmp_path / "single.state")]) == 0

        out_path = tmp_path / "answers.json"
        merge_args = [
            "merge",
            "--states",
            str(tmp_path / "shard2.state"),
            str(tmp_path / "shard0.state"),
            str(tmp_path / "shard1.state"),
            "--ranges", "0:31,16:47",
            "--quantiles", "0.5",
            "--output", str(out_path),
            "--output-state", str(tmp_path / "merged.state"),
        ]
        assert main(merge_args) == 0

        result = json.loads(out_path.read_text())
        assert result["method"] == "TreeOUECI"
        assert result["n_users"] == 3000
        assert result["n_shards"] == 3
        assert set(result["ranges"]) == {"0:31", "16:47"}
        assert "0.5" in result["quantiles"]

        single = load_server_file(str(tmp_path / "single.state"))
        merged = load_server_file(str(tmp_path / "merged.state"))
        assert np.array_equal(
            single.finalize().estimated_frequencies(),
            merged.finalize().estimated_frequencies(),
        )

    def test_aggregate_rejects_mixed_configurations(self, tmp_path):
        data = tmp_path / "users.csv"
        write_items(str(data), np.arange(32))
        for epsilon, name in (("1.0", "a.bin"), ("2.0", "b.bin")):
            assert main([
                "encode", "--input", str(data), "--domain-size", "32",
                "--epsilon", epsilon, "--method", "flat", "--seed", "1",
                "--output", str(tmp_path / name),
            ]) == 0
        with pytest.raises(SystemExit):
            main([
                "aggregate",
                "--reports", str(tmp_path / "a.bin"), str(tmp_path / "b.bin"),
                "--output", str(tmp_path / "out.state"),
            ])
