"""Minimal asyncio HTTP/1.1 handling for the ingest gateway.

The aggregation service speaks plain HTTP so that any client -- ``curl``,
a load generator, a fleet of devices -- can post report batches without a
client library, but the repository takes no new dependencies: this module
is the ~150 lines of stdlib-only request parsing and response rendering
the gateway actually needs.

Scope (deliberately small):

* HTTP/1.1 with keep-alive (and HTTP/1.0 with ``Connection: keep-alive``);
* ``Content-Length`` bodies only -- chunked transfer encoding is refused
  with ``501`` rather than half-implemented;
* hard limits on header block and body size, surfaced as proper 4xx
  responses instead of unbounded buffering.

Handlers raise :class:`HttpError` to short-circuit into an error
response; anything else is a ``500``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 64 * 1024

#: Default upper bound on a request body (one framed report batch).
DEFAULT_MAX_BODY = 128 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request failure that maps onto one HTTP error response.

    ``headers`` lets a handler attach response headers to the error --
    the gateway uses it for ``Retry-After`` on 429/503 so well-behaved
    clients know how long to back off.
    """

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.headers = dict(headers or {})


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[HttpRequest]:
    """Read and parse one request; ``None`` on a clean EOF between requests.

    The caller must create the stream with ``limit`` >=
    :data:`MAX_HEADER_BYTES` (an overrun surfaces as a 431
    :class:`HttpError`); bodies are bounded by ``max_body`` (413).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(
            431, f"request head exceeds {MAX_HEADER_BYTES} bytes"
        ) from exc

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"malformed Content-Length {length_text!r}") from exc
    if length < 0:
        raise HttpError(400, f"negative Content-Length {length}")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds the {max_body} limit")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(
                400,
                f"truncated body: Content-Length {length} but only "
                f"{len(exc.partial)} bytes arrived",
            ) from exc

    split = urlsplit(target)
    params = dict(parse_qsl(split.query, keep_blank_values=True))
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.1":
        keep_alive = connection != "close"
    else:
        keep_alive = connection == "keep-alive"
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        params=params,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one complete HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extras}"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_response(
    status: int,
    payload: dict,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render a JSON document as a complete response."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def error_response(
    status: int,
    message: str,
    keep_alive: bool = False,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """The uniform JSON error body every failure path uses."""
    return json_response(
        status,
        {"error": message, "status": status},
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )


def split_url(url: str) -> Tuple[str, int, str]:
    """Split ``http://host:port/base`` into ``(host, port, base_path)``.

    Used by the load generator and CLI clients; only ``http`` URLs are
    meaningful for the gateway.
    """
    if "//" not in url:
        url = "http://" + url
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"unsupported URL scheme {parts.scheme!r}; expected http")
    if not parts.hostname:
        raise ValueError(f"URL {url!r} has no host")
    return parts.hostname, parts.port or 80, parts.path.rstrip("/")
