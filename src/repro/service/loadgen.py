"""Load generator for the aggregation service.

Drives a running gateway the way a fleet of devices would: encode a
synthetic population client-side (the privatization happens *here*, on
the "device"), pack the reports into framed batches, and post them from
``concurrency`` threads over keep-alive connections while sampling
per-request latency.  The result quantifies the service's two headline
numbers -- sustained reports/second and p99 ingest latency -- and is what
``repro-cli loadgen`` and :mod:`benchmarks.bench_service` build on.

The generator is honest about what it measures: latency is wall-clock
around each ``POST /ingest`` round trip (client-observed, connection
reuse, no pipelining), and throughput is total reports over total
wall-clock including the final epoch close.
"""

from __future__ import annotations

import http.client
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import List, Optional
from urllib.parse import quote, urlsplit

import numpy as np

from repro.core.rng import ensure_rng
from repro.core.serialization import pack_report_batch
from repro.core.session import protocol_from_spec
from repro.data.synthetic import make_population


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples``; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class LoadgenResult:
    """Outcome of one load-generation run against a gateway."""

    n_users: int
    batches: int
    concurrency: int
    elapsed_s: float
    reports_per_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_max_ms: float
    closed_epoch: Optional[int] = None
    errors: int = 0
    retries: int = 0
    queries: int = 0
    query_errors: int = 0
    query_unavailable: int = 0
    query_p50_ms: float = 0.0
    query_p99_ms: float = 0.0
    queries_per_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)

    def to_document(self) -> dict:
        """JSON-able summary (drops the raw latency samples)."""
        return {
            "n_users": self.n_users,
            "batches": self.batches,
            "concurrency": self.concurrency,
            "elapsed_s": self.elapsed_s,
            "reports_per_s": self.reports_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max_ms,
            "closed_epoch": self.closed_epoch,
            "errors": self.errors,
            "retries": self.retries,
            "queries": self.queries,
            "query_errors": self.query_errors,
            "query_unavailable": self.query_unavailable,
            "query_p50_ms": self.query_p50_ms,
            "query_p99_ms": self.query_p99_ms,
            "queries_per_s": self.queries_per_s,
        }


def generate_batches(
    spec: dict,
    n_users: int,
    batch_size: int,
    distribution: str = "zipf",
    seed: Optional[int] = 0,
):
    """Encode a synthetic population into framed report batches.

    Returns ``(dataset, batch_blobs)``: the population (for ground-truth
    comparisons) and one :func:`pack_report_batch` blob per chunk of
    ``batch_size`` users.  Encoding happens once, up front, so the timed
    ingest loop measures the *service*, not client-side privatization.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    protocol = protocol_from_spec(spec)
    if hasattr(protocol, "domain_size_y") or spec.get("name") == "grid2d":
        raise ValueError(
            "the load generator drives 1-D protocols; grid2d needs 2-D items"
        )
    dataset = make_population(
        distribution, int(spec["domain_size"]), int(n_users), rng=ensure_rng(seed)
    )
    client = protocol.client()
    rng = ensure_rng(None if seed is None else seed + 1)
    reports = client.encode_batches(np.asarray(dataset.items), batch_size, rng=rng)
    blobs = [pack_report_batch(protocol, [report]) for report in reports]
    return dataset, blobs


class _GatewayClient:
    """One keep-alive connection to the gateway (thread-confined).

    Retries the way a well-behaved device should: transport failures
    (connection reset, refused, incomplete read -- all expected while
    the gateway restarts a crashed shard worker) get a fresh connection
    and a jittered backoff; 429/503 honor the server's ``Retry-After``.
    Every attempt of a batch carries the same idempotency key, so a
    retry of an already-acknowledged batch is deduplicated server-side
    rather than double-counted.
    """

    def __init__(self, url: str, timeout: float = 60.0,
                 max_retries: int = 2) -> None:
        parts = urlsplit(url if "//" in url else "http://" + url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported URL scheme {parts.scheme!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._max_retries = int(max_retries)
        self._conn: Optional[http.client.HTTPConnection] = None
        self.retries = 0

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def _reset(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def get(self, path: str) -> int:
        """One GET round trip; resets the connection on transport failure."""
        try:
            conn = self._connection()
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()
            return response.status
        except (OSError, http.client.HTTPException):
            self._reset()
            raise

    def post_batch(self, blob: bytes, key: str) -> int:
        from repro.service.gateway import retry_delay_s

        status = -1
        for attempt in range(self._max_retries + 1):
            try:
                conn = self._connection()
                conn.request(
                    "POST",
                    "/ingest",
                    body=blob,
                    headers={
                        "Content-Type": "application/octet-stream",
                        "Idempotency-Key": key,
                    },
                )
                response = conn.getresponse()
                response.read()
                status = response.status
            except (OSError, http.client.HTTPException):
                self._reset()
                if attempt < self._max_retries:
                    self.retries += 1
                    time.sleep(retry_delay_s(attempt))
                    continue
                raise
            if status in (429, 503) and attempt < self._max_retries:
                self.retries += 1
                time.sleep(
                    retry_delay_s(
                        attempt, retry_after=response.getheader("Retry-After")
                    )
                )
                continue
            return status
        return status

    def close(self) -> None:
        self._reset()


def run_loadgen(
    url: str,
    batch_blobs: List[bytes],
    n_users: int,
    concurrency: int = 4,
    close_epoch: bool = True,
    max_retries: int = 2,
    key_prefix: Optional[str] = None,
    query_mix: int = 0,
    query_window: str = "all",
) -> LoadgenResult:
    """Post every batch from ``concurrency`` threads and time it.

    Batches are pulled from a shared cursor so threads stay busy until
    the work runs dry; each thread owns one keep-alive connection and
    retries transient failures (connection resets, 429/503) up to
    ``max_retries`` times per batch under a stable idempotency key --
    ``{key_prefix}:{batch_index}`` -- so retries never double-count.
    ``key_prefix`` defaults to a fresh random prefix per call: the
    gateway's duplicate window spans the previous epoch, so two runs
    against the same service must not share keys.  With ``close_epoch``
    the run ends with ``POST /close`` (included in the throughput clock
    -- a report is not "ingested" until its epoch is queryable).

    ``query_mix`` starts that many extra threads hammering
    ``GET /query?window={query_window}`` for the duration of the ingest
    run, which is how the overlap between windowed pushdown reads and
    ingest is measured.  A 409 (window not yet satisfiable -- expected
    until the first epoch closes) counts as ``query_unavailable``, not
    an error; query failures are tracked separately from ingest
    ``errors`` so ingest health checks stay meaningful.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if query_mix < 0:
        raise ValueError(f"query_mix must be >= 0, got {query_mix}")
    if key_prefix is None:
        key_prefix = f"loadgen-{uuid.uuid4().hex[:12]}"
    concurrency = min(concurrency, max(1, len(batch_blobs)))
    cursor_lock = threading.Lock()
    cursor = [0]
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    retries = [0] * concurrency

    def drive(slot: int) -> None:
        client = _GatewayClient(url, max_retries=max_retries)
        try:
            while True:
                with cursor_lock:
                    index = cursor[0]
                    if index >= len(batch_blobs):
                        return
                    cursor[0] = index + 1
                started = time.perf_counter()
                try:
                    status = client.post_batch(
                        batch_blobs[index], key=f"{key_prefix}:{index}"
                    )
                except (OSError, http.client.HTTPException):
                    errors[slot] += 1
                    continue
                latencies[slot].append((time.perf_counter() - started) * 1000.0)
                if status != 200:
                    errors[slot] += 1
        finally:
            retries[slot] = client.retries
            client.close()

    stop_queries = threading.Event()
    query_latencies: List[List[float]] = [[] for _ in range(query_mix)]
    query_unavailable = [0] * query_mix
    query_errors = [0] * query_mix
    query_path = "/query?window=" + quote(query_window, safe="")

    def query_drive(slot: int) -> None:
        client = _GatewayClient(url, max_retries=0)
        try:
            while not stop_queries.is_set():
                begun = time.perf_counter()
                try:
                    status = client.get(query_path)
                except (OSError, http.client.HTTPException):
                    query_errors[slot] += 1
                    time.sleep(0.05)
                    continue
                if status == 200:
                    query_latencies[slot].append(
                        (time.perf_counter() - begun) * 1000.0
                    )
                elif status == 409:
                    # Window not satisfiable yet (no closed epoch) --
                    # expected while ingest warms up, so back off briefly.
                    query_unavailable[slot] += 1
                    time.sleep(0.05)
                else:
                    query_errors[slot] += 1
        finally:
            client.close()

    started = time.perf_counter()
    query_threads = [
        threading.Thread(
            target=query_drive, args=(slot,), name=f"loadgen-query-{slot}"
        )
        for slot in range(query_mix)
    ]
    for thread in query_threads:
        thread.start()
    threads = [
        threading.Thread(target=drive, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    closed_epoch: Optional[int] = None
    if close_epoch:
        from repro.service.gateway import request_json

        document = request_json(url + "/close", method="POST")
        closed_epoch = document.get("epoch")
    elapsed = time.perf_counter() - started
    stop_queries.set()
    for thread in query_threads:
        thread.join()

    query_samples = [s for bucket in query_latencies for s in bucket]
    samples = [sample for bucket in latencies for sample in bucket]
    return LoadgenResult(
        n_users=n_users,
        batches=len(batch_blobs),
        concurrency=concurrency,
        elapsed_s=elapsed,
        reports_per_s=(n_users / elapsed) if elapsed > 0 else 0.0,
        latency_p50_ms=percentile(samples, 50.0),
        latency_p99_ms=percentile(samples, 99.0),
        latency_max_ms=max(samples) if samples else 0.0,
        closed_epoch=closed_epoch,
        errors=sum(errors),
        retries=sum(retries),
        queries=len(query_samples),
        query_errors=sum(query_errors),
        query_unavailable=sum(query_unavailable),
        query_p50_ms=percentile(query_samples, 50.0),
        query_p99_ms=percentile(query_samples, 99.0),
        queries_per_s=(len(query_samples) / elapsed) if elapsed > 0 else 0.0,
        latencies_ms=samples,
    )


__all__ = [
    "LoadgenResult",
    "generate_batches",
    "percentile",
    "run_loadgen",
]
