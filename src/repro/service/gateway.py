"""The network-facing aggregation service: async gateway + shard workers.

The paper's aggregator is an abstract entity collecting privatized
reports from millions of users.  :class:`AggregationService` is that
entity made concrete: a single asyncio HTTP gateway that accepts framed
report batches, fans them out to per-shard worker processes
(:mod:`repro.service.workers`), merges the shard accumulators into the
epoch-aware :class:`~repro.engine.Engine` on epoch close, and answers
windowed queries -- with durability via the engine's v2 checkpoint
envelope.

Endpoints (all JSON except the ingest body):

=======================  =====================================================
``GET  /healthz``        liveness: 200 while the gateway and every worker run
``GET  /spec``           the protocol registry spec clients must encode for
``GET  /stats``          epochs, report counts, per-worker stats, checkpoints
``POST /ingest``         body = one framed report batch
                         (:func:`repro.core.serialization.pack_report_batch`);
                         the gateway validates the header and forwards the
                         frames to one shard worker without decoding arrays
``POST /close``          close the current epoch: drain every worker, merge
                         the shard states into the engine (exact, order
                         independent), checkpoint every K-th close
``POST /checkpoint``     force a checkpoint now
``GET  /query``          windowed estimates; parameters ``window``
                         (``all`` | ``last:K`` | ``0,2,5``), ``ranges``,
                         ``quantiles``, ``rectangles``, ``frequencies=1``,
                         and optional ``postprocess=`` re-finalization
=======================  =====================================================

Correctness invariant: sharded service ingestion is *bit-identical* to
single-process ingestion of the same report stream.  Workers accumulate
integer sufficient statistics and epoch close merges them exactly
(associative + commutative), so the number of workers, the round-robin
interleaving and the merge order are all unobservable in query answers.

Durability: if ``checkpoint_path`` is set, every ``checkpoint_every``-th
epoch close rewrites the checkpoint (atomic rename, v2 envelope), and a
graceful :meth:`AggregationService.stop` flushes the in-progress epoch
and checkpoints before the workers exit.  Restarting on the same path
resumes with every checkpointed epoch intact.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Optional, Union

from repro.core.exceptions import InvalidWindowError, ProtocolUsageError
from repro.core.serialization import (
    MAGIC_BATCH,
    SerializationError,
    report_batch_header,
)
from repro.core.session import AccumulatorState
from repro.engine import Engine, parse_window, resolve_window
from repro.service.http import (
    DEFAULT_MAX_BODY,
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
)
from repro.service.workers import WorkerPool


def _spec_sans_postprocess(spec: Optional[dict]) -> Optional[dict]:
    """Spec identity for ingest compatibility.

    Assembly-time keys (``postprocess`` and the ``consistency`` flag it
    derives) never touch sufficient statistics, so batches encoded under
    different settings of them are exchangeable.
    """
    if not isinstance(spec, dict):
        return spec
    return {
        key: value
        for key, value in spec.items()
        if key not in ("postprocess", "consistency")
    }


class AggregationService:
    """One protocol configuration served over HTTP with sharded ingest.

    ``engine`` is an :class:`~repro.engine.Engine` (possibly restored
    from a checkpoint), a protocol object, or a spec dict.  The service
    owns the engine's epoch lifecycle: reports accumulate in the worker
    shards of the *current* epoch, ``POST /close`` folds them into the
    engine, and queries see every closed epoch.
    """

    def __init__(
        self,
        engine: Union[Engine, dict, object],
        *,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        max_body: int = DEFAULT_MAX_BODY,
        start_method: str = "spawn",
    ) -> None:
        if not isinstance(engine, Engine):
            engine = Engine.open(engine)
        if int(checkpoint_every) < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self._engine = engine
        self._spec = engine.spec()
        self._host = host
        self._requested_port = int(port)
        self._checkpoint_path = checkpoint_path
        self._checkpoint_every = int(checkpoint_every)
        self._max_body = int(max_body)
        self._pool = WorkerPool(
            self._spec, num_workers=num_workers, start_method=start_method
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._close_lock = asyncio.Lock()
        epochs = engine.epochs
        self._current_epoch = (max(epochs) + 1) if epochs else 0
        self._started_at = time.monotonic()
        self._batches_accepted = 0
        self._reports_accepted = 0
        self._checkpoints_written = 0
        self._closes_since_checkpoint = 0
        self._stopping = False

    # ------------------------------------------------------------------ #
    # construction / lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(cls, path: str, **options) -> "AggregationService":
        """A service resuming from an engine checkpoint file.

        Every checkpointed epoch is restored; ingestion continues on the
        next fresh epoch key, so a crash-restart never rewrites history.
        """
        return cls(Engine.restore(path), checkpoint_path=path, **options)

    @property
    def engine(self) -> Engine:
        """The underlying epoch-aware engine (closed epochs only)."""
        return self._engine

    @property
    def spec(self) -> dict:
        return dict(self._spec)

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("service is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def current_epoch(self) -> int:
        """The epoch key in-flight reports belong to."""
        return self._current_epoch

    async def start(self) -> "AggregationService":
        """Spawn the shard workers and start accepting connections."""
        self._pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, flush: bool = True) -> None:
        """Stop the service.

        ``flush=True`` is the graceful path: stop accepting connections,
        close the in-progress epoch (so no accepted report is lost),
        write a final checkpoint, and let the workers exit cleanly.
        ``flush=False`` simulates a crash: the current epoch's
        un-checkpointed shards are dropped on the floor.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if flush:
            await self._close_epoch()
            if self._checkpoint_path is not None:
                await self._write_checkpoint()
            await self._pool.shutdown(graceful=True)
        else:
            await self._pool.shutdown(graceful=False)

    # ------------------------------------------------------------------ #
    # epoch lifecycle
    # ------------------------------------------------------------------ #
    async def _write_checkpoint(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self._engine.checkpoint, self._checkpoint_path
        )
        self._checkpoints_written += 1
        self._closes_since_checkpoint = 0

    async def _close_epoch(self) -> dict:
        """Drain every worker and merge the shard states into the engine.

        Merging runs under the engine's lock via
        :meth:`~repro.engine.Engine.absorb_shard`; empty shards are
        skipped so a traffic-free close never creates an unfinalizable
        zero-report epoch.
        """
        async with self._close_lock:
            epoch = self._current_epoch
            shard_blobs = await self._pool.close_epoch()
            total = 0
            for blob in shard_blobs:
                state = AccumulatorState.from_bytes(blob)
                if state.n_reports <= 0:
                    continue
                # Worker states carry no epoch stamp; absorb_shard merges
                # them (exactly) into the closing epoch under the lock.
                state.meta.clear()
                self._engine.absorb_shard(state, epoch=epoch)
                total += state.n_reports
            if total == 0:
                return {"closed": False, "reports": 0, "epoch": None}
            self._current_epoch = epoch + 1
            self._closes_since_checkpoint += 1
            checkpointed = False
            if (
                self._checkpoint_path is not None
                and self._closes_since_checkpoint >= self._checkpoint_every
            ):
                await self._write_checkpoint()
                checkpointed = True
            return {
                "closed": True,
                "epoch": epoch,
                "reports": total,
                "checkpointed": checkpointed,
                "epochs": list(self._engine.epochs),
            }

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self._max_body)
                except HttpError as exc:
                    writer.write(error_response(exc.status, exc.message))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await self._dispatch(request)
                except HttpError as exc:
                    response = error_response(
                        exc.status, exc.message, keep_alive=request.keep_alive
                    )
                except Exception as exc:  # noqa: BLE001 - boundary: a handler
                    # bug must produce a 500, never kill the connection loop.
                    response = error_response(500, f"{type(exc).__name__}: {exc}")
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return await self._handle_healthz(request)
        if route == ("GET", "/spec"):
            return json_response(200, self._spec, keep_alive=request.keep_alive)
        if route == ("GET", "/stats"):
            return await self._handle_stats(request)
        if route == ("POST", "/ingest"):
            return await self._handle_ingest(request)
        if route == ("POST", "/close"):
            return await self._handle_close(request)
        if route == ("POST", "/checkpoint"):
            return await self._handle_checkpoint(request)
        if route == ("GET", "/query"):
            return await self._handle_query(request)
        known_paths = {
            "/healthz", "/spec", "/stats", "/ingest", "/close",
            "/checkpoint", "/query",
        }
        if request.path in known_paths:
            raise HttpError(405, f"{request.method} is not allowed on {request.path}")
        raise HttpError(404, f"unknown endpoint {request.path}")

    async def _handle_healthz(self, request: HttpRequest) -> bytes:
        alive = self._pool.alive_count
        healthy = alive == len(self._pool) and not self._stopping
        payload = {
            "status": "ok" if healthy else "degraded",
            "workers": {"alive": alive, "configured": len(self._pool)},
        }
        return json_response(
            200 if healthy else 503, payload, keep_alive=request.keep_alive
        )

    async def _handle_stats(self, request: HttpRequest) -> bytes:
        worker_stats = await self._pool.stats()
        engine = self._engine
        epochs = list(engine.epochs)
        payload = {
            "uptime_s": time.monotonic() - self._started_at,
            "method": self._spec.get("name"),
            "current_epoch": self._current_epoch,
            "epochs": epochs,
            "epoch_reports": {
                str(epoch): engine.session(epoch=epoch).n_reports
                for epoch in epochs
            },
            "closed_reports": engine.n_reports() if epochs else 0,
            "pending_reports": sum(
                stat.get("epoch_reports", 0) for stat in worker_stats
            ),
            "accepted": {
                "batches": self._batches_accepted,
                "reports": self._reports_accepted,
            },
            "workers": worker_stats,
            "checkpoint": {
                "path": self._checkpoint_path,
                "every": self._checkpoint_every,
                "written": self._checkpoints_written,
            },
        }
        return json_response(200, payload, keep_alive=request.keep_alive)

    async def _handle_ingest(self, request: HttpRequest) -> bytes:
        blob = request.body
        if not blob:
            raise HttpError(411, "ingest needs a framed report batch as its body")
        if not blob.startswith(MAGIC_BATCH):
            raise HttpError(
                400,
                f"body is not a framed report batch (expected magic {MAGIC_BATCH!r})",
            )
        try:
            header = report_batch_header(blob)
        except SerializationError as exc:
            raise HttpError(400, str(exc)) from exc
        batch_spec = header.get("protocol")
        if batch_spec is not None and _spec_sans_postprocess(
            batch_spec
        ) != _spec_sans_postprocess(self._spec):
            raise HttpError(
                409,
                "batch was encoded for a different protocol configuration: "
                f"{batch_spec} != {self._spec}",
            )
        count = header.get("count", 0)
        n_users = int(header.get("n_users", 0))
        if count == 0 or n_users == 0:
            return json_response(
                200,
                {"queued": 0, "epoch": self._current_epoch},
                keep_alive=request.keep_alive,
            )
        epoch = self._current_epoch
        try:
            worker = await self._pool.ingest(blob)
        except (BrokenPipeError, OSError) as exc:
            raise HttpError(503, f"shard worker unavailable: {exc}") from exc
        self._batches_accepted += 1
        self._reports_accepted += n_users
        return json_response(
            200,
            {"queued": n_users, "epoch": epoch, "worker": worker},
            keep_alive=request.keep_alive,
        )

    async def _handle_close(self, request: HttpRequest) -> bytes:
        result = await self._close_epoch()
        return json_response(200, result, keep_alive=request.keep_alive)

    async def _handle_checkpoint(self, request: HttpRequest) -> bytes:
        if self._checkpoint_path is None:
            raise HttpError(409, "service was started without a checkpoint path")
        await self._write_checkpoint()
        return json_response(
            200,
            {
                "checkpoint": self._checkpoint_path,
                "epochs": list(self._engine.epochs),
                "written": self._checkpoints_written,
            },
            keep_alive=request.keep_alive,
        )

    async def _handle_query(self, request: HttpRequest) -> bytes:
        # Queries touch numpy kernels only -- cheap enough to answer on
        # the event loop; the heavy lifting (ingest) lives in the workers.
        params = request.params
        engine = self._engine
        postprocess = params.get("postprocess")
        if postprocess:
            try:
                engine = engine.with_postprocess(postprocess)
            except (ValueError, ProtocolUsageError) as exc:
                raise HttpError(400, str(exc)) from exc
        try:
            window = parse_window(params.get("window", "all"))
        except (ValueError, ProtocolUsageError) as exc:
            raise HttpError(400, str(exc)) from exc
        try:
            selected = resolve_window(window, engine.epochs)
            estimator = engine.estimator(window)
        except InvalidWindowError as exc:
            raise HttpError(409, str(exc)) from exc
        except ProtocolUsageError as exc:
            raise HttpError(400, str(exc)) from exc
        payload = {
            "method": self._spec.get("name"),
            "epsilon": self._spec.get("epsilon"),
            "window": params.get("window", "all"),
            "epochs": selected,
            "n_users": int(engine.n_reports(window)),
        }
        if postprocess:
            payload["postprocess"] = postprocess
        payload.update(self._answer_queries(estimator, params))
        return json_response(200, payload, keep_alive=request.keep_alive)

    @staticmethod
    def _answer_queries(estimator, params: dict) -> dict:
        # Deferred import: repro.cli defines the one query-string grammar
        # (shared with every CLI surface) and lazily imports this package
        # for its `serve` command, so the import must not be module-level.
        from repro.cli import parse_quantiles, parse_ranges, parse_rectangles

        try:
            if hasattr(estimator, "rectangle_query"):
                if params.get("ranges") or params.get("quantiles"):
                    raise HttpError(
                        400,
                        "a 2-D grid protocol answers rectangles "
                        "(xleft:xright:yleft:yright), not ranges/quantiles",
                    )
                rectangles = parse_rectangles(params.get("rectangles", ""))
                return {
                    "rectangles": {
                        f"{xl}:{xr}:{yl}:{yr}": estimator.rectangle_query(
                            (xl, xr), (yl, yr)
                        )
                        for xl, xr, yl, yr in rectangles
                    }
                }
            if params.get("rectangles"):
                raise HttpError(
                    400, "rectangles require a 2-D grid protocol"
                )
            answers = {
                "ranges": {
                    f"{left}:{right}": estimator.range_query((left, right))
                    for left, right in parse_ranges(params.get("ranges", ""))
                },
                "quantiles": {
                    f"{phi:g}": int(estimator.quantile_query(phi))
                    for phi in parse_quantiles(params.get("quantiles", ""))
                },
            }
            if params.get("frequencies"):
                answers["frequencies"] = [
                    float(value) for value in estimator.estimated_frequencies()
                ]
            return answers
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc


class ServiceThread:
    """Run an :class:`AggregationService` on a background event loop.

    Synchronous harness used by tests, the benchmark and embedding
    applications: the service runs on its own thread's event loop while
    the caller drives it over plain blocking HTTP.

    Use as a context manager::

        with ServiceThread(AggregationService(spec)) as handle:
            requests.post(handle.url + "/ingest", data=batch)  # any client
    """

    def __init__(self, service: AggregationService) -> None:
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return self.service.url

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)

            async def boot() -> None:
                try:
                    await self.service.start()
                except Exception as exc:  # pragma: no cover - boot failure
                    failure.append(exc)
                finally:
                    ready.set()

            self._loop.create_task(boot())
            self._loop.run_forever()
            # Drain cancelled tasks so the loop closes cleanly.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        ready.wait()
        if failure:
            self.stop(flush=False)
            raise failure[0]
        return self

    def stop(self, flush: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(flush=flush), self._loop
            )
            future.result(timeout=60)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(flush=exc_type is None)


def request_json(url: str, method: str = "GET", body: Optional[bytes] = None) -> dict:
    """One blocking JSON round trip against a gateway (stdlib only).

    Convenience for scripts and tests; raises ``RuntimeError`` on any
    non-200 status with the server's error message.
    """
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=60
    )
    try:
        connection.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/octet-stream"} if body else {},
        )
        response = connection.getresponse()
        payload = response.read()
        document = json.loads(payload.decode("utf-8"))
        if response.status != 200:
            raise RuntimeError(
                f"{method} {path} -> {response.status}: "
                f"{document.get('error', payload[:200])}"
            )
        return document
    finally:
        connection.close()
