"""The network-facing aggregation service: async gateway + shard workers.

The paper's aggregator is an abstract entity collecting privatized
reports from millions of users.  :class:`AggregationService` is that
entity made concrete: a single asyncio HTTP gateway that accepts framed
report batches, fans them out to per-shard worker processes
(:mod:`repro.service.workers`), merges the shard accumulators into the
epoch-aware :class:`~repro.engine.Engine` on epoch close, and answers
windowed queries -- with durability via the engine's v2 checkpoint
envelope.

Endpoints (all JSON except the ingest body):

=======================  =====================================================
``GET  /healthz``        liveness: 200 while the gateway and every worker run
``GET  /spec``           the protocol registry spec clients must encode for
``GET  /stats``          epochs, report counts, per-worker stats, checkpoints
``POST /ingest``         body = one framed report batch
                         (:func:`repro.core.serialization.pack_report_batch`);
                         the gateway validates the header and forwards the
                         frames to one shard worker without decoding arrays
``POST /close``          close the current epoch: drain every worker, merge
                         the shard states into the engine (exact, order
                         independent), checkpoint every K-th close
``POST /checkpoint``     force a checkpoint now
``GET  /query``          windowed estimates; parameters ``window``
                         (``all`` | ``last:K`` | ``0,2,5``), ``ranges``,
                         ``quantiles``, ``rectangles``, ``frequencies=1``,
                         and optional ``postprocess=`` re-finalization
=======================  =====================================================

Correctness invariant: sharded service ingestion is *bit-identical* to
single-process ingestion of the same report stream.  Workers accumulate
integer sufficient statistics and epoch close merges them exactly
(associative + commutative), so the number of workers, the round-robin
interleaving and the merge order are all unobservable in query answers.

Durability: if ``checkpoint_path`` is set, every ``checkpoint_every``-th
epoch close rewrites the checkpoint (atomic rename, v2 envelope), and a
graceful :meth:`AggregationService.stop` flushes the in-progress epoch
and checkpoints before the workers exit.  Restarting on the same path
resumes with every checkpointed epoch intact.

Out-of-core mode (``store_dir``): the engine is backed by an
:class:`~repro.engine.store.EpochStore` instead of (or in addition to)
one monolithic checkpoint file.  Every epoch close *seals* the finished
epoch -- its accumulator is written once to its own CRC-framed segment
file and evicted from RAM -- so the gateway's memory stays O(current
epoch) no matter how many epochs it has served, and the
``checkpoint_every``-cadence checkpoint is incremental (dirty segments
plus a manifest rewrite, never the whole history).  Windowed ``/query``
answers over sealed epochs run via the store's pushdown path and remain
bit-identical to the all-in-RAM engine.  Restarting with the same
``store_dir`` resumes from the manifest, mapping segments lazily.

Fault tolerance (``wal_dir`` + supervision):

* every accepted ingest batch is appended to a per-epoch write-ahead
  log (:mod:`repro.service.wal`) *before* the 200 goes out, keyed by a
  client-supplied ``Idempotency-Key`` header (duplicates are dropped,
  so at-least-once clients get exactly-once ingestion);
* a supervisor task respawns crashed shard workers under bounded
  exponential backoff and re-ingests their WAL'd batches into the
  replacement -- a worker crash costs availability of one shard for a
  moment, never a single report;
* on restart, sealed-but-uncheckpointed epochs are rebuilt from their
  WAL segments and the open epoch's batches are replayed into fresh
  workers, so a SIGKILL between ``/ingest`` ack and ``/close`` loses
  nothing: recovered query answers are bit-identical to a no-fault run;
* bounded per-worker in-flight queues surface ``429 Retry-After`` when
  the pool is saturated, and slow/stuck clients are disconnected by a
  request read timeout.

Without a WAL the service still survives worker crashes (supervision
respawns them and ingest is re-routed), but the dead shard's
un-closed reports are lost -- durability needs the log.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from typing import Dict, List, Optional, Union

from repro.core.exceptions import InvalidWindowError, ProtocolUsageError
from repro.core.kernels.hash_cache import hash_cache_stats
from repro.core.serialization import (
    MAGIC_BATCH,
    SerializationError,
    report_batch_header,
)
from repro.core.session import AccumulatorState
from repro.engine import Engine, parse_window, resolve_window
from repro.service.http import (
    DEFAULT_MAX_BODY,
    MAX_HEADER_BYTES,
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
)
from repro.service.wal import IngestWAL, SegmentScan
from repro.service.workers import (
    NoAliveWorkersError,
    PoolSaturatedError,
    WorkerCrashError,
    WorkerPool,
    ingest_batches_single_process,
)


def _spec_sans_postprocess(spec: Optional[dict]) -> Optional[dict]:
    """Spec identity for ingest compatibility.

    Assembly-time keys (``postprocess`` and the ``consistency`` flag it
    derives) never touch sufficient statistics, so batches encoded under
    different settings of them are exchangeable.
    """
    if not isinstance(spec, dict):
        return spec
    return {
        key: value
        for key, value in spec.items()
        if key not in ("postprocess", "consistency")
    }


class AggregationService:
    """One protocol configuration served over HTTP with sharded ingest.

    ``engine`` is an :class:`~repro.engine.Engine` (possibly restored
    from a checkpoint), a protocol object, or a spec dict.  The service
    owns the engine's epoch lifecycle: reports accumulate in the worker
    shards of the *current* epoch, ``POST /close`` folds them into the
    engine, and queries see every closed epoch.
    """

    def __init__(
        self,
        engine: Union[Engine, dict, object],
        *,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 1,
        store_dir: Optional[str] = None,
        max_body: int = DEFAULT_MAX_BODY,
        start_method: str = "spawn",
        wal_dir: Optional[str] = None,
        wal_sync: bool = False,
        max_inflight: int = 64,
        request_timeout: Optional[float] = 30.0,
        supervise_interval: Optional[float] = 0.25,
        restart_backoff_s: float = 0.1,
        restart_backoff_max_s: float = 5.0,
    ) -> None:
        if not isinstance(engine, Engine):
            engine = Engine.open(engine)
        if store_dir is not None and engine.store is None:
            engine.attach_store(store_dir)
        if int(checkpoint_every) < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self._engine = engine
        self._store_backed = engine.store is not None
        self._spec = engine.spec()
        self._host = host
        self._requested_port = int(port)
        self._checkpoint_path = checkpoint_path
        self._checkpoint_every = int(checkpoint_every)
        self._max_body = int(max_body)
        self._pool = WorkerPool(
            self._spec,
            num_workers=num_workers,
            start_method=start_method,
            max_inflight=max_inflight,
            restart_backoff_s=restart_backoff_s,
            restart_backoff_max_s=restart_backoff_max_s,
        )
        self._wal = IngestWAL(wal_dir, sync=wal_sync) if wal_dir else None
        self._wal_lock = asyncio.Lock()
        self._request_timeout = (
            float(request_timeout) if request_timeout else None
        )
        self._supervise_interval = (
            float(supervise_interval) if supervise_interval else None
        )
        self._supervisor: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._close_lock = asyncio.Lock()
        # Makes a deferred batch's {shard assignment + WAL append} atomic
        # with respect to the supervisor's {respawn + replay}: without it
        # a replay could scan the log between the two and miss a record
        # assigned to the worker it just revived.
        self._repair_lock = asyncio.Lock()
        # Epoch barrier: /close waits for in-flight ingests to land and
        # holds back new ones, so a batch's WAL epoch always matches the
        # epoch its reports are counted in.
        self._closing = False
        self._ingest_inflight = 0
        self._ingest_idle = asyncio.Event()
        self._close_done = asyncio.Event()
        self._close_done.set()
        # Idempotency keys seen in the current and previous epoch.
        self._seen_keys: Dict[str, int] = {}
        self._auto_keys = itertools.count()
        epochs = engine.epochs
        self._current_epoch = (max(epochs) + 1) if epochs else 0
        self._started_at = time.monotonic()
        self._batches_accepted = 0
        self._reports_accepted = 0
        self._duplicates_dropped = 0
        self._rejected_busy = 0
        self._deferred_batches = 0
        self._replayed_batches = 0
        self._timed_out_connections = 0
        self._wal_recovery_ms = 0.0
        self._checkpoints_written = 0
        self._closes_since_checkpoint = 0
        self._stopping = False

    # ------------------------------------------------------------------ #
    # construction / lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def from_checkpoint(cls, path: str, **options) -> "AggregationService":
        """A service resuming from an engine checkpoint file.

        Every checkpointed epoch is restored; ingestion continues on the
        next fresh epoch key, so a crash-restart never rewrites history.
        """
        return cls(Engine.restore(path), checkpoint_path=path, **options)

    @classmethod
    def from_store(cls, store_dir: str, **options) -> "AggregationService":
        """A service resuming from an out-of-core epoch store directory.

        The manifest is read eagerly but every sealed epoch stays on
        disk, mapped lazily on first query -- restart cost and RSS are
        independent of how many epochs the store holds.
        """
        return cls(Engine.open(None, store_dir=store_dir), **options)

    @property
    def engine(self) -> Engine:
        """The underlying epoch-aware engine (closed epochs only)."""
        return self._engine

    @property
    def spec(self) -> dict:
        return dict(self._spec)

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("service is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def current_epoch(self) -> int:
        """The epoch key in-flight reports belong to."""
        return self._current_epoch

    @property
    def wal(self) -> Optional[IngestWAL]:
        """The durable ingest log (``None`` when started without one)."""
        return self._wal

    @property
    def pool(self) -> WorkerPool:
        """The shard worker pool (exposed for fault injection and tests)."""
        return self._pool

    @property
    def restart_count(self) -> int:
        return self._pool.restart_count

    async def start(self) -> "AggregationService":
        """Spawn the shard workers, recover the WAL, start accepting."""
        self._pool.start()
        if self._wal is not None:
            recovery_started = time.perf_counter()
            await self._recover_from_wal()
            self._wal_recovery_ms = (
                time.perf_counter() - recovery_started
            ) * 1e3
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self._supervise_interval:
            self._supervisor = asyncio.create_task(self._supervise())
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, flush: bool = True) -> None:
        """Stop the service.

        ``flush=True`` is the graceful path: stop accepting connections,
        close the in-progress epoch (so no accepted report is lost),
        write a final checkpoint, and let the workers exit cleanly.
        ``flush=False`` simulates a crash: the current epoch's
        un-checkpointed shards are dropped on the floor (recoverable
        from the WAL, when one is configured).
        """
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._supervisor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if flush:
            await self._close_epoch()
            if self._checkpoint_path is not None or self._store_backed:
                await self._write_checkpoint()
            await self._pool.shutdown(graceful=True)
        else:
            await self._pool.shutdown(graceful=False)
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------ #
    # fault tolerance: WAL recovery + worker supervision
    # ------------------------------------------------------------------ #
    def _rebuild_segment_state(self, segment: SegmentScan):
        """Single-process re-ingestion of one WAL segment (exact)."""
        seen = set()
        blobs = []
        for meta, blob in segment.records:
            key = meta.get("key")
            if key in seen:
                continue
            seen.add(key)
            blobs.append(blob)
        return ingest_batches_single_process(self._spec, blobs)

    async def _recover_from_wal(self) -> None:
        """Replay surviving WAL segments after a restart.

        Sealed segments whose epoch a checkpoint already covers are
        discarded; sealed segments the crash orphaned (closed into the
        engine but never checkpointed) are rebuilt by single-process
        re-ingestion -- bit-identical to the sharded original.  The open
        segment, if any, is the epoch that was in flight when the
        process died: its batches are replayed into the fresh workers
        and the segment keeps accepting appends.
        """
        scan = self._wal.scan()
        loop = asyncio.get_running_loop()
        known = set(self._engine.epochs)
        open_segments = sorted(scan.open, key=lambda segment: segment.epoch)
        # Any open segment that is not the newest belongs to an epoch a
        # later epoch superseded mid-crash; rebuild it like a sealed one.
        to_rebuild = scan.sealed + open_segments[:-1]
        for segment in sorted(to_rebuild, key=lambda segment: segment.epoch):
            if segment.epoch in known:
                self._wal.discard(segment.epoch)
                continue
            if not segment.records:
                self._wal.discard(segment.epoch)
                continue
            server = await loop.run_in_executor(
                None, self._rebuild_segment_state, segment
            )
            if server.n_reports > 0:
                server.state.meta.clear()
                self._engine.absorb_shard(server.state, epoch=segment.epoch)
                known.add(segment.epoch)
            self._wal.seal(segment.epoch)
        if known:
            self._current_epoch = max(known) + 1
        if open_segments:
            live = open_segments[-1]
            self._current_epoch = live.epoch
            seen = set()
            buckets: Dict[int, List[bytes]] = {}
            for meta, blob in live.records:
                key = str(meta.get("key"))
                if key in seen:
                    continue
                seen.add(key)
                self._seen_keys[key] = live.epoch
                index = int(meta.get("worker", 0)) % len(self._pool)
                buckets.setdefault(index, []).append(blob)
                self._batches_accepted += 1
                self._reports_accepted += int(meta.get("n_users", 0))
            counts = await asyncio.gather(
                *(
                    self._replay_into(index, blobs)
                    for index, blobs in buckets.items()
                )
            )
            self._replayed_batches += sum(counts)

    async def _replay_into(self, index: int, blobs: List[bytes]) -> int:
        """Sequentially re-ingest one shard's batches; stop on a crash.

        A record that cannot be delivered (the shard -- or its fresh
        replacement -- died) stays in the log; the next repair pass
        respawns the shard and runs the full replay again.  Shards
        replay concurrently with each other: each worker's decode loop
        is the bottleneck, so per-shard fan-out cuts recovery time by
        roughly the worker count.
        """
        replayed = 0
        for blob in blobs:
            try:
                await self._pool.ingest_on(index, blob)
            except WorkerCrashError:
                break
            replayed += 1
        return replayed

    async def _replay_for_workers(self, indices: List[int], epoch: int) -> int:
        """Re-ingest the current epoch's WAL batches owned by ``indices``.

        Called after respawning dead workers: the replacements start
        empty, and every batch the dead shard ever accepted this epoch
        is in the log.  Without a WAL this is a no-op (the shard's
        reports are lost, availability is all supervision can save).
        """
        if self._wal is None or not indices:
            return 0
        wanted = {int(index) % len(self._pool) for index in indices}
        loop = asyncio.get_running_loop()
        records = await loop.run_in_executor(None, self._wal.read_epoch, epoch)
        buckets: Dict[int, List[bytes]] = {}
        for meta, blob in records:
            index = int(meta.get("worker", 0)) % len(self._pool)
            if index in wanted:
                buckets.setdefault(index, []).append(blob)
        counts = await asyncio.gather(
            *(self._replay_into(index, blobs) for index, blobs in buckets.items())
        )
        replayed = sum(counts)
        self._replayed_batches += replayed
        return replayed

    async def _supervise(self) -> None:
        """Detect dead workers, respawn them, replay their batches.

        Runs forever on ``supervise_interval``; holds the close lock so
        a replay never interleaves with an epoch drain (which would
        mis-attribute the replayed reports to the next epoch).
        """
        while not self._stopping:
            await asyncio.sleep(self._supervise_interval)
            try:
                if self._pool.alive_count == len(self._pool):
                    continue
                async with self._close_lock:
                    async with self._repair_lock:
                        respawned = await self._pool.ensure_alive()
                        await self._replay_for_workers(
                            respawned, self._current_epoch
                        )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - supervision must outlive any
                # transient repair failure; the next tick tries again.
                continue

    # ------------------------------------------------------------------ #
    # epoch lifecycle
    # ------------------------------------------------------------------ #
    async def _write_checkpoint(self) -> None:
        loop = asyncio.get_running_loop()
        if self._checkpoint_path is not None:
            await loop.run_in_executor(
                None, self._engine.checkpoint, self._checkpoint_path
            )
        if self._store_backed:
            # Incremental: only dirty live epochs hit the disk; clean
            # sealed segments are untouched and the manifest lands last.
            await loop.run_in_executor(None, self._engine.checkpoint)
        self._checkpoints_written += 1
        self._closes_since_checkpoint = 0

    async def _drain_workers(self, epoch: int) -> Dict[int, bytes]:
        """Drain every shard for ``epoch``, repairing crashes as needed.

        A worker that dies mid-drain is respawned, its WAL'd batches are
        replayed into the replacement, and only then is the shard drained
        again -- so the merged epoch holds exactly the accepted batches
        even when shards crash during the close itself.
        """
        pending = set(range(len(self._pool)))
        states: Dict[int, bytes] = {}
        for _attempt in range(4):
            respawned = await self._pool.ensure_alive(force=True)
            await self._replay_for_workers(
                [index for index in respawned if index in pending], epoch
            )
            drained, failures = await self._pool.close_workers(sorted(pending))
            states.update(drained)
            pending -= set(drained)
            if not pending:
                return states
            if self._wal is None:
                # No log to replay from: the dead shards' reports are
                # gone; deliver what survived rather than spin forever.
                await self._pool.ensure_alive(force=True)
                return states
        raise HttpError(
            503,
            f"could not drain shard(s) {sorted(pending)} after repeated "
            "worker respawns",
        )

    async def _close_epoch(self) -> dict:
        """Drain every worker and merge the shard states into the engine.

        Holds the epoch barrier (in-flight ingests land first, new ones
        wait) so the WAL segment and the merged epoch agree on exactly
        which batches belong to it; merging runs under the engine's lock
        via :meth:`~repro.engine.Engine.absorb_shard`; empty shards are
        skipped so a traffic-free close never creates an unfinalizable
        zero-report epoch.
        """
        async with self._close_lock:
            self._closing = True
            self._close_done.clear()
            try:
                if self._ingest_inflight > 0:
                    self._ingest_idle.clear()
                    await self._ingest_idle.wait()
                epoch = self._current_epoch
                shard_states = await self._drain_workers(epoch)
                total = 0
                for index in sorted(shard_states):
                    state = AccumulatorState.from_bytes(shard_states[index])
                    if state.n_reports <= 0:
                        continue
                    # Worker states carry no epoch stamp; absorb_shard merges
                    # them (exactly) into the closing epoch under the lock.
                    state.meta.clear()
                    self._engine.absorb_shard(state, epoch=epoch)
                    total += state.n_reports
                if total == 0:
                    return {"closed": False, "reports": 0, "epoch": None}
                self._current_epoch = epoch + 1
                if self._store_backed:
                    # Seal the finished epoch: one segment write + manifest
                    # fsync makes it durable, and eviction keeps the
                    # gateway's RSS independent of the epoch count.
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(
                        None, self._engine.seal_epoch, epoch
                    )
                self._pool.note_epoch_closed()
                # Keys from two epochs ago can no longer race a retry.
                self._seen_keys = {
                    key: seen_epoch
                    for key, seen_epoch in self._seen_keys.items()
                    if seen_epoch >= epoch
                }
                if self._wal is not None:
                    self._wal.seal(epoch)
                self._closes_since_checkpoint += 1
                checkpointed = False
                if (
                    self._checkpoint_path is not None or self._store_backed
                ) and self._closes_since_checkpoint >= self._checkpoint_every:
                    await self._write_checkpoint()
                    checkpointed = True
                elif self._store_backed:
                    # The seal above already made this epoch durable.
                    checkpointed = True
                if checkpointed and self._wal is not None:
                    self._wal.discard_checkpointed(self._engine.epochs)
                return {
                    "closed": True,
                    "epoch": epoch,
                    "reports": total,
                    "checkpointed": checkpointed,
                    "epochs": list(self._engine.epochs),
                }
            finally:
                self._closing = False
                self._close_done.set()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, max_body=self._max_body),
                        timeout=self._request_timeout,
                    )
                except asyncio.TimeoutError:
                    # A stuck or idle-beyond-budget client: free the
                    # connection instead of holding the slot forever.
                    self._timed_out_connections += 1
                    writer.write(
                        error_response(
                            408,
                            f"request not received within "
                            f"{self._request_timeout:g}s",
                        )
                    )
                    await writer.drain()
                    break
                except HttpError as exc:
                    writer.write(error_response(exc.status, exc.message))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await self._dispatch(request)
                except HttpError as exc:
                    response = error_response(
                        exc.status,
                        exc.message,
                        keep_alive=request.keep_alive,
                        extra_headers=exc.headers,
                    )
                except Exception as exc:  # noqa: BLE001 - boundary: a handler
                    # bug must produce a 500, never kill the connection loop.
                    response = error_response(500, f"{type(exc).__name__}: {exc}")
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return await self._handle_healthz(request)
        if route == ("GET", "/spec"):
            return json_response(200, self._spec, keep_alive=request.keep_alive)
        if route == ("GET", "/stats"):
            return await self._handle_stats(request)
        if route == ("POST", "/ingest"):
            return await self._handle_ingest(request)
        if route == ("POST", "/close"):
            return await self._handle_close(request)
        if route == ("POST", "/checkpoint"):
            return await self._handle_checkpoint(request)
        if route == ("GET", "/query"):
            return await self._handle_query(request)
        known_paths = {
            "/healthz", "/spec", "/stats", "/ingest", "/close",
            "/checkpoint", "/query",
        }
        if request.path in known_paths:
            raise HttpError(405, f"{request.method} is not allowed on {request.path}")
        raise HttpError(404, f"unknown endpoint {request.path}")

    async def _handle_healthz(self, request: HttpRequest) -> bytes:
        alive = self._pool.alive_count
        configured = len(self._pool)
        if self._stopping:
            status, code = "stopping", 503
        elif alive == configured:
            status, code = "ok", 200
        elif alive > 0 or self._wal is not None:
            # Some shards are respawning, but ingest still lands (alive
            # workers take it; with a WAL even an all-dead window is
            # only a deferral) -- degraded, not down.
            status, code = "degraded", 200
        else:
            status, code = "down", 503
        payload = {
            "status": status,
            "workers": {
                "alive": alive,
                "configured": configured,
                "restarts": self._pool.restart_count,
            },
            "wal": self._wal is not None,
        }
        return json_response(code, payload, keep_alive=request.keep_alive)

    async def _handle_stats(self, request: HttpRequest) -> bytes:
        worker_stats = await self._pool.stats()
        engine = self._engine
        epochs = list(engine.epochs)
        payload = {
            "uptime_s": time.monotonic() - self._started_at,
            "method": self._spec.get("name"),
            "current_epoch": self._current_epoch,
            "epochs": epochs,
            # Manifest-backed counts: never materializes a sealed epoch.
            "epoch_reports": {
                str(epoch): count
                for epoch, count in engine.epoch_report_counts().items()
            },
            "closed_reports": engine.n_reports() if epochs else 0,
            "pending_reports": sum(
                stat.get("epoch_reports", 0) for stat in worker_stats
            ),
            "accepted": {
                "batches": self._batches_accepted,
                "reports": self._reports_accepted,
                "duplicates_dropped": self._duplicates_dropped,
                "rejected_busy": self._rejected_busy,
                "deferred_batches": self._deferred_batches,
            },
            "workers": worker_stats,
            "restart_count": self._pool.restart_count,
            "replayed_batches": self._replayed_batches,
            "timed_out_connections": self._timed_out_connections,
            "wal": (
                {**self._wal.stats(), "recovery_ms": self._wal_recovery_ms}
                if self._wal is not None
                else None
            ),
            "checkpoint": {
                "path": self._checkpoint_path,
                "every": self._checkpoint_every,
                "written": self._checkpoints_written,
            },
            "store": (
                {
                    "dir": engine.store.directory,
                    "sealed_epochs": list(engine.sealed_epochs),
                    "live_epochs": list(engine.live_epochs),
                    "on_disk_bytes": engine.store.total_bytes(),
                    # Windowed-query fast path: the materialized aggregate
                    # hierarchy plus the gateway-process OLH decode cache
                    # (worker processes report their own under "workers").
                    "aggregates": engine.store.aggregate_stats(),
                    "hash_cache": hash_cache_stats(),
                }
                if engine.store is not None
                else None
            ),
        }
        return json_response(200, payload, keep_alive=request.keep_alive)

    async def _handle_ingest(self, request: HttpRequest) -> bytes:
        blob = request.body
        if not blob:
            raise HttpError(411, "ingest needs a framed report batch as its body")
        if not blob.startswith(MAGIC_BATCH):
            raise HttpError(
                400,
                f"body is not a framed report batch (expected magic {MAGIC_BATCH!r})",
            )
        try:
            header = report_batch_header(blob)
        except SerializationError as exc:
            raise HttpError(400, str(exc)) from exc
        batch_spec = header.get("protocol")
        if batch_spec is not None and _spec_sans_postprocess(
            batch_spec
        ) != _spec_sans_postprocess(self._spec):
            raise HttpError(
                409,
                "batch was encoded for a different protocol configuration: "
                f"{batch_spec} != {self._spec}",
            )
        count = header.get("count", 0)
        n_users = int(header.get("n_users", 0))
        if count == 0 or n_users == 0:
            return json_response(
                200,
                {"queued": 0, "epoch": self._current_epoch},
                keep_alive=request.keep_alive,
            )

        # Epoch barrier: wait out an in-progress close, then reserve our
        # slot synchronously (no awaits between the checks below) so the
        # epoch we stamp is the epoch our reports are merged into.
        while self._closing:
            await self._close_done.wait()
        key = request.headers.get("idempotency-key")
        if key is None:
            key = f"auto:{next(self._auto_keys)}"
        elif key in self._seen_keys:
            # An at-least-once client retried a batch we already own
            # (possibly acknowledged into the just-closed epoch).
            self._duplicates_dropped += 1
            return json_response(
                200,
                {
                    "queued": 0,
                    "duplicate": True,
                    "key": key,
                    "epoch": self._seen_keys[key],
                },
                keep_alive=request.keep_alive,
            )
        epoch = self._current_epoch
        self._seen_keys[key] = epoch
        self._ingest_inflight += 1
        try:
            deferred = False
            try:
                worker = self._pool.pick_worker()
            except PoolSaturatedError as exc:
                del self._seen_keys[key]
                self._rejected_busy += 1
                raise HttpError(
                    429,
                    f"ingest queue saturated ({self._pool.max_inflight} "
                    "in-flight batches per worker); retry shortly",
                    headers={"Retry-After": "0.1"},
                ) from exc
            except NoAliveWorkersError as exc:
                if self._wal is None:
                    del self._seen_keys[key]
                    raise HttpError(
                        503, f"shard workers unavailable: {exc}"
                    ) from exc
                # With a WAL the batch is durable the moment it is
                # logged; the supervisor's respawn replay delivers it.
                worker = -1
                deferred = True
            try:
                if deferred:
                    # Under the repair lock a respawn replay cannot scan
                    # the log between the shard assignment and the append
                    # landing (it would miss this record and nothing
                    # would ever deliver it).  Re-check the pool first: a
                    # shard that just came back takes the batch directly.
                    async with self._repair_lock:
                        try:
                            worker = self._pool.pick_worker()
                            deferred = False
                        except PoolSaturatedError:
                            # Workers revived mid-request but are full;
                            # the inflight bound is advisory backpressure
                            # -- deliver anyway rather than strand the
                            # batch behind a dead shard.
                            worker = next(
                                w.index for w in self._pool.workers if w.alive
                            )
                            deferred = False
                        except NoAliveWorkersError:
                            worker = self._batches_accepted % len(self._pool)
                        await self._append_wal(epoch, blob, key, worker, n_users)
                else:
                    await self._append_wal(epoch, blob, key, worker, n_users)
            except OSError as exc:
                del self._seen_keys[key]
                raise HttpError(503, f"ingest log write failed: {exc}") from exc
            if not deferred:
                try:
                    await self._pool.ingest_on(worker, blob)
                except WorkerCrashError as exc:
                    if self._wal is not None:
                        # Logged before the crash: the respawn replay
                        # re-ingests it, so the ack stands.
                        deferred = True
                    else:
                        delivered = await self._reroute(blob)
                        if delivered is None:
                            del self._seen_keys[key]
                            raise HttpError(
                                503, f"shard worker crashed mid-ingest: {exc}"
                            ) from exc
                        worker = delivered
            if deferred:
                self._deferred_batches += 1
            self._batches_accepted += 1
            self._reports_accepted += n_users
            return json_response(
                200,
                {
                    "queued": n_users,
                    "epoch": epoch,
                    "worker": worker,
                    "key": key,
                    "deferred": deferred,
                },
                keep_alive=request.keep_alive,
            )
        finally:
            self._ingest_inflight -= 1
            if self._ingest_inflight == 0:
                self._ingest_idle.set()

    async def _append_wal(
        self, epoch: int, blob: bytes, key: str, worker: int, n_users: int
    ) -> None:
        if self._wal is None:
            return
        if self._wal.sync:
            # fsync can block for milliseconds: keep it off the loop,
            # serialized so records never interleave mid-write.
            loop = asyncio.get_running_loop()
            async with self._wal_lock:
                await loop.run_in_executor(
                    None,
                    lambda: self._wal.append(
                        epoch, blob, key=key, worker=worker, n_users=n_users
                    ),
                )
        else:
            # A buffered write + flush is page-cache fast; doing it
            # inline keeps record order identical to ack order.
            self._wal.append(epoch, blob, key=key, worker=worker, n_users=n_users)

    async def _reroute(self, blob: bytes) -> Optional[int]:
        """Best-effort re-send after a mid-ingest crash (no WAL only)."""
        for _ in range(len(self._pool)):
            try:
                index = self._pool.pick_worker()
                await self._pool.ingest_on(index, blob)
                return index
            except (NoAliveWorkersError, PoolSaturatedError, WorkerCrashError):
                continue
        return None

    async def _handle_close(self, request: HttpRequest) -> bytes:
        result = await self._close_epoch()
        return json_response(200, result, keep_alive=request.keep_alive)

    async def _handle_checkpoint(self, request: HttpRequest) -> bytes:
        if self._checkpoint_path is None and not self._store_backed:
            raise HttpError(
                409, "service was started without a checkpoint path or store"
            )
        await self._write_checkpoint()
        store = self._engine.store
        return json_response(
            200,
            {
                "checkpoint": self._checkpoint_path,
                "store_dir": store.directory if store is not None else None,
                "epochs": list(self._engine.epochs),
                "written": self._checkpoints_written,
            },
            keep_alive=request.keep_alive,
        )

    async def _handle_query(self, request: HttpRequest) -> bytes:
        # The windowed merge + finalize runs in the executor, off the
        # event loop: wide windows gather mmap'd segment vectors through
        # the blocked column_sums kernel (nogil under the numba backend),
        # so query pushdown overlaps ingest instead of stalling it.
        params = request.params
        engine = self._engine
        postprocess = params.get("postprocess")
        if postprocess:
            try:
                engine = engine.with_postprocess(postprocess)
            except (ValueError, ProtocolUsageError) as exc:
                raise HttpError(400, str(exc)) from exc
        try:
            window = parse_window(params.get("window", "all"))
        except (ValueError, ProtocolUsageError) as exc:
            raise HttpError(400, str(exc)) from exc

        def _finalize_window():
            selected = resolve_window(window, engine.epochs)
            estimator = engine.estimator(window)
            return selected, estimator, int(engine.n_reports(window))

        loop = asyncio.get_running_loop()
        try:
            selected, estimator, n_users = await loop.run_in_executor(
                None, _finalize_window
            )
        except InvalidWindowError as exc:
            raise HttpError(409, str(exc)) from exc
        except ProtocolUsageError as exc:
            raise HttpError(400, str(exc)) from exc
        payload = {
            "method": self._spec.get("name"),
            "epsilon": self._spec.get("epsilon"),
            "window": params.get("window", "all"),
            "epochs": selected,
            "n_users": n_users,
        }
        if postprocess:
            payload["postprocess"] = postprocess
        payload.update(self._answer_queries(estimator, params))
        return json_response(200, payload, keep_alive=request.keep_alive)

    @staticmethod
    def _answer_queries(estimator, params: dict) -> dict:
        # Deferred import: repro.cli defines the one query-string grammar
        # (shared with every CLI surface) and lazily imports this package
        # for its `serve` command, so the import must not be module-level.
        from repro.cli import parse_quantiles, parse_ranges, parse_rectangles

        try:
            if hasattr(estimator, "rectangle_query"):
                if params.get("ranges") or params.get("quantiles"):
                    raise HttpError(
                        400,
                        "a 2-D grid protocol answers rectangles "
                        "(xleft:xright:yleft:yright), not ranges/quantiles",
                    )
                rectangles = parse_rectangles(params.get("rectangles", ""))
                return {
                    "rectangles": {
                        f"{xl}:{xr}:{yl}:{yr}": estimator.rectangle_query(
                            (xl, xr), (yl, yr)
                        )
                        for xl, xr, yl, yr in rectangles
                    }
                }
            if params.get("rectangles"):
                raise HttpError(
                    400, "rectangles require a 2-D grid protocol"
                )
            answers = {
                "ranges": {
                    f"{left}:{right}": estimator.range_query((left, right))
                    for left, right in parse_ranges(params.get("ranges", ""))
                },
                "quantiles": {
                    f"{phi:g}": int(estimator.quantile_query(phi))
                    for phi in parse_quantiles(params.get("quantiles", ""))
                },
            }
            if params.get("frequencies"):
                answers["frequencies"] = [
                    float(value) for value in estimator.estimated_frequencies()
                ]
            return answers
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc


class ServiceThread:
    """Run an :class:`AggregationService` on a background event loop.

    Synchronous harness used by tests, the benchmark and embedding
    applications: the service runs on its own thread's event loop while
    the caller drives it over plain blocking HTTP.

    Use as a context manager::

        with ServiceThread(AggregationService(spec)) as handle:
            requests.post(handle.url + "/ingest", data=batch)  # any client
    """

    def __init__(self, service: AggregationService) -> None:
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return self.service.url

    @property
    def port(self) -> int:
        return self.service.port

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        failure: list = []

        def run() -> None:
            asyncio.set_event_loop(self._loop)

            async def boot() -> None:
                try:
                    await self.service.start()
                except Exception as exc:  # pragma: no cover - boot failure
                    failure.append(exc)
                finally:
                    ready.set()

            self._loop.create_task(boot())
            self._loop.run_forever()
            # Drain cancelled tasks so the loop closes cleanly.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        ready.wait()
        if failure:
            self.stop(flush=False)
            raise failure[0]
        return self

    def stop(self, flush: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.service.stop(flush=flush), self._loop
            )
            future.result(timeout=60)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(flush=exc_type is None)


#: HTTP statuses that signal "try again shortly", not "you are wrong".
RETRYABLE_STATUSES = (429, 503)


def retry_delay_s(
    attempt: int,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    retry_after: Optional[str] = None,
) -> float:
    """Jittered exponential backoff, honoring a server ``Retry-After``.

    Shared by :func:`request_json` and the load generator so every
    client in the repository backs off the same way: the server's hint
    is a floor, the exponential schedule a ceiling-capped escalation,
    and the jitter keeps a fleet of retrying clients from stampeding in
    lockstep.
    """
    import random

    delay = min(cap_s, base_s * (2 ** max(0, attempt)))
    if retry_after:
        try:
            delay = max(delay, float(retry_after))
        except ValueError:
            pass
    return delay * (0.5 + random.random())


def request_json(
    url: str,
    method: str = "GET",
    body: Optional[bytes] = None,
    *,
    max_retries: int = 2,
    headers: Optional[dict] = None,
    timeout: float = 60.0,
) -> dict:
    """One blocking JSON round trip against a gateway (stdlib only).

    Convenience for scripts and tests; raises ``RuntimeError`` on any
    non-200 status with the server's error message.  Transport failures
    (connection reset, refused, incomplete read) and retryable statuses
    (429/503, honoring ``Retry-After``) are retried up to
    ``max_retries`` times with jittered exponential backoff -- pass an
    ``Idempotency-Key`` header when retrying ``/ingest`` so a retry of
    an already-accepted batch is deduplicated, not double-counted.
    """
    import http.client
    import time as _time
    from urllib.parse import urlsplit

    parts = urlsplit(url)
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    request_headers = dict(headers or {})
    if body and "Content-Type" not in request_headers:
        request_headers["Content-Type"] = "application/octet-stream"

    last_error: Optional[str] = None
    for attempt in range(int(max_retries) + 1):
        connection = http.client.HTTPConnection(
            parts.hostname, parts.port or 80, timeout=timeout
        )
        try:
            try:
                connection.request(method, path, body=body, headers=request_headers)
                response = connection.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt < max_retries:
                    _time.sleep(retry_delay_s(attempt))
                    continue
                raise RuntimeError(
                    f"{method} {path} failed after {attempt + 1} attempts: "
                    f"{last_error}"
                ) from exc
            document = json.loads(payload.decode("utf-8"))
            if response.status in RETRYABLE_STATUSES and attempt < max_retries:
                _time.sleep(
                    retry_delay_s(
                        attempt, retry_after=response.getheader("Retry-After")
                    )
                )
                continue
            if response.status != 200:
                raise RuntimeError(
                    f"{method} {path} -> {response.status}: "
                    f"{document.get('error', payload[:200])}"
                )
            return document
        finally:
            connection.close()
    raise RuntimeError(
        f"{method} {path} failed after {max_retries + 1} attempts: {last_error}"
    )  # pragma: no cover - loop always returns or raises above
