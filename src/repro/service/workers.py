"""Multi-process shard workers: the ingest hot loop of the service.

The gateway (:mod:`repro.service.gateway`) is a single asyncio process --
great at juggling thousands of connections, terrible at burning CPU on
report decoding and accumulation.  This module moves that hot loop onto
``N`` worker *processes*, one shard each, connected over
``multiprocessing`` pipes:

* the gateway forwards each framed report batch (still bytes -- it never
  decodes an array) to one worker, round-robin;
* every worker decodes the batch and folds it into its own
  :class:`~repro.core.session.ProtocolServer` accumulator;
* on epoch close each worker hands back its packed accumulator state and
  resets.  Because accumulator merge is exactly associative and
  commutative (integer sufficient statistics), merging the shard states
  in *any* order reproduces single-process ingestion of the same reports
  bit-for-bit -- sharding is a pure throughput play, never an accuracy
  trade.

The pipe protocol is deliberately pickle-free, mirroring the repository's
wire format: one opcode byte followed by a payload (a framed batch, a
packed accumulator state, or a JSON document).

Supervision: workers are processes and processes die.  The pool detects
a dead shard (liveness checks, health pings with a timeout, dead-pipe
errors during ingest), reaps the corpse so repeated runs never leak
zombies, and respawns a replacement at the same index under bounded
exponential backoff -- routing simply skips dead or saturated workers
in the meantime instead of failing the whole service.  A respawned
worker starts with an *empty* accumulator; re-ingesting the batches the
dead worker was responsible for is the gateway's job (it has the WAL).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.serialization import SerializationError, unpack_report_batch
from repro.core.session import Report, protocol_from_spec


class NoAliveWorkersError(RuntimeError):
    """Every shard worker is dead (and none may respawn yet)."""


class PoolSaturatedError(RuntimeError):
    """Every alive worker's in-flight queue is at its bound (back off)."""


class WorkerCrashError(RuntimeError):
    """A pipe operation found the target worker dead mid-request."""

    def __init__(self, index: int, message: str) -> None:
        super().__init__(message)
        self.index = int(index)

#: Opcode: ingest one framed report batch (no reply).
OP_INGEST = b"I"
#: Opcode: close the current epoch -- reply with the packed shard state
#: and start a fresh accumulator.
OP_CLOSE = b"C"
#: Opcode: reply with a JSON stats document.
OP_STATS = b"S"
#: Opcode: acknowledge and exit.
OP_QUIT = b"Q"


def shard_worker_main(conn: Connection, spec: dict) -> None:
    """Entry point of one shard worker process.

    Rebuilds the protocol from its registry ``spec`` (JSON-able, so it
    survives the ``spawn`` start method), then serves opcodes from the
    pipe until :data:`OP_QUIT` or EOF.  Decode failures never kill the
    worker: they are counted and surfaced through :data:`OP_STATS` and in
    the :data:`OP_CLOSE` reply header, so the gateway can report them.
    """
    protocol = protocol_from_spec(spec)
    server = protocol.server()
    batches = 0
    errors = 0
    last_error = ""
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break
        opcode, payload = message[:1], message[1:]
        if opcode == OP_INGEST:
            try:
                _, frames = unpack_report_batch(payload)
                reports = [Report.from_bytes(frame) for frame in frames]
                server.ingest(reports)
                batches += 1
            except (SerializationError, ValueError, TypeError) as exc:
                errors += 1
                last_error = str(exc)
        elif opcode == OP_CLOSE:
            conn.send_bytes(OP_CLOSE + server.to_bytes())
            server = protocol.server()
        elif opcode == OP_STATS:
            from repro.core.kernels.hash_cache import hash_cache_stats

            document = {
                "pid": os.getpid(),
                "epoch_reports": server.n_reports,
                "batches": batches,
                "errors": errors,
                "last_error": last_error,
                "kernel_backend": getattr(server, "kernel_backend", "numpy"),
                # Per-process: the OLH decode cache lives where the decode
                # runs, so replayed batches hit in the worker, not the
                # gateway.
                "hash_cache": hash_cache_stats(),
            }
            conn.send_bytes(OP_STATS + json.dumps(document).encode("utf-8"))
        elif opcode == OP_QUIT:
            conn.send_bytes(OP_QUIT)
            break
        else:
            errors += 1
            last_error = f"unknown opcode {opcode!r}"
    conn.close()


class ShardWorker:
    """Async handle on one worker process.

    All pipe traffic for one worker is serialized through its
    ``asyncio.Lock`` (the pipe is a FIFO shared by every request handler),
    and the blocking ``send_bytes`` / ``recv_bytes`` calls run on the
    event loop's default executor so the gateway never stalls.
    """

    def __init__(self, index: int, process, conn: Connection) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = asyncio.Lock()
        #: Requests queued on this worker's pipe right now (backpressure).
        self.pending = 0
        #: Set when a pipe operation hit a dead end -- the process may
        #: still technically run, but the shard is unreachable.
        self.failed = False
        self.spawned_at = time.monotonic()

    @property
    def alive(self) -> bool:
        if self.failed:
            return False
        try:
            return self.process.is_alive()
        except ValueError:  # pragma: no cover - process already close()'d
            return False

    async def _send(self, payload: bytes) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.conn.send_bytes, payload)

    async def _recv(self) -> bytes:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.conn.recv_bytes)

    def _crashed(self, during: str, exc: Exception) -> WorkerCrashError:
        self.failed = True
        return WorkerCrashError(
            self.index, f"worker {self.index} died during {during}: {exc!r}"
        )

    async def ingest(self, batch_blob: bytes) -> None:
        """Forward one framed report batch (fire-and-forget).

        The pipe is a FIFO, so a later :meth:`close_epoch` is guaranteed
        to observe every batch sent before it.  A dead pipe raises
        :class:`WorkerCrashError` and marks the worker failed.
        """
        self.pending += 1
        try:
            async with self.lock:
                try:
                    await self._send(OP_INGEST + batch_blob)
                except (BrokenPipeError, EOFError, OSError) as exc:
                    raise self._crashed("ingest", exc) from exc
        finally:
            self.pending -= 1

    async def close_epoch(self) -> bytes:
        """Drain the worker's current epoch: its packed accumulator state."""
        async with self.lock:
            try:
                await self._send(OP_CLOSE)
                reply = await self._recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise self._crashed("close", exc) from exc
        if reply[:1] != OP_CLOSE:
            raise RuntimeError(
                f"worker {self.index} replied {reply[:1]!r} to a close"
            )
        return reply[1:]

    async def stats(self) -> dict:
        async with self.lock:
            try:
                await self._send(OP_STATS)
                reply = await self._recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise self._crashed("stats", exc) from exc
        if reply[:1] != OP_STATS:
            raise RuntimeError(
                f"worker {self.index} replied {reply[:1]!r} to a stats probe"
            )
        return json.loads(reply[1:].decode("utf-8"))

    async def ping(self, timeout: float = 5.0) -> bool:
        """Health probe: a stats round trip bounded by ``timeout`` seconds.

        ``False`` means dead *or hung*: on a timeout the worker is
        terminated (closing the pipe also unblocks the executor thread
        stuck on the receive) so the pool can respawn it.
        """
        try:
            await asyncio.wait_for(self.stats(), timeout)
        except (asyncio.TimeoutError, WorkerCrashError, RuntimeError):
            self.failed = True
            self.terminate()
            return False
        return True

    async def quit(self) -> None:
        """Ask the worker to exit and wait for its acknowledgement."""
        async with self.lock:
            await self._send(OP_QUIT)
            await self._recv()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.reap)

    def terminate(self) -> None:
        """Hard-kill the worker (crash simulation / last-resort cleanup)."""
        try:
            if self.process.is_alive():
                self.process.terminate()
        except ValueError:  # pragma: no cover - process already close()'d
            pass
        self.reap()

    def reap(self) -> None:
        """Join the child, close the pipe, release the process object.

        Safe to call repeatedly and on never-started corpses; after this
        the OS holds no zombie entry for the worker and the parent holds
        no descriptors to it.
        """
        try:
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - last resort
                self.process.kill()
                self.process.join(timeout=5)
        except ValueError:
            pass  # already closed
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self.process.close()
        except ValueError:  # pragma: no cover - still running (kill failed)
            pass


class WorkerPool:
    """``N`` supervised shard workers plus the fan-out/repair policy.

    One pool serves one protocol configuration (the workers are built
    from its registry spec).  ``start()`` is synchronous -- workers spawn
    before the gateway accepts traffic -- and every other operation is a
    coroutine safe to call from any number of concurrent handlers.

    Supervision contract: routing (:meth:`pick_worker`) skips dead and
    saturated workers; :meth:`ensure_alive` reaps and respawns dead
    workers under bounded exponential backoff (``force=True`` skips the
    backoff -- epoch close cannot wait); the caller re-ingests whatever
    the dead shard held, because a replacement always starts empty.
    """

    def __init__(
        self,
        spec: dict,
        num_workers: int = 2,
        start_method: str = "spawn",
        max_inflight: int = 64,
        restart_backoff_s: float = 0.1,
        restart_backoff_max_s: float = 5.0,
    ) -> None:
        if int(num_workers) < 1:
            raise ValueError(f"need at least 1 worker, got {num_workers}")
        if int(max_inflight) < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self._spec = dict(spec)
        self._num_workers = int(num_workers)
        self._start_method = start_method
        self._max_inflight = int(max_inflight)
        self._backoff_base = float(restart_backoff_s)
        self._backoff_max = float(restart_backoff_max_s)
        self._workers: List[ShardWorker] = []
        self._next = 0
        self._restart_count = 0
        self._restart_streak: Dict[int, int] = {}
        self._backoff_until: Dict[int, float] = {}

    def __len__(self) -> int:
        return self._num_workers

    @property
    def workers(self) -> List[ShardWorker]:
        return list(self._workers)

    @property
    def alive_count(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    @property
    def restart_count(self) -> int:
        """Total worker respawns over the pool's lifetime."""
        return self._restart_count

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    def _spawn(self, index: int) -> ShardWorker:
        context = multiprocessing.get_context(self._start_method)
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=shard_worker_main,
            args=(child_conn, self._spec),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return ShardWorker(index, process, parent_conn)

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (idempotent)."""
        if self._workers:
            return self
        self._workers = [self._spawn(index) for index in range(self._num_workers)]
        return self

    def _require_started(self) -> None:
        if not self._workers:
            raise RuntimeError("worker pool is not started")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def pick_worker(self) -> int:
        """The next worker a batch should land on (round-robin).

        Skips dead workers (they are being respawned) and saturated
        workers (their in-flight queue is at ``max_inflight``).  Raises
        :class:`NoAliveWorkersError` when every worker is dead and
        :class:`PoolSaturatedError` when every alive worker is full --
        the gateway maps the latter onto ``429 Retry-After``.
        """
        self._require_started()
        n = len(self._workers)
        saw_alive = False
        for step in range(n):
            index = (self._next + step) % n
            worker = self._workers[index]
            if not worker.alive:
                continue
            saw_alive = True
            if worker.pending >= self._max_inflight:
                continue
            self._next = (index + 1) % n
            return index
        if saw_alive:
            raise PoolSaturatedError(
                f"all alive workers hold >= {self._max_inflight} in-flight batches"
            )
        raise NoAliveWorkersError("every shard worker is dead")

    async def ingest_on(self, index: int, batch_blob: bytes) -> int:
        """Forward one framed batch to a specific worker.

        Raises :class:`WorkerCrashError` (and marks the worker failed)
        when the pipe is dead -- with a WAL the gateway can still
        acknowledge the batch, because the respawn replay will re-ingest
        it from the log.
        """
        self._require_started()
        worker = self._workers[int(index) % len(self._workers)]
        await worker.ingest(batch_blob)
        return worker.index

    async def ingest(self, batch_blob: bytes) -> int:
        """Forward one framed batch to the next alive worker.

        Returns the worker index the batch landed on.
        """
        return await self.ingest_on(self.pick_worker(), batch_blob)

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def dead_indices(self) -> List[int]:
        return [worker.index for worker in self._workers if not worker.alive]

    def respawn(self, index: int) -> ShardWorker:
        """Reap a dead worker and start its replacement (empty shard)."""
        self._require_started()
        index = int(index) % len(self._workers)
        old = self._workers[index]
        old.failed = True
        old.terminate()
        replacement = self._spawn(index)
        self._workers[index] = replacement
        self._restart_count += 1
        streak = self._restart_streak.get(index, 0) + 1
        self._restart_streak[index] = streak
        delay = min(self._backoff_max, self._backoff_base * (2 ** (streak - 1)))
        self._backoff_until[index] = time.monotonic() + delay
        return replacement

    async def ensure_alive(self, force: bool = False) -> List[int]:
        """Respawn every dead worker whose backoff window has elapsed.

        ``force=True`` ignores the backoff (used on epoch close, which
        must not wait).  Returns the indices respawned *this call* so the
        owner can replay their lost batches.
        """
        self._require_started()
        now = time.monotonic()
        respawned = []
        for index in self.dead_indices():
            if not force and now < self._backoff_until.get(index, 0.0):
                continue
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.respawn, index)
            respawned.append(index)
        return respawned

    def note_epoch_closed(self) -> None:
        """Reset restart backoff streaks: surviving an epoch is health."""
        self._restart_streak = {}
        self._backoff_until = {}

    async def ping_all(self, timeout: float = 5.0) -> Dict[int, bool]:
        """Health-probe every worker; hung workers are terminated."""
        self._require_started()
        alive = [worker for worker in self._workers if worker.alive]
        results = await asyncio.gather(
            *(worker.ping(timeout) for worker in alive)
        )
        health = {worker.index: ok for worker, ok in zip(alive, results)}
        for worker in self._workers:
            health.setdefault(worker.index, False)
        return health

    # ------------------------------------------------------------------ #
    # epoch close / stats / shutdown
    # ------------------------------------------------------------------ #
    async def close_workers(
        self, indices: Sequence[int]
    ) -> Tuple[Dict[int, bytes], Dict[int, Exception]]:
        """Drain specific workers; return ``(states, failures)`` by index.

        A worker that dies mid-close lands in ``failures`` (marked
        failed); the caller respawns it, replays its batches, and
        retries -- its accumulated state is unrecoverable, but with a WAL
        its *inputs* are not.
        """
        self._require_started()
        indices = [int(index) % len(self._workers) for index in indices]
        results = await asyncio.gather(
            *(self._workers[index].close_epoch() for index in indices),
            return_exceptions=True,
        )
        states: Dict[int, bytes] = {}
        failures: Dict[int, Exception] = {}
        for index, result in zip(indices, results):
            if isinstance(result, BaseException):
                self._workers[index].failed = True
                failures[index] = result
            else:
                states[index] = result
        return states, failures

    async def close_epoch(self) -> List[bytes]:
        """Drain every worker's epoch; one packed shard state each.

        The simple all-healthy path: any worker failure raises.  The
        gateway uses :meth:`close_workers` instead so it can repair and
        retry per shard.
        """
        self._require_started()
        states, failures = await self.close_workers(range(len(self._workers)))
        if failures:
            raise next(iter(failures.values()))
        return [states[index] for index in range(len(self._workers))]

    async def stats(self) -> List[dict]:
        self._require_started()
        documents = await asyncio.gather(
            *(
                worker.stats() if worker.alive else _dead_stats(worker)
                for worker in self._workers
            ),
            return_exceptions=True,
        )
        results: List[dict] = []
        for worker, document in zip(self._workers, documents):
            if isinstance(document, BaseException):
                results.append(
                    {"worker": worker.index, "alive": worker.alive, "error": str(document)}
                )
            else:
                results.append(
                    {
                        "worker": worker.index,
                        "alive": worker.alive,
                        "pending": worker.pending,
                        **document,
                    }
                )
        return results

    async def shutdown(self, graceful: bool = True) -> None:
        """Stop and reap every worker; graceful quit first, then force.

        After shutdown no child process object is retained and every
        exited child has been joined -- repeated pool lifecycles in one
        parent never accumulate zombies.
        """
        workers, self._workers = self._workers, []
        if graceful:
            results = await asyncio.gather(
                *(worker.quit() for worker in workers if worker.alive),
                return_exceptions=True,
            )
            del results  # best effort; terminate below covers stragglers
        loop = asyncio.get_running_loop()
        for worker in workers:
            await loop.run_in_executor(None, worker.terminate)


async def _dead_stats(worker: ShardWorker) -> dict:
    return {"error": "worker is dead", "epoch_reports": 0}


def ingest_batches_single_process(
    spec: dict, batch_blobs, postprocess: Optional[str] = None
):
    """Reference single-process ingestion of framed batches.

    Decodes and ingests every report of every batch into one fresh
    server and returns it -- the ground truth the sharded service must
    match bit-for-bit.  Used by tests and the service benchmark.
    """
    if postprocess is not None:
        spec = {**spec, "postprocess": postprocess}
    protocol = protocol_from_spec(spec)
    server = protocol.server()
    for blob in batch_blobs:
        _, frames = unpack_report_batch(blob)
        server.ingest([Report.from_bytes(frame) for frame in frames])
    return server


__all__ = [
    "NoAliveWorkersError",
    "OP_CLOSE",
    "OP_INGEST",
    "OP_QUIT",
    "OP_STATS",
    "PoolSaturatedError",
    "ShardWorker",
    "WorkerCrashError",
    "WorkerPool",
    "ingest_batches_single_process",
    "shard_worker_main",
]
