"""Multi-process shard workers: the ingest hot loop of the service.

The gateway (:mod:`repro.service.gateway`) is a single asyncio process --
great at juggling thousands of connections, terrible at burning CPU on
report decoding and accumulation.  This module moves that hot loop onto
``N`` worker *processes*, one shard each, connected over
``multiprocessing`` pipes:

* the gateway forwards each framed report batch (still bytes -- it never
  decodes an array) to one worker, round-robin;
* every worker decodes the batch and folds it into its own
  :class:`~repro.core.session.ProtocolServer` accumulator;
* on epoch close each worker hands back its packed accumulator state and
  resets.  Because accumulator merge is exactly associative and
  commutative (integer sufficient statistics), merging the shard states
  in *any* order reproduces single-process ingestion of the same reports
  bit-for-bit -- sharding is a pure throughput play, never an accuracy
  trade.

The pipe protocol is deliberately pickle-free, mirroring the repository's
wire format: one opcode byte followed by a payload (a framed batch, a
packed accumulator state, or a JSON document).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
from multiprocessing.connection import Connection
from typing import List, Optional

from repro.core.serialization import SerializationError, unpack_report_batch
from repro.core.session import Report, protocol_from_spec

#: Opcode: ingest one framed report batch (no reply).
OP_INGEST = b"I"
#: Opcode: close the current epoch -- reply with the packed shard state
#: and start a fresh accumulator.
OP_CLOSE = b"C"
#: Opcode: reply with a JSON stats document.
OP_STATS = b"S"
#: Opcode: acknowledge and exit.
OP_QUIT = b"Q"


def shard_worker_main(conn: Connection, spec: dict) -> None:
    """Entry point of one shard worker process.

    Rebuilds the protocol from its registry ``spec`` (JSON-able, so it
    survives the ``spawn`` start method), then serves opcodes from the
    pipe until :data:`OP_QUIT` or EOF.  Decode failures never kill the
    worker: they are counted and surfaced through :data:`OP_STATS` and in
    the :data:`OP_CLOSE` reply header, so the gateway can report them.
    """
    protocol = protocol_from_spec(spec)
    server = protocol.server()
    batches = 0
    errors = 0
    last_error = ""
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break
        opcode, payload = message[:1], message[1:]
        if opcode == OP_INGEST:
            try:
                _, frames = unpack_report_batch(payload)
                reports = [Report.from_bytes(frame) for frame in frames]
                server.ingest(reports)
                batches += 1
            except (SerializationError, ValueError, TypeError) as exc:
                errors += 1
                last_error = str(exc)
        elif opcode == OP_CLOSE:
            conn.send_bytes(OP_CLOSE + server.to_bytes())
            server = protocol.server()
        elif opcode == OP_STATS:
            document = {
                "pid": os.getpid(),
                "epoch_reports": server.n_reports,
                "batches": batches,
                "errors": errors,
                "last_error": last_error,
            }
            conn.send_bytes(OP_STATS + json.dumps(document).encode("utf-8"))
        elif opcode == OP_QUIT:
            conn.send_bytes(OP_QUIT)
            break
        else:
            errors += 1
            last_error = f"unknown opcode {opcode!r}"
    conn.close()


class ShardWorker:
    """Async handle on one worker process.

    All pipe traffic for one worker is serialized through its
    ``asyncio.Lock`` (the pipe is a FIFO shared by every request handler),
    and the blocking ``send_bytes`` / ``recv_bytes`` calls run on the
    event loop's default executor so the gateway never stalls.
    """

    def __init__(self, index: int, process, conn: Connection) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = asyncio.Lock()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    async def _send(self, payload: bytes) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.conn.send_bytes, payload)

    async def _recv(self) -> bytes:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.conn.recv_bytes)

    async def ingest(self, batch_blob: bytes) -> None:
        """Forward one framed report batch (fire-and-forget).

        The pipe is a FIFO, so a later :meth:`close_epoch` is guaranteed
        to observe every batch sent before it.
        """
        async with self.lock:
            await self._send(OP_INGEST + batch_blob)

    async def close_epoch(self) -> bytes:
        """Drain the worker's current epoch: its packed accumulator state."""
        async with self.lock:
            await self._send(OP_CLOSE)
            reply = await self._recv()
        if reply[:1] != OP_CLOSE:
            raise RuntimeError(
                f"worker {self.index} replied {reply[:1]!r} to a close"
            )
        return reply[1:]

    async def stats(self) -> dict:
        async with self.lock:
            await self._send(OP_STATS)
            reply = await self._recv()
        if reply[:1] != OP_STATS:
            raise RuntimeError(
                f"worker {self.index} replied {reply[:1]!r} to a stats probe"
            )
        return json.loads(reply[1:].decode("utf-8"))

    async def quit(self) -> None:
        """Ask the worker to exit and wait for its acknowledgement."""
        async with self.lock:
            await self._send(OP_QUIT)
            await self._recv()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.process.join, 5)

    def terminate(self) -> None:
        """Hard-kill the worker (crash simulation / last-resort cleanup)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class WorkerPool:
    """``N`` shard workers plus the round-robin fan-out policy.

    One pool serves one protocol configuration (the workers are built
    from its registry spec).  ``start()`` is synchronous -- workers spawn
    before the gateway accepts traffic -- and every other operation is a
    coroutine safe to call from any number of concurrent handlers.
    """

    def __init__(
        self, spec: dict, num_workers: int = 2, start_method: str = "spawn"
    ) -> None:
        if int(num_workers) < 1:
            raise ValueError(f"need at least 1 worker, got {num_workers}")
        self._spec = dict(spec)
        self._num_workers = int(num_workers)
        self._start_method = start_method
        self._workers: List[ShardWorker] = []
        self._next = 0

    def __len__(self) -> int:
        return self._num_workers

    @property
    def workers(self) -> List[ShardWorker]:
        return list(self._workers)

    @property
    def alive_count(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    def start(self) -> "WorkerPool":
        """Spawn the worker processes (idempotent)."""
        if self._workers:
            return self
        context = multiprocessing.get_context(self._start_method)
        for index in range(self._num_workers):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=shard_worker_main,
                args=(child_conn, self._spec),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(ShardWorker(index, process, parent_conn))
        return self

    def _require_started(self) -> None:
        if not self._workers:
            raise RuntimeError("worker pool is not started")

    async def ingest(self, batch_blob: bytes) -> int:
        """Forward one framed batch to the next worker (round-robin).

        Returns the worker index the batch landed on.
        """
        self._require_started()
        index = self._next
        self._next = (self._next + 1) % len(self._workers)
        await self._workers[index].ingest(batch_blob)
        return index

    async def close_epoch(self) -> List[bytes]:
        """Drain every worker's epoch; one packed shard state each."""
        self._require_started()
        return list(
            await asyncio.gather(
                *(worker.close_epoch() for worker in self._workers)
            )
        )

    async def stats(self) -> List[dict]:
        self._require_started()
        documents = await asyncio.gather(
            *(worker.stats() for worker in self._workers),
            return_exceptions=True,
        )
        results: List[dict] = []
        for worker, document in zip(self._workers, documents):
            if isinstance(document, BaseException):
                results.append(
                    {"worker": worker.index, "alive": worker.alive, "error": str(document)}
                )
            else:
                results.append({"worker": worker.index, "alive": worker.alive, **document})
        return results

    async def shutdown(self, graceful: bool = True) -> None:
        """Stop every worker; graceful quit first, terminate as fallback."""
        if graceful:
            results = await asyncio.gather(
                *(worker.quit() for worker in self._workers),
                return_exceptions=True,
            )
            del results  # best effort; terminate below covers stragglers
        for worker in self._workers:
            worker.terminate()
        self._workers = []


def ingest_batches_single_process(
    spec: dict, batch_blobs, postprocess: Optional[str] = None
):
    """Reference single-process ingestion of framed batches.

    Decodes and ingests every report of every batch into one fresh
    server and returns it -- the ground truth the sharded service must
    match bit-for-bit.  Used by tests and the service benchmark.
    """
    if postprocess is not None:
        spec = {**spec, "postprocess": postprocess}
    protocol = protocol_from_spec(spec)
    server = protocol.server()
    for blob in batch_blobs:
        _, frames = unpack_report_batch(blob)
        server.ingest([Report.from_bytes(frame) for frame in frames])
    return server


__all__ = [
    "OP_CLOSE",
    "OP_INGEST",
    "OP_QUIT",
    "OP_STATS",
    "ShardWorker",
    "WorkerPool",
    "ingest_batches_single_process",
    "shard_worker_main",
]
