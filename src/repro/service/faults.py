"""Deterministic fault injection for the aggregation service.

Robustness claims are only as good as the faults they were tested
against, so this module packages the faults themselves as reusable,
*deterministic* primitives -- the chaos tests in ``tests/test_service.py``
and the CI chaos-smoke job drive the same code:

* :func:`kill_worker` -- SIGKILL one shard worker process mid-ingest;
* :func:`chaos_stream` -- perturb a batch delivery schedule (drop first
  attempts, duplicate deliveries, reorder within a window) from a seed;
* :func:`truncate_wal_tail` -- chop bytes off a WAL segment, simulating
  a torn write at the moment of a crash;
* :class:`ServiceProcess` -- run a gateway in a real child process so a
  test can SIGKILL the *gateway itself* between an ``/ingest`` ack and
  the epoch close, then restart from its WAL and checkpoint.

Every fault is recoverable by design, so each primitive pairs with an
exactness assertion: after injection + recovery, query answers must be
bit-identical to a no-fault single-process run over the same batches.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
from typing import Iterable, List, Optional, Sequence, Tuple


def _resolve_pool(target):
    """Accept a ``WorkerPool``, ``AggregationService`` or ``ServiceThread``."""
    target = getattr(target, "service", target)
    return getattr(target, "pool", target)


def kill_worker(target, index: int, wait: bool = True) -> int:
    """SIGKILL one shard worker process; returns the dead worker's pid.

    ``target`` may be a :class:`~repro.service.workers.WorkerPool`, an
    :class:`~repro.service.gateway.AggregationService`, or a
    :class:`~repro.service.gateway.ServiceThread`.  With ``wait`` the
    call blocks until the OS has reaped the process, so a subsequent
    ingest deterministically observes the dead pipe.
    """
    pool = _resolve_pool(target)
    worker = pool.workers[int(index) % len(pool)]
    pid = worker.process.pid
    os.kill(pid, signal.SIGKILL)
    if wait:
        worker.process.join(timeout=10)
    return pid


def truncate_wal_tail(path: str, nbytes: int) -> int:
    """Chop ``nbytes`` off the end of a WAL segment (a torn final write).

    Returns the new file size.  A torn record was by definition never
    acknowledged (the gateway acks only after a flushed append), so
    recovery must drop it silently and keep every record before it.
    """
    size = os.path.getsize(path)
    keep = max(0, size - int(nbytes))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep


def chaos_stream(
    blobs: Sequence[bytes],
    seed: int = 0,
    drop: float = 0.1,
    duplicate: float = 0.1,
    reorder_window: int = 4,
) -> List[Tuple[int, bytes]]:
    """A perturbed delivery schedule of ``(batch_index, blob)`` pairs.

    Models a flaky network feeding a well-behaved retrying client:

    * with probability ``drop`` a batch's first attempt is lost and the
      client retries it at the end of the run (so every batch is still
      delivered at least once);
    * with probability ``duplicate`` a delivered batch is sent again
      immediately (an ack lost on the way back -- the client retried);
    * deliveries are shuffled within windows of ``reorder_window``.

    The schedule is a pure function of ``seed``.  Send each delivery
    under the idempotency key ``chaos:{batch_index}`` and the service
    must produce answers bit-identical to ingesting ``blobs`` once each:
    duplicates are deduplicated, order never mattered (merge is
    commutative), and dropped-then-retried batches arrive late but
    arrive.
    """
    rng = random.Random(seed)
    schedule: List[Tuple[int, bytes]] = []
    retried: List[Tuple[int, bytes]] = []
    for index, blob in enumerate(blobs):
        if rng.random() < drop:
            retried.append((index, blob))
            continue
        schedule.append((index, blob))
        if rng.random() < duplicate:
            schedule.append((index, blob))
    schedule.extend(retried)
    if reorder_window > 1:
        for start in range(0, len(schedule), reorder_window):
            window = schedule[start : start + reorder_window]
            rng.shuffle(window)
            schedule[start : start + len(window)] = window
    return schedule


def _service_process_main(spec, options, checkpoint, conn) -> None:
    """Child entry point: boot a gateway, report its port, serve forever."""
    import asyncio

    from repro.service.gateway import AggregationService

    async def main() -> None:
        try:
            if checkpoint and os.path.exists(checkpoint):
                service = AggregationService.from_checkpoint(checkpoint, **options)
            else:
                service = AggregationService(
                    spec, checkpoint_path=checkpoint, **options
                )
            await service.start()
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            return
        conn.send(("ready", service.port))
        await service.serve_forever()

    asyncio.run(main())


class ServiceProcess:
    """A gateway running in a real child process, killable mid-epoch.

    :class:`~repro.service.gateway.ServiceThread` cannot model gateway
    death -- threads cannot be SIGKILLed.  This harness runs the whole
    service (gateway + its shard workers) in a spawned child so a test
    can yank the process between an ``/ingest`` acknowledgement and the
    epoch close, then start a fresh service over the same ``wal_dir``
    and checkpoint and assert nothing acknowledged was lost.  Shard
    workers of a killed gateway exit on their own: their pipe to the
    gateway reads EOF.

    Use as a context manager; ``kill()`` leaves the context cleanly::

        with ServiceProcess(spec, wal_dir=...) as svc:
            request_json(svc.url + "/ingest", method="POST", body=blob)
            svc.kill()  # SIGKILL mid-epoch
    """

    def __init__(
        self,
        spec: Optional[dict] = None,
        *,
        checkpoint_path: Optional[str] = None,
        boot_timeout: float = 60.0,
        **options,
    ) -> None:
        self.spec = spec
        self.options = dict(options)
        self.checkpoint_path = checkpoint_path
        self.boot_timeout = float(boot_timeout)
        self.port: Optional[int] = None
        self._process: Optional[multiprocessing.process.BaseProcess] = None

    @property
    def url(self) -> str:
        if self.port is None:
            raise RuntimeError("service process is not started")
        return f"http://127.0.0.1:{self.port}"

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def start(self) -> "ServiceProcess":
        if self._process is not None:
            raise RuntimeError("service process already started")
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=False)
        self._process = context.Process(
            target=_service_process_main,
            args=(self.spec, self.options, self.checkpoint_path, child_conn),
            name="repro-service-process",
        )
        self._process.start()
        child_conn.close()
        if not parent_conn.poll(self.boot_timeout):
            self.kill()
            raise RuntimeError(
                f"service process did not boot within {self.boot_timeout}s"
            )
        status, detail = parent_conn.recv()
        parent_conn.close()
        if status != "ready":
            self.kill()
            raise RuntimeError(f"service process failed to boot: {detail}")
        self.port = int(detail)
        return self

    def kill(self) -> None:
        """SIGKILL the gateway process (simulated crash) and reap it."""
        process = self._process
        if process is None:
            return
        if process.is_alive():
            process.kill()
        process.join(timeout=30)
        process.close()
        self._process = None
        self.port = None

    def __enter__(self) -> "ServiceProcess":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.kill()


def delivered_indices(schedule: Iterable[Tuple[int, bytes]]) -> List[int]:
    """The distinct batch indices a chaos schedule delivers, sorted."""
    return sorted({index for index, _ in schedule})


__all__ = [
    "ServiceProcess",
    "chaos_stream",
    "delivered_indices",
    "kill_worker",
    "truncate_wal_tail",
]
