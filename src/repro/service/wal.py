"""Durable ingest write-ahead log for the aggregation gateway.

The service's exactly-once story has a hole without this module: the
gateway acknowledges ``POST /ingest`` as soon as a batch is queued on a
shard worker's pipe, but pipes are memory -- a crashed worker or a
killed gateway silently drops every batch acknowledged since the last
epoch close, skewing estimates the estimators then treat as unbiased.

:class:`IngestWAL` closes the hole with a per-epoch, segmented,
append-only log:

* the gateway appends each accepted batch (with its idempotency key and
  shard assignment) to the *open* segment of the current epoch **before**
  acknowledging the client;
* ``POST /close`` seals the segment (renamed ``*.closed``) once the
  epoch's shard states are merged into the engine, and a successful
  checkpoint discards every sealed segment the checkpoint now covers --
  the log holds exactly the batches whose reports are not yet durable
  elsewhere;
* on restart, :meth:`IngestWAL.scan` recovers the intact prefix of every
  surviving segment (CRC-protected records, torn tails dropped -- a torn
  record was never acknowledged) so the gateway can replay sealed
  epochs into the engine and the open epoch into fresh workers,
  deduplicating by idempotency key.

Durability model: records are flushed to the OS on every append, which
survives any *process* death (worker crash, gateway SIGKILL).  Pass
``sync=True`` to also ``fsync`` each append and survive machine power
loss, at a large throughput cost (measured in
``benchmarks/bench_service.py``).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.serialization import (
    SerializationError,
    pack_wal_record,
    pack_wal_segment_header,
    scan_wal_segment,
)

#: Suffix of a segment still accepting appends (its epoch is in flight).
OPEN_SUFFIX = ".open"

#: Suffix of a sealed segment (epoch closed, checkpoint still pending).
CLOSED_SUFFIX = ".closed"

_SEGMENT_RE = re.compile(r"^epoch-(\d+)\.(open|closed)$")


@dataclass
class SegmentScan:
    """One recovered WAL segment: its records and tail diagnosis."""

    epoch: int
    path: str
    sealed: bool
    records: List[Tuple[dict, bytes]] = field(default_factory=list)
    #: Byte offset of the first torn/corrupt record, ``None`` when clean.
    torn_offset: Optional[int] = None

    @property
    def n_reports(self) -> int:
        return sum(int(meta.get("n_users", 0)) for meta, _ in self.records)


@dataclass
class WalScan:
    """Everything :meth:`IngestWAL.scan` found on disk, oldest first."""

    sealed: List[SegmentScan] = field(default_factory=list)
    open: List[SegmentScan] = field(default_factory=list)
    #: Files under the WAL directory that could not be decoded at all.
    unreadable: List[str] = field(default_factory=list)


class IngestWAL:
    """Per-epoch segmented append-only log of accepted ingest batches."""

    def __init__(self, directory: str, sync: bool = False) -> None:
        self.directory = str(directory)
        self.sync = bool(sync)
        os.makedirs(self.directory, exist_ok=True)
        self._handles: Dict[int, object] = {}
        self.records_appended = 0
        self.bytes_appended = 0

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def segment_path(self, epoch: int, sealed: bool = False) -> str:
        suffix = CLOSED_SUFFIX if sealed else OPEN_SUFFIX
        return os.path.join(self.directory, f"epoch-{int(epoch):08d}{suffix}")

    # ------------------------------------------------------------------ #
    # append path
    # ------------------------------------------------------------------ #
    def _handle(self, epoch: int):
        handle = self._handles.get(epoch)
        if handle is None:
            path = self.segment_path(epoch)
            fresh = not os.path.exists(path)
            handle = open(path, "ab")
            if fresh:
                handle.write(pack_wal_segment_header(epoch))
                handle.flush()
            self._handles[epoch] = handle
        return handle

    def append(self, epoch: int, blob: bytes, *, key: str, worker: int,
               n_users: int = 0) -> None:
        """Append one accepted batch; returns only once it is flushed.

        The caller acknowledges the client *after* this returns, so every
        acknowledged batch is recoverable by :meth:`scan`.
        """
        meta = {
            "key": str(key),
            "worker": int(worker),
            "n_users": int(n_users),
        }
        record = pack_wal_record(meta, blob)
        handle = self._handle(int(epoch))
        handle.write(record)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self.records_appended += 1
        self.bytes_appended += len(record)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def seal(self, epoch: int) -> None:
        """Seal an epoch's segment after its shards merged into the engine.

        A sealed segment is kept until a checkpoint covers its epoch --
        close-then-crash must still be able to rebuild the epoch.
        Sealing an epoch that never logged a record is a no-op.
        """
        epoch = int(epoch)
        handle = self._handles.pop(epoch, None)
        if handle is not None:
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
            handle.close()
        path = self.segment_path(epoch)
        if os.path.exists(path):
            os.replace(path, self.segment_path(epoch, sealed=True))

    def discard(self, epoch: int) -> None:
        """Delete an epoch's segment (open or sealed): it is durable elsewhere."""
        epoch = int(epoch)
        handle = self._handles.pop(epoch, None)
        if handle is not None:
            handle.close()
        for sealed in (False, True):
            path = self.segment_path(epoch, sealed=sealed)
            if os.path.exists(path):
                os.remove(path)

    def discard_checkpointed(self, epochs) -> List[int]:
        """Drop every *sealed* segment whose epoch a checkpoint now covers."""
        covered = {int(epoch) for epoch in epochs}
        dropped = []
        for scan in self._segments():
            epoch, sealed = scan
            if sealed and epoch in covered:
                os.remove(self.segment_path(epoch, sealed=True))
                dropped.append(epoch)
        return dropped

    def close(self) -> None:
        """Close every open file handle (the segments stay on disk)."""
        for handle in self._handles.values():
            try:
                handle.flush()
                handle.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._handles = {}

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def _segments(self) -> List[Tuple[int, bool]]:
        found = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append((int(match.group(1)), match.group(2) == "closed"))
        return sorted(found)

    def _scan_segment(self, epoch: int, sealed: bool) -> Optional[SegmentScan]:
        path = self.segment_path(epoch, sealed=sealed)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            header, records, torn = scan_wal_segment(data)
        except (OSError, SerializationError):
            return None
        return SegmentScan(
            epoch=int(header.get("epoch", epoch)),
            path=path,
            sealed=sealed,
            records=records,
            torn_offset=torn,
        )

    def scan(self) -> WalScan:
        """Recover every segment on disk, oldest epoch first."""
        result = WalScan()
        for epoch, sealed in self._segments():
            scan = self._scan_segment(epoch, sealed)
            if scan is None:
                result.unreadable.append(self.segment_path(epoch, sealed=sealed))
            elif sealed:
                result.sealed.append(scan)
            else:
                result.open.append(scan)
        return result

    def read_epoch(self, epoch: int) -> List[Tuple[dict, bytes]]:
        """The intact records of one epoch's *open* segment (for replay).

        Flushes the live handle first so a scan observes every append the
        gateway has acknowledged.
        """
        handle = self._handles.get(int(epoch))
        if handle is not None:
            handle.flush()
        scan = self._scan_segment(int(epoch), sealed=False)
        return scan.records if scan is not None else []

    def stats(self) -> dict:
        segments = self._segments()
        return {
            "directory": self.directory,
            "sync": self.sync,
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "open_segments": sum(1 for _, sealed in segments if not sealed),
            "sealed_segments": sum(1 for _, sealed in segments if sealed),
        }


__all__ = [
    "CLOSED_SUFFIX",
    "IngestWAL",
    "OPEN_SUFFIX",
    "SegmentScan",
    "WalScan",
]
