"""Network-facing aggregation service.

The paper's aggregator, made operational: an asyncio HTTP ingest
gateway (:mod:`repro.service.gateway`) fronting ``N`` shard worker
processes (:mod:`repro.service.workers`), feeding the epoch-aware
:class:`~repro.engine.Engine` on epoch close.  Because accumulator
merge is exact, the sharded service answers queries bit-identically to
a single process ingesting the same reports -- scale-out without an
accuracy tax.

Quickstart (see also ``repro-cli serve`` / ``repro-cli loadgen``)::

    from repro.service import AggregationService, ServiceThread

    service = AggregationService(
        {"name": "hh", "domain_size": 1024, "epsilon": 1.0},
        num_workers=4,
        checkpoint_path="state.bin",
        wal_dir="wal/",          # durable ingest log: exactly-once recovery
    )
    with ServiceThread(service) as handle:
        ...  # POST framed batches to handle.url + "/ingest"

Fault tolerance: with ``wal_dir`` set, every accepted batch is logged
durably *before* the ``/ingest`` acknowledgement, dead shard workers
are respawned and replayed automatically, and a killed gateway replays
its un-checkpointed epochs on restart.  Clients that retry should send
an ``Idempotency-Key`` header (any stable string per logical batch) so
a retried delivery of an already-accepted batch is deduplicated rather
than double-counted -- :func:`request_json` and the load generator do
this for you.
"""

from repro.service.faults import ServiceProcess, chaos_stream, kill_worker
from repro.service.gateway import AggregationService, ServiceThread, request_json
from repro.service.http import HttpError
from repro.service.loadgen import LoadgenResult, generate_batches, run_loadgen
from repro.service.wal import IngestWAL
from repro.service.workers import (
    NoAliveWorkersError,
    PoolSaturatedError,
    WorkerCrashError,
    WorkerPool,
    ingest_batches_single_process,
)

__all__ = [
    "AggregationService",
    "HttpError",
    "IngestWAL",
    "LoadgenResult",
    "NoAliveWorkersError",
    "PoolSaturatedError",
    "ServiceProcess",
    "ServiceThread",
    "WorkerCrashError",
    "WorkerPool",
    "chaos_stream",
    "generate_batches",
    "ingest_batches_single_process",
    "kill_worker",
    "request_json",
    "run_loadgen",
]
