"""Network-facing aggregation service.

The paper's aggregator, made operational: an asyncio HTTP ingest
gateway (:mod:`repro.service.gateway`) fronting ``N`` shard worker
processes (:mod:`repro.service.workers`), feeding the epoch-aware
:class:`~repro.engine.Engine` on epoch close.  Because accumulator
merge is exact, the sharded service answers queries bit-identically to
a single process ingesting the same reports -- scale-out without an
accuracy tax.

Quickstart (see also ``repro-cli serve`` / ``repro-cli loadgen``)::

    from repro.service import AggregationService, ServiceThread

    service = AggregationService(
        {"name": "hh", "domain_size": 1024, "epsilon": 1.0},
        num_workers=4,
        checkpoint_path="state.bin",
    )
    with ServiceThread(service) as handle:
        ...  # POST framed batches to handle.url + "/ingest"
"""

from repro.service.gateway import AggregationService, ServiceThread, request_json
from repro.service.http import HttpError
from repro.service.loadgen import LoadgenResult, generate_batches, run_loadgen
from repro.service.workers import WorkerPool, ingest_batches_single_process

__all__ = [
    "AggregationService",
    "HttpError",
    "LoadgenResult",
    "ServiceThread",
    "WorkerPool",
    "generate_batches",
    "ingest_batches_single_process",
    "request_json",
    "run_loadgen",
]
