"""Multi-dimensional range queries (Section 6 extension)."""

from repro.multidim.grid import Grid2DEstimator, HierarchicalGrid2D

__all__ = ["Grid2DEstimator", "HierarchicalGrid2D"]
