"""Multi-dimensional range queries (Section 6 extension).

:class:`HierarchicalGrid2D` decomposes each axis hierarchically and joins
the per-axis levels into level pairs; like every other family it runs on
the generic decomposition engine, so it has streaming clients/servers,
exactly mergeable shards and wire serialization (see ``ARCHITECTURE.md``).
"""

from repro.multidim.grid import (
    Grid2DClient,
    Grid2DEstimator,
    Grid2DServer,
    HierarchicalGrid2D,
)

__all__ = ["Grid2DClient", "Grid2DEstimator", "Grid2DServer", "HierarchicalGrid2D"]
