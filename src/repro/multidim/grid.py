"""Two-dimensional range queries under LDP (Section 6 extension).

The paper sketches how both decompositions extend to multiple dimensions:
apply the hierarchical decomposition per axis, so any axis-aligned
rectangle decomposes into a product of per-axis B-adic decompositions and
the variance picks up another ``log^2`` factor per dimension.

:class:`HierarchicalGrid2D` implements that extension for two dimensions.
Each user holds a pair ``(x, y)``; she samples a level for each axis
independently (uniformly, as in 1-D), forms the one-hot vector over the
grid of node pairs at those two levels and reports it through a frequency
oracle.  The aggregator keeps one estimated grid per level pair and answers
a rectangle query by summing the grid cells indexed by the Cartesian
product of the two per-axis B-adic decompositions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.decomposition import DecompositionRoles, Grid2DDecomposition
from repro.core.exceptions import InvalidRangeError, ProtocolUsageError
from repro.core.postprocess import GRID, PipelineLike, resolve_postprocess
from repro.core.rng import RngLike, ensure_rng
from repro.core.session import (
    AccumulatorState,
    DecompositionClient,
    DecompositionServer,
)
from repro.core.types import Domain, PrivacyParams
from repro.frequency_oracles.base import standard_oracle_variance
from repro.hierarchy.tree import DomainTree


class Grid2DEstimator:
    """Per-level-pair node-fraction estimates for 2-D rectangle queries."""

    def __init__(
        self,
        tree_x: DomainTree,
        tree_y: DomainTree,
        grids: Dict[Tuple[int, int], np.ndarray],
    ) -> None:
        self._tree_x = tree_x
        self._tree_y = tree_y
        self._grids = grids
        self._grid_prefix_cache: Optional[Dict[Tuple[int, int], np.ndarray]] = None

    @property
    def level_pairs(self) -> List[Tuple[int, int]]:
        """The level pairs for which estimates exist."""
        return sorted(self._grids)

    def grid(self, level_x: int, level_y: int) -> np.ndarray:
        """The estimated node-pair fractions for one level pair (copy)."""
        return self._grids[(level_x, level_y)].copy()

    def _grid_prefix_sums(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Cached 2-D prefix sums of every level-pair grid (computed once)."""
        if self._grid_prefix_cache is None:
            prefixes: Dict[Tuple[int, int], np.ndarray] = {}
            for pair, grid in self._grids.items():
                prefix = np.zeros((grid.shape[0] + 1, grid.shape[1] + 1))
                np.cumsum(np.cumsum(grid, axis=0), axis=1, out=prefix[1:, 1:])
                prefixes[pair] = prefix
            self._grid_prefix_cache = prefixes
        return self._grid_prefix_cache

    def _axis_runs(self, tree: DomainTree, lefts: np.ndarray, rights: np.ndarray):
        """Per-level node runs of the canonical per-axis decomposition.

        The root level is never collected by the protocol; a query that
        decomposes to the whole axis (the root node) is rewritten as the
        full run of level-1 children, matching the per-query path.
        """
        runs = tree.decompose_ranges_batch(lefts, rights)
        root_lo, root_hi = runs[0][0], runs[0][1]
        took_root = root_hi >= root_lo
        if took_root.any():
            left_lo, left_hi, _, _ = runs[1]
            left_lo[took_root] = 0
            left_hi[took_root] = tree.level_size(1) - 1
        return runs[1:]

    def rectangle_queries(
        self,
        x_lefts: np.ndarray,
        x_rights: np.ndarray,
        y_lefts: np.ndarray,
        y_rights: np.ndarray,
    ) -> np.ndarray:
        """Vectorised evaluation of many axis-aligned rectangle queries.

        Each axis contributes at most two contiguous node runs per level
        (the canonical B-adic decomposition), so the Cartesian product of
        the per-axis decompositions reduces to ``O(h_x * h_y)`` rectangle
        sums per query -- each answered in ``O(1)`` with the cached 2-D
        prefix sums of the level-pair grids, across all queries at once.
        """
        arrays = []
        for values in (x_lefts, x_rights, y_lefts, y_rights):
            arrays.append(np.asarray(values, dtype=np.int64).reshape(-1))
        x_lefts, x_rights, y_lefts, y_rights = arrays
        num_queries = x_lefts.size
        if not all(arr.size == num_queries for arr in arrays):
            raise InvalidRangeError("rectangle coordinate arrays must have equal length")
        if num_queries == 0:
            return np.zeros(0)
        if np.any(x_lefts > x_rights) or np.any(y_lefts > y_rights):
            raise InvalidRangeError("rectangle endpoints are reversed")
        if np.any(x_lefts < 0) or np.any(y_lefts < 0):
            raise InvalidRangeError("rectangle endpoints must be >= 0")
        if (
            int(x_rights.max()) >= self._tree_x.domain_size
            or int(y_rights.max()) >= self._tree_y.domain_size
        ):
            raise InvalidRangeError("rectangle exceeds the domain")
        runs_x = self._axis_runs(self._tree_x, x_lefts, x_rights)
        runs_y = self._axis_runs(self._tree_y, y_lefts, y_rights)
        prefixes = self._grid_prefix_sums()
        answers = np.zeros(num_queries)
        for level_x, x_level_runs in enumerate(runs_x, start=1):
            x_run_pair = (x_level_runs[0:2], x_level_runs[2:4])
            for level_y, y_level_runs in enumerate(runs_y, start=1):
                prefix = prefixes[(level_x, level_y)]
                for x_lo, x_hi in x_run_pair:
                    for y_lo, y_hi in (y_level_runs[0:2], y_level_runs[2:4]):
                        # Empty runs are encoded (0, -1): all four gathers
                        # land on row/column 0 and cancel to exactly 0.0.
                        answers += (
                            prefix[x_hi + 1, y_hi + 1]
                            - prefix[x_lo, y_hi + 1]
                            - prefix[x_hi + 1, y_lo]
                            + prefix[x_lo, y_lo]
                        )
        return answers

    def rectangle_query(self, x_range: Tuple[int, int], y_range: Tuple[int, int]) -> float:
        """Estimated fraction of users inside one axis-aligned rectangle.

        Thin wrapper over :meth:`rectangle_queries` on a one-element
        workload (same canonical decomposition, same grid cells).
        """
        return float(
            self.rectangle_queries(
                np.asarray([x_range[0]], np.int64),
                np.asarray([x_range[1]], np.int64),
                np.asarray([y_range[0]], np.int64),
                np.asarray([y_range[1]], np.int64),
            )[0]
        )


class Grid2DClient(DecompositionClient):
    """User-side encoder of the 2-D grid: sample a level pair, report the cell.

    ``encode_batch`` takes an ``(N, 2)`` array of private ``(x, y)``
    coordinate pairs; each user samples one pair of per-axis tree levels
    and reports the one-hot vector of her node-pair cell through the
    frequency oracle.  Thin instantiation of the generic engine on a
    :class:`~repro.core.decomposition.Grid2DDecomposition`.
    """


class Grid2DServer(DecompositionServer):
    """Aggregator of the 2-D grid: one oracle accumulator per level pair.

    Fully mergeable and serializable like every decomposition server:
    shards of a report stream combine exactly in any order, and
    ``to_bytes()`` / :func:`~repro.core.session.load_server` round-trip the
    state (protocol configuration included) across processes.  Rectangle
    estimators build from any state of this configuration, including a
    merged window of epoch shards (``protocol.estimator_from_state``,
    the path :meth:`repro.engine.Engine.estimator` takes for grids too).
    """


class HierarchicalGrid2D(DecompositionRoles):
    """LDP protocol for 2-D rectangle queries via per-axis hierarchies.

    Parameters
    ----------
    domain_size_x, domain_size_y:
        Sizes of the two axes.
    epsilon:
        Privacy budget (each user sends a single report).
    branching:
        Fan-out of both per-axis trees.
    oracle:
        Frequency-oracle handle used for the node-pair report.
    postprocess:
        Post-processing pipeline applied to the level-pair grids at
        assembly time -- ``"none"`` (default), ``"clip"``, ``"norm_sub"``,
        or ``"grid_consistency"`` (reconcile each grid against shared
        per-axis marginals), ``"+"``-combinable.
    """

    def __init__(
        self,
        domain_size_x: int,
        domain_size_y: int,
        epsilon: float,
        branching: int = 2,
        oracle: str = "hrr",
        postprocess: PipelineLike = None,
    ) -> None:
        self._domain_x = Domain(int(domain_size_x))
        self._domain_y = Domain(int(domain_size_y))
        self._privacy = PrivacyParams(float(epsilon))
        self._tree_x = DomainTree(self._domain_x.size, branching)
        self._tree_y = DomainTree(self._domain_y.size, branching)
        self._oracle_name = oracle.strip().lower()
        # Validate eagerly so bad pipeline strings fail at construction.
        self._pipeline = resolve_postprocess(postprocess, GRID)
        self._postprocess_arg = None if postprocess is None else self._pipeline.spec
        self.name = f"Grid2D{self._oracle_name.upper()}"

    @classmethod
    def from_registry(
        cls,
        domain_size: int,
        epsilon: float,
        domain_size_y: Optional[int] = None,
        branching: int = 2,
        oracle: str = "hrr",
        postprocess: PipelineLike = None,
    ) -> "HierarchicalGrid2D":
        """Registry adapter: ``make_protocol`` passes one leading domain size.

        ``domain_size`` is the x-axis size; ``domain_size_y`` defaults to a
        square grid.  This is also the signature :func:`repro.make_protocol`
        and :func:`~repro.core.session.protocol_from_spec` rebuild from.
        """
        if domain_size_y is None:
            domain_size_y = domain_size
        return cls(domain_size, domain_size_y, epsilon, branching, oracle, postprocess)

    @property
    def epsilon(self) -> float:
        """The privacy budget."""
        return self._privacy.epsilon

    @property
    def domain_size_x(self) -> int:
        """Size of the x axis."""
        return self._domain_x.size

    @property
    def domain_size_y(self) -> int:
        """Size of the y axis."""
        return self._domain_y.size

    @property
    def branching(self) -> int:
        """Per-axis tree fan-out."""
        return self._tree_x.branching

    @property
    def oracle_name(self) -> str:
        """Handle of the node-pair frequency oracle."""
        return self._oracle_name

    @property
    def postprocess(self) -> Optional[str]:
        """Registry spelling of the post-processing pipeline (None = none)."""
        return self._postprocess_arg

    def _level_pairs(self) -> List[Tuple[int, int]]:
        return self.decomposition().level_pairs

    # ------------------------------------------------------------------ #
    # client / server roles
    # ------------------------------------------------------------------ #
    def _build_decomposition(self) -> Grid2DDecomposition:
        return Grid2DDecomposition(
            self._tree_x,
            self._tree_y,
            self.epsilon,
            self._oracle_name,
            postprocess=self._pipeline,
        )

    def client(self) -> Grid2DClient:
        return Grid2DClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> Grid2DServer:
        return Grid2DServer(self, state)

    def spec(self) -> dict:
        spec = {
            "name": "grid2d",
            "domain_size": self.domain_size_x,
            "epsilon": self.epsilon,
            "domain_size_y": self.domain_size_y,
            "branching": self.branching,
            "oracle": self._oracle_name,
        }
        if self._postprocess_arg is not None:
            # Written only when set, so pre-pipeline specs (and the states
            # that embed them) stay byte-identical.
            spec["postprocess"] = self._postprocess_arg
        return spec

    def run(
        self, items_x: np.ndarray, items_y: np.ndarray, rng: RngLike = None
    ) -> Grid2DEstimator:
        """Execute the protocol on paired private coordinates.

        Thin wrapper over the streaming roles -- one client encodes the
        whole population as an ``(N, 2)`` pair batch, one server ingests
        the report and finalizes -- kept for scripts that do not need
        sharded or incremental aggregation.
        """
        rng = ensure_rng(rng)
        # Per-axis domain validation happens once, inside the client's
        # encode_batch; only the pairing checks live here.
        items_x = np.asarray(items_x)
        items_y = np.asarray(items_y)
        if len(items_x) != len(items_y):
            raise ProtocolUsageError("items_x and items_y must have the same length")
        if len(items_x) == 0:
            raise ProtocolUsageError("cannot run the protocol with zero users")
        pairs = np.stack([items_x, items_y], axis=1)
        server = self.server()
        server.ingest(self.client().encode_batch(pairs, rng=rng))
        return server.finalize()

    def describe(self) -> str:
        """Single-line description used in experiment reports."""
        return (
            f"{self.name}(Dx={self.domain_size_x}, Dy={self.domain_size_y}, "
            f"eps={self.epsilon:g})"
        )

    def theoretical_rectangle_variance(self, n_users: int) -> float:
        """Worst-case variance bound ``O(log^4 D)`` sketched in Section 6."""
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        psi = standard_oracle_variance(self.epsilon)
        pairs = len(self._level_pairs())
        nodes_per_level = 2 * (self.branching - 1)
        height_x = self._tree_x.height
        height_y = self._tree_y.height
        return (nodes_per_level**2) * height_x * height_y * pairs * psi / n_users
