"""Window selection over an engine's epochs.

A *window* names the subset of an engine's epochs a query should see.
Three spellings are accepted everywhere a ``window=`` parameter appears:

* :data:`ALL` (or the string ``"all"``, or ``None``) -- every epoch;
* :func:`last` (or a bare positive ``int`` ``k``) -- the ``k`` most recent
  epochs in epoch-key order;
* an explicit iterable of epoch keys -- exactly those epochs.

Resolution always returns epoch keys in ascending order, so the merge that
materialises a window is deterministic regardless of how the window was
spelled.  Malformed or unsatisfiable selections -- empty windows, unknown
epoch keys, a ``last:K`` asking for more epochs than exist -- raise
:class:`~repro.core.exceptions.InvalidWindowError`, which is both a
``ProtocolUsageError`` and a ``ValueError`` (never a bare ``KeyError``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.exceptions import InvalidWindowError

#: Sentinel selecting every epoch (the default window).
ALL = "all"


@dataclass(frozen=True)
class LastK:
    """A sliding window over the ``k`` most recent epochs."""

    k: int

    def __post_init__(self) -> None:
        if int(self.k) < 1:
            raise InvalidWindowError(
                f"a last-k window needs k >= 1 epochs, got {self.k}"
            )
        object.__setattr__(self, "k", int(self.k))


def last(k: int) -> LastK:
    """The sliding window over the ``k`` most recent epochs."""
    return LastK(k)


WindowLike = Union[None, str, int, LastK, Iterable[int]]


def resolve_window(window: WindowLike, epochs: Sequence[int]) -> List[int]:
    """Resolve a window spelling against the available epoch keys.

    ``epochs`` must already be in ascending order (the engine guarantees
    this).  Returns the selected keys in ascending order; raises
    :class:`~repro.core.exceptions.InvalidWindowError` (a
    ``ProtocolUsageError`` *and* a ``ValueError``) for unknown epochs,
    malformed or empty windows, a ``last:K`` window larger than the number
    of held epochs, or a selection against an engine with no epochs at all.
    """
    epochs = list(epochs)
    if not epochs:
        raise InvalidWindowError(
            "the engine holds no epochs yet; open a session and ingest "
            "reports before querying"
        )
    if window is None or (isinstance(window, str) and window.lower() == ALL):
        return epochs
    if isinstance(window, LastK):
        if window.k > len(epochs):
            raise InvalidWindowError(
                f"a last:{window.k} window needs {window.k} epochs but the "
                f"engine holds only {len(epochs)}; available epochs: {epochs}"
            )
        return epochs[-window.k :]
    if isinstance(window, bool):
        # bool is an int subclass; a True/False window is always a mistake.
        raise InvalidWindowError(f"invalid window {window!r}")
    if isinstance(window, int):
        return resolve_window(LastK(window), epochs)
    if isinstance(window, str):
        raise InvalidWindowError(
            f"unknown window string {window!r}; expected 'all', an int k "
            "(last k epochs), repro.engine.last(k), or an iterable of "
            "epoch keys"
        )
    try:
        requested = [int(epoch) for epoch in window]
    except (TypeError, ValueError) as exc:
        raise InvalidWindowError(f"invalid window {window!r}") from exc
    if not requested:
        raise InvalidWindowError("an explicit window must name at least one epoch")
    available = set(epochs)
    missing = sorted(set(requested) - available)
    if missing:
        raise InvalidWindowError(
            f"window names unknown epoch(s) {missing}; available epochs: {epochs}"
        )
    selected = set(requested)
    return [epoch for epoch in epochs if epoch in selected]


def split_window(
    selected: Sequence[int], live: Iterable[int]
) -> "tuple[List[int], List[int]]":
    """Partition resolved window keys into ``(live, sealed)`` halves.

    ``selected`` is the output of :func:`resolve_window`; ``live`` names
    the epochs materialized in RAM.  Everything else in the window must
    come from the out-of-core store.  Both halves preserve the ascending
    order of ``selected``, so the exact-merge plan stays deterministic.
    """
    live_set = set(live)
    in_ram = [epoch for epoch in selected if epoch in live_set]
    sealed = [epoch for epoch in selected if epoch not in live_set]
    return in_ram, sealed


#: One node of a window cover plan: ``("epoch", key)`` reads a single
#: leaf segment; ``("agg", level, start)`` reads the pre-merged aggregate
#: over the ``2**level`` consecutive epochs ``[start, start + 2**level)``.
PlanNode = Tuple

#: Node-kind tags of :func:`plan_cover` output.
PLAN_EPOCH = "epoch"
PLAN_AGGREGATE = "agg"


def plan_cover(
    selected: Sequence[int],
    has_aggregate: Optional[Callable[[int, int], bool]] = None,
    max_level: int = 0,
) -> List[PlanNode]:
    """Cover a resolved window with aggregate blocks plus leaf epochs.

    ``selected`` is ascending epoch keys (the output of
    :func:`resolve_window`, or its sealed half).  The cover is the
    classic aligned power-of-two decomposition: within every maximal
    *contiguous* run of keys, greedily take the largest available
    aggregate block ``[start, start + 2**level)`` that is aligned
    (``start % 2**level == 0``), fits inside the run, and exists
    according to ``has_aggregate(level, start)``; fall back to single
    leaf epochs otherwise.  Non-contiguous selections therefore
    decompose run by run, and an explicit window of scattered keys
    degrades gracefully to all-leaf nodes.

    The result is a disjoint, in-order cover: concatenating the epochs
    of every node reproduces ``selected`` exactly, which is what keeps a
    planned query bit-identical to the naive per-epoch sum.  For a
    contiguous ``last:k`` window with a full hierarchy the cover has
    O(log k) nodes.
    """
    nodes: List[PlanNode] = []
    keys = [int(epoch) for epoch in selected]
    if has_aggregate is None:
        max_level = 0
    index = 0
    total = len(keys)
    while index < total:
        # Extend the maximal contiguous run starting at keys[index].
        run_end = index
        while run_end + 1 < total and keys[run_end + 1] == keys[run_end] + 1:
            run_end += 1
        position = keys[index]
        run_hi = keys[run_end]
        while position <= run_hi:
            chosen = 0
            for level in range(int(max_level), 0, -1):
                size = 1 << level
                if (
                    position % size == 0
                    and position + size - 1 <= run_hi
                    and has_aggregate(level, position)
                ):
                    chosen = level
                    break
            if chosen:
                nodes.append((PLAN_AGGREGATE, chosen, position))
                position += 1 << chosen
            else:
                nodes.append((PLAN_EPOCH, position))
                position += 1
        index = run_end + 1
    return nodes


def plan_epochs(nodes: Iterable[PlanNode]) -> List[int]:
    """Flatten a cover plan back into the epoch keys it reads."""
    epochs: List[int] = []
    for node in nodes:
        if node[0] == PLAN_AGGREGATE:
            _, level, start = node
            epochs.extend(range(start, start + (1 << level)))
        else:
            epochs.append(node[1])
    return epochs


def parse_window(text: str) -> WindowLike:
    """Parse a CLI window spelling: ``all``, ``last:K``, or ``0,2,5``."""
    text = (text or "").strip().lower()
    if not text or text == ALL:
        return ALL
    if text.startswith("last:"):
        try:
            return last(int(text[len("last:") :]))
        except InvalidWindowError:
            # A well-formed but unsatisfiable K (e.g. last:0): keep the
            # specific message rather than reporting a parse failure.
            raise
        except ValueError as exc:
            raise ValueError(f"malformed window {text!r}; expected last:K") from exc
    try:
        return [int(piece) for piece in text.split(",") if piece.strip()]
    except ValueError as exc:
        raise ValueError(
            f"malformed window {text!r}; expected 'all', 'last:K', or a "
            "comma separated list of epoch keys"
        ) from exc
