"""Out-of-core epoch store: one mmap-backed segment file per sealed epoch.

The :class:`~repro.engine.Engine` keeps every epoch's accumulator in RAM
and rewrites one monolithic checkpoint envelope on every
``checkpoint()``.  That is fine for a handful of epochs; a long-running
service holding months of hourly epochs is memory-bound (RSS grows with
*total* epochs, not the queried window) and checkpoint-bound (the whole
envelope is rewritten even when one epoch changed).  :class:`EpochStore`
is the out-of-core backend that fixes both:

* **One segment per epoch.**  Each sealed epoch lives in its own
  CRC-framed file (``epoch-%08d.seg``, see
  :func:`~repro.core.serialization.pack_epoch_segment`) holding the
  epoch's packed accumulator state plus an optional *pushdown* region.
  Segments are written once (tmp + rename + fsync) and never mutated.
* **A versioned manifest.**  ``MANIFEST.json`` records the store format,
  the protocol spec and its hash, and one entry per epoch (file name,
  report count, byte size, pushdown availability, dirty bit).  The
  manifest is always rewritten *after* the segments it references and
  fsync'd, so a crash mid-checkpoint leaves the previous consistent
  manifest in place.
* **Query pushdown.**  For states whose children are all plain integer
  :class:`~repro.frequency_oracles.base.OracleAccumulator` vectors, the
  segment stores those int64 vectors raw and 8-byte aligned.  A windowed
  query then sums the mapped vectors of the selected segments
  elementwise -- exactly the accumulator merge, because integer addition
  is associative and commutative -- without decoding a single envelope,
  so ``estimator(window=last(k))`` over sealed epochs is bit-identical
  to the in-RAM merge path at a fraction of the work.  States with
  non-integer children (SHE's exact-summation partials) fall back to a
  full load-and-merge, which is still exact.
* **Aggregate segments.**  Sealed segments are immutable, so their sums
  can be materialized once and reused: level-``L`` aggregate segments
  (``agg-L%d-%08d.seg``, same REPROSEG framing, tracked in the manifest)
  hold the elementwise int64 sum of the ``2**L`` consecutive epochs
  ``[S, S + 2**L)`` for aligned starts (``S % 2**L == 0``).  They are
  built incrementally as blocks complete (at seal time and on
  ``checkpoint()``) and the window planner
  (:func:`repro.engine.windows.plan_cover`) covers a contiguous window
  with O(log k) aggregate + leaf nodes instead of k leaves.  Aggregates
  are *derived* data -- rebuildable from the leaves at any time -- so
  they are written without fsync, dropped whenever a covered epoch goes
  dirty, and a corrupt or missing aggregate quietly falls back to its
  leaves instead of failing the query.

Every structural failure -- a torn segment tail, a manifest/segment spec
mismatch, a missing segment file, a monolithic checkpoint where a store
directory was expected -- raises
:class:`~repro.core.serialization.SerializationError` naming the epoch
and file involved.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import resolve_backend
from repro.core.serialization import (
    MAGIC,
    MAGIC_V2,
    SerializationError,
    pack_epoch_segment,
    read_epoch_segment,
    segment_pushdown_children,
    segment_state_bytes,
)
from repro.core.session import AccumulatorState, CompositeAccumulator
from repro.engine.windows import PLAN_AGGREGATE, PLAN_EPOCH, PlanNode, plan_cover
from repro.frequency_oracles.base import OracleAccumulator

#: ``manifest_kind`` tag of an epoch-store manifest.
MANIFEST_KIND = "epoch-store"

#: Layout version of the manifest contents.
MANIFEST_FORMAT = 1

#: File name of the store manifest inside the store directory.
MANIFEST_NAME = "MANIFEST.json"

#: Deepest aggregate level maintained by default: 2**10 = 1024 epochs per
#: top block, so a month of hourly epochs collapses into a handful of
#: nodes while the per-seal bookkeeping stays trivial.
DEFAULT_MAX_AGGREGATE_LEVEL = 10


class _AggregateUnusable(Exception):
    """Internal: one aggregate segment could not be read during a gather.

    Aggregates are derived data, so this is *not* a store corruption:
    the planner drops the aggregate and re-covers the window from its
    leaves (or smaller aggregates).  Never escapes the store.
    """

    def __init__(self, key: Tuple[int, int], cause: Exception) -> None:
        super().__init__(f"aggregate {key} unusable: {cause}")
        self.key = key

#: Spec keys that never affect the accumulated statistics (see
#: ``repro.core.session._ASSEMBLY_ONLY_SPEC_KEYS``): two stores whose
#: specs differ only here hold exchangeable segments.
_ASSEMBLY_ONLY_SPEC_KEYS = ("postprocess", "consistency")


def spec_fingerprint(spec: dict) -> str:
    """A stable hash of a protocol spec, ignoring assembly-only keys.

    Post-processing runs at finalize time only, so segments written
    under ``postprocess="none"`` are valid for a query under
    ``"consistency+norm_sub"`` and vice versa -- the fingerprint treats
    those specs as identical, mirroring the engine's merge rules.
    """
    comparable = {
        key: value
        for key, value in dict(spec).items()
        if key not in _ASSEMBLY_ONLY_SPEC_KEYS
    }
    encoded = json.dumps(comparable, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def _fsync_directory(path: str) -> None:
    """Force the directory entry updates (renames) themselves to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def _pushdown_description(state: CompositeAccumulator) -> Optional[dict]:
    """The plain-data pushdown region for ``state``, or ``None``.

    Only states whose children are all *plain* integer oracle
    accumulators are eligible: a subclass (e.g. SHE's float-partial
    exact summation) has statistics a raw int64 vector sum cannot
    reproduce, so those segments simply omit the region and queries fall
    back to full state decoding.
    """
    if not isinstance(state, CompositeAccumulator):
        return None
    children = []
    for child in state.children:
        if type(child) is not OracleAccumulator:
            return None
        children.append(
            {
                "oracle_kind": child.oracle_kind,
                "config": child.config,
                "n_reports": child.n_reports,
                "vectors": child.vectors,
            }
        )
    return {
        "label": state.label,
        "config": state.config,
        "n_users": state.n_users,
        "children": children,
    }


class EpochStore:
    """Directory of per-epoch segment files plus a versioned manifest.

    Open with a ``spec`` to create the store on first use (and validate
    on every later open); open with ``spec=None`` and ``create=False``
    to attach to an existing store and take the protocol spec *from* the
    manifest.  The store caches validated memory maps per epoch, so the
    CRC of each segment is checked exactly once per attach.
    """

    def __init__(
        self,
        directory: str,
        spec: Optional[dict] = None,
        *,
        create: bool = True,
        kernel_backend: Optional[object] = None,
        max_aggregate_level: int = DEFAULT_MAX_AGGREGATE_LEVEL,
    ) -> None:
        directory = str(directory)
        if os.path.isfile(directory):
            self._reject_regular_file(directory)
        self.directory = directory
        self._entries: Dict[int, dict] = {}
        self._maps: Dict[int, Tuple[mmap.mmap, dict, int]] = {}
        self._segments_written = 0
        # Aggregate segments are keyed (level, start); their maps are
        # cached separately from the per-epoch ones.
        self._aggregates: Dict[Tuple[int, int], dict] = {}
        self._agg_maps: Dict[Tuple[int, int], Tuple[mmap.mmap, dict, int]] = {}
        self._aggregates_written = 0
        self._max_aggregate_level = max(0, int(max_aggregate_level))
        self._manifest_dirty = False
        self._kernels = resolve_backend(kernel_backend)
        manifest_path = self.manifest_path
        if os.path.exists(manifest_path):
            self._load_manifest(manifest_path)
            if spec is not None and spec_fingerprint(spec) != self._spec_hash:
                raise SerializationError(
                    f"epoch store {directory} was written for a different "
                    f"protocol configuration: manifest spec hash "
                    f"{self._spec_hash} != {spec_fingerprint(spec)} for "
                    f"spec {spec}"
                )
        else:
            if not create:
                raise SerializationError(
                    f"no epoch store at {directory}: {MANIFEST_NAME} is missing"
                )
            if spec is None:
                raise SerializationError(
                    f"creating a fresh epoch store at {directory} requires a "
                    "protocol spec"
                )
            self._spec = dict(spec)
            self._spec_hash = spec_fingerprint(spec)
            os.makedirs(directory, exist_ok=True)
            self.save_manifest()

    @staticmethod
    def _reject_regular_file(path: str) -> None:
        """A store path that is a file is a usage error; name the likely fix."""
        try:
            with open(path, "rb") as handle:
                magic = handle.read(len(MAGIC_V2))
        except OSError:
            magic = b""
        if magic in (MAGIC, MAGIC_V2):
            raise SerializationError(
                f"{path} is a monolithic engine checkpoint, not an epoch "
                "store directory; restore it with Engine.restore(path) and "
                "attach a store directory to migrate it"
            )
        raise SerializationError(
            f"{path} is a regular file, not an epoch store directory"
        )

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def spec(self) -> dict:
        """The protocol spec recorded in the manifest."""
        return dict(self._spec)

    @property
    def spec_hash(self) -> str:
        """The manifest's fingerprint of the protocol spec."""
        return self._spec_hash

    @property
    def segments_written(self) -> int:
        """Segments written since this store object was opened."""
        return self._segments_written

    def _load_manifest(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"corrupt epoch store manifest {path}: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("manifest_kind") != MANIFEST_KIND
        ):
            raise SerializationError(
                f"corrupt epoch store manifest {path}: manifest_kind "
                f"{manifest.get('manifest_kind') if isinstance(manifest, dict) else None!r} "
                f"is not {MANIFEST_KIND!r}"
            )
        if int(manifest.get("format", 0)) != MANIFEST_FORMAT:
            raise SerializationError(
                f"epoch store manifest format {manifest.get('format')!r} is "
                f"not supported by this build (expected {MANIFEST_FORMAT})"
            )
        spec = manifest.get("protocol")
        if not isinstance(spec, dict):
            raise SerializationError(
                f"corrupt epoch store manifest {path}: no protocol spec"
            )
        self._spec = spec
        self._spec_hash = str(manifest.get("spec_hash", ""))
        if self._spec_hash != spec_fingerprint(spec):
            raise SerializationError(
                f"corrupt epoch store manifest {path}: recorded spec hash "
                f"{self._spec_hash} does not match its own protocol spec"
            )
        entries = manifest.get("epochs", {})
        if not isinstance(entries, dict):
            raise SerializationError(
                f"corrupt epoch store manifest {path}: 'epochs' must be an object"
            )
        self._entries = {}
        for key, entry in entries.items():
            try:
                epoch = int(key)
            except (TypeError, ValueError):
                raise SerializationError(
                    f"corrupt epoch store manifest {path}: epoch key {key!r} "
                    "is not an integer"
                ) from None
            if not isinstance(entry, dict) or "file" not in entry:
                raise SerializationError(
                    f"corrupt epoch store manifest {path}: entry for epoch "
                    f"{epoch} does not name its segment file"
                )
            self._entries[epoch] = dict(entry)
        aggregates = manifest.get("aggregates", {})
        if not isinstance(aggregates, dict):
            raise SerializationError(
                f"corrupt epoch store manifest {path}: 'aggregates' must be "
                "an object"
            )
        self._aggregates = {}
        for key, entry in aggregates.items():
            try:
                level_text, start_text = str(key).split(":", 1)
                level, start = int(level_text), int(start_text)
            except ValueError:
                raise SerializationError(
                    f"corrupt epoch store manifest {path}: aggregate key "
                    f"{key!r} is not 'level:start'"
                ) from None
            if not isinstance(entry, dict) or "file" not in entry:
                raise SerializationError(
                    f"corrupt epoch store manifest {path}: aggregate entry "
                    f"{key!r} does not name its segment file"
                )
            self._aggregates[(level, start)] = dict(entry)

    def save_manifest(self) -> None:
        """Atomically rewrite and fsync the manifest (always written last).

        Segment writes happen first; only once every referenced segment
        is durable does the manifest rename land, so a crash at any
        point leaves a manifest whose entries all point at valid files.
        """
        from repro import __version__  # deferred: repro imports engine

        manifest = {
            "manifest_kind": MANIFEST_KIND,
            "format": MANIFEST_FORMAT,
            "version": __version__,
            "protocol": self._spec,
            "spec_hash": self._spec_hash,
            "epochs": {
                str(epoch): self._entries[epoch] for epoch in sorted(self._entries)
            },
        }
        if self._aggregates:
            manifest["aggregates"] = {
                f"{level}:{start}": self._aggregates[(level, start)]
                for level, start in sorted(self._aggregates)
            }
        # Compact separators keep the C encoder engaged (indent= falls back
        # to the pure-Python one), which matters at thousands of epochs.
        encoded = json.dumps(
            manifest, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        temp_path = f"{self.manifest_path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "wb") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.manifest_path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
        _fsync_directory(self.directory)
        self._manifest_dirty = False

    @property
    def manifest_dirty(self) -> bool:
        """Whether the in-memory manifest has outrun MANIFEST.json.

        Set by segment writes, dirty marks and aggregate builds/drops;
        cleared by :meth:`save_manifest`.  A fully clean ``checkpoint()``
        consults this to skip the tmp+fsync+rename cycle entirely.
        """
        return self._manifest_dirty

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def epochs(self) -> List[int]:
        """Epoch keys with a manifest entry, in ascending order."""
        return sorted(self._entries)

    def __contains__(self, epoch: int) -> bool:
        return int(epoch) in self._entries

    def has_segment(self, epoch: int) -> bool:
        """Whether ``epoch`` has a clean (non-dirty) manifest entry."""
        entry = self._entries.get(int(epoch))
        return entry is not None and not entry.get("dirty", False)

    def n_reports(self, epoch: int) -> int:
        """The report count the manifest records for ``epoch``."""
        return int(self._entry(epoch).get("n_reports", 0))

    def on_disk_size(self, epoch: int) -> int:
        """The segment byte size the manifest records for ``epoch``."""
        return int(self._entry(epoch).get("size", 0))

    def total_bytes(self) -> int:
        """Total on-disk segment bytes across every epoch."""
        return sum(int(entry.get("size", 0)) for entry in self._entries.values())

    def supports_pushdown(self, epoch: int) -> bool:
        """Whether ``epoch``'s segment carries a pushdown region."""
        return bool(self._entry(epoch).get("pushdown", False))

    def _entry(self, epoch: int) -> dict:
        entry = self._entries.get(int(epoch))
        if entry is None:
            raise SerializationError(
                f"epoch {int(epoch)} is not in the store at {self.directory}; "
                f"known epochs: {self.epochs()}"
            )
        return entry

    def segment_path(self, epoch: int) -> str:
        return os.path.join(self.directory, self._entry(epoch)["file"])

    # ------------------------------------------------------------------ #
    # segment I/O
    # ------------------------------------------------------------------ #
    def write_segment(self, epoch: int, state: CompositeAccumulator) -> str:
        """Persist one epoch's accumulator as its own durable segment.

        The segment is staged in a temporary sibling, fsync'd and
        renamed into place, so a crash mid-write never damages an
        existing segment.  The in-memory manifest entry is updated
        (clean) but *not* saved -- callers batch segment writes and call
        :meth:`save_manifest` once, after every segment is durable.
        """
        epoch = int(epoch)
        pushdown = _pushdown_description(state)
        blob = pack_epoch_segment(
            epoch,
            self._spec_hash,
            state.to_bytes(),
            n_reports=state.n_reports,
            pushdown=pushdown,
        )
        name = f"epoch-{epoch:08d}.seg"
        path = os.path.join(self.directory, name)
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
        self._drop_map(epoch)
        self._entries[epoch] = {
            "file": name,
            "n_reports": int(state.n_reports),
            "size": len(blob),
            "pushdown": pushdown is not None,
            "dirty": False,
        }
        self._segments_written += 1
        self._manifest_dirty = True
        # A rewritten leaf invalidates every aggregate that folded the old
        # contents in; they are rebuilt lazily once the block is clean.
        self._invalidate_aggregates(epoch)
        return path

    def mark_dirty(self, epoch: int) -> None:
        """Record that ``epoch``'s live state has outrun its segment.

        Also drops every aggregate covering the epoch: an aggregate is
        only valid while all of its leaves are clean.  Idempotent (and
        cheap) once the entry is already dirty, so per-report mutation
        hooks can call it freely.
        """
        entry = self._entries.get(int(epoch))
        if entry is not None and not entry.get("dirty", False):
            entry["dirty"] = True
            self._manifest_dirty = True
            self._invalidate_aggregates(int(epoch))

    # ------------------------------------------------------------------ #
    # aggregate segments
    # ------------------------------------------------------------------ #
    @property
    def aggregates_written(self) -> int:
        """Aggregate segments written since this store object was opened.

        Counted separately from :attr:`segments_written`, which remains
        the number of *leaf* (per-epoch) writes -- the incremental
        checkpoint invariant "segments written == dirty epochs" must not
        be disturbed by derived-data builds.
        """
        return self._aggregates_written

    @property
    def max_aggregate_level(self) -> int:
        """Deepest aggregate level this store maintains (0 disables)."""
        return self._max_aggregate_level

    def aggregate_keys(self) -> List[Tuple[int, int]]:
        """Present aggregates as sorted ``(level, start)`` pairs."""
        return sorted(self._aggregates)

    def has_aggregate(self, level: int, start: int) -> bool:
        """Whether the aggregate block ``(level, start)`` is materialized."""
        return (int(level), int(start)) in self._aggregates

    def aggregate_bytes(self) -> int:
        """Total on-disk bytes across every aggregate segment."""
        return sum(int(entry.get("size", 0)) for entry in self._aggregates.values())

    def aggregate_stats(self) -> dict:
        """Summary of the aggregate hierarchy for observability surfaces."""
        levels: Dict[str, int] = {}
        for level, _ in self._aggregates:
            levels[str(level)] = levels.get(str(level), 0) + 1
        return {
            "segments": len(self._aggregates),
            "bytes": self.aggregate_bytes(),
            "max_level": self._max_aggregate_level,
            "levels": {key: levels[key] for key in sorted(levels, key=int)},
        }

    def aggregate_entries(self) -> List[dict]:
        """One descriptive dict per aggregate, sorted by (level, start)."""
        return [
            {
                "level": level,
                "start": start,
                "count": 1 << level,
                "file": entry.get("file"),
                "n_reports": int(entry.get("n_reports", 0)),
                "size": int(entry.get("size", 0)),
            }
            for (level, start), entry in sorted(self._aggregates.items())
        ]

    def _aggregate_eligible(self, epoch: int) -> bool:
        """Whether ``epoch`` may participate in an aggregate block."""
        entry = self._entries.get(int(epoch))
        return (
            entry is not None
            and not entry.get("dirty", False)
            and bool(entry.get("pushdown", False))
        )

    def build_aggregates(self, epochs: Optional[Sequence[int]] = None) -> int:
        """Materialize every missing aggregate block that is now complete.

        With ``epochs`` (the incremental form used at seal time), only
        blocks covering those epochs are considered; without it, the
        whole store is swept (the ``checkpoint()`` form).  A block is
        built when every leaf in it has a clean, pushdown-capable
        segment; levels build bottom-up so a level-L block sums its two
        level-(L-1) halves rather than 2**L leaves.  Returns the number
        of aggregates written.
        """
        if self._max_aggregate_level < 1:
            return 0
        if epochs is None:
            candidates = [
                epoch for epoch in self._entries if self._aggregate_eligible(epoch)
            ]
        else:
            candidates = [int(epoch) for epoch in epochs]
        built = 0
        for level in range(1, self._max_aggregate_level + 1):
            size = 1 << level
            starts = sorted({(epoch // size) * size for epoch in candidates})
            for start in starts:
                if (level, start) in self._aggregates:
                    continue
                # Both ends first: during sequential sealing the block's
                # last epoch is almost always the missing one, so this
                # constant-time probe skips the full scan.
                if not (
                    self._aggregate_eligible(start)
                    and self._aggregate_eligible(start + size - 1)
                ):
                    continue
                if not all(
                    self._aggregate_eligible(epoch)
                    for epoch in range(start, start + size)
                ):
                    continue
                self._write_aggregate(level, start)
                built += 1
        return built

    def _write_aggregate(self, level: int, start: int) -> str:
        """Materialize one aggregate block from its children.

        The merged state is gathered through :meth:`pushdown_state`, so
        a level-L build reuses the level-(L-1) aggregates the bottom-up
        sweep just wrote.  Unlike leaf segments, aggregates are staged
        and renamed but **not** fsync'd: they are derived data, cheap to
        rebuild and validated by CRC on read, and skipping the fsync
        keeps incremental checkpoints O(dirty) in *durable* writes.
        """
        size = 1 << level
        state = self.pushdown_state(range(start, start + size))
        if state is None:  # pragma: no cover - guarded by eligibility checks
            raise SerializationError(
                f"aggregate block L{level} @ {start} has no pushdown-capable "
                "cover"
            )
        blob = pack_epoch_segment(
            start,
            self._spec_hash,
            state.to_bytes(),
            n_reports=state.n_reports,
            pushdown=_pushdown_description(state),
            aggregate={"level": level, "start": start, "count": size},
        )
        name = f"agg-L{level}-{start:08d}.seg"
        path = os.path.join(self.directory, name)
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
        key = (level, start)
        self._drop_agg_map(key)
        self._aggregates[key] = {
            "file": name,
            "level": level,
            "start": start,
            "count": size,
            "n_reports": int(state.n_reports),
            "size": len(blob),
        }
        self._aggregates_written += 1
        self._manifest_dirty = True
        return path

    def _invalidate_aggregates(self, epoch: int) -> None:
        """Drop every aggregate whose block covers ``epoch``."""
        if not self._aggregates:
            return
        doomed = [
            key
            for key in self._aggregates
            if key[1] <= epoch < key[1] + (1 << key[0])
        ]
        for key in doomed:
            self._discard_aggregate(key)

    def _discard_aggregate(self, key: Tuple[int, int]) -> None:
        """Forget one aggregate and best-effort unlink its file."""
        entry = self._aggregates.pop(key, None)
        if entry is None:
            return
        self._drop_agg_map(key)
        self._manifest_dirty = True
        path = os.path.join(self.directory, str(entry.get("file")))
        try:
            os.unlink(path)
        except OSError:
            pass

    def _drop_agg_map(self, key: Tuple[int, int]) -> None:
        cached = self._agg_maps.pop(key, None)
        if cached is not None:
            self._close_map(cached[0])

    def _map_aggregate(self, level: int, start: int) -> Tuple[mmap.mmap, dict, int]:
        """Memory-map and validate one aggregate segment (cached)."""
        key = (int(level), int(start))
        cached = self._agg_maps.get(key)
        if cached is not None:
            return cached
        entry = self._aggregates.get(key)
        if entry is None:
            raise SerializationError(
                f"aggregate L{key[0]} @ {key[1]} is not in the store at "
                f"{self.directory}"
            )
        path = os.path.join(self.directory, str(entry["file"]))
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise SerializationError(
                f"aggregate segment {path} is missing: {exc}"
            ) from exc
        with handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                raise SerializationError(
                    f"could not map aggregate segment {path}: {exc}"
                ) from exc
        try:
            header, body_offset = read_epoch_segment(mapped)
            described = header.get("aggregate")
            if (
                not isinstance(described, dict)
                or int(described.get("level", -1)) != key[0]
                or int(described.get("start", ~key[1])) != key[1]
                or int(described.get("count", -1)) != 1 << key[0]
            ):
                raise SerializationError(
                    f"aggregate segment {path} describes block "
                    f"{described!r}, not L{key[0]} @ {key[1]}"
                )
            if header.get("spec_hash") != self._spec_hash:
                raise SerializationError(
                    f"aggregate segment {path} was written for a different "
                    f"protocol configuration: segment spec hash "
                    f"{header.get('spec_hash')!r} != manifest spec hash "
                    f"{self._spec_hash!r}"
                )
        except SerializationError as exc:
            self._close_map(mapped)
            raise SerializationError(
                f"corrupt aggregate segment at {path}: {exc}"
            ) from exc
        except BaseException:  # pragma: no cover - resource hygiene
            self._close_map(mapped)
            raise
        self._agg_maps[key] = (mapped, header, body_offset)
        return self._agg_maps[key]

    def plan_window(
        self, epochs: Sequence[int], *, use_aggregates: bool = True
    ) -> List[PlanNode]:
        """The aggregate+leaf cover plan for a resolved sealed window."""
        keys = [int(epoch) for epoch in epochs]
        if not use_aggregates or not self._aggregates:
            return [(PLAN_EPOCH, epoch) for epoch in keys]
        return plan_cover(keys, self.has_aggregate, self._max_aggregate_level)

    def _drop_map(self, epoch: int) -> None:
        cached = self._maps.pop(int(epoch), None)
        if cached is not None:
            self._close_map(cached[0])

    @staticmethod
    def _close_map(mapped: mmap.mmap) -> None:
        """Close a map, tolerating still-exported views (GC reclaims them)."""
        try:
            mapped.close()
        except BufferError:  # pragma: no cover - depends on caller's refs
            pass

    def _map_segment(self, epoch: int) -> Tuple[mmap.mmap, dict, int]:
        """Memory-map and validate one segment (cached after first use).

        Validation -- magic, CRC over the whole file, spec hash, epoch
        stamp -- happens exactly once per mapping; every later zero-copy
        view rides on it.
        """
        epoch = int(epoch)
        cached = self._maps.get(epoch)
        if cached is not None:
            return cached
        path = self.segment_path(epoch)
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise SerializationError(
                f"segment file for epoch {epoch} is missing from the store "
                f"at {self.directory}: {exc}"
            ) from exc
        with handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError) as exc:
                raise SerializationError(
                    f"could not map segment {path} for epoch {epoch}: {exc}"
                ) from exc
        try:
            header, body_offset = read_epoch_segment(mapped)
            if int(header.get("epoch", -1)) != epoch:
                raise SerializationError(
                    f"segment {path} is stamped for epoch "
                    f"{header.get('epoch')!r}, not epoch {epoch}"
                )
            if header.get("spec_hash") != self._spec_hash:
                raise SerializationError(
                    f"segment {path} for epoch {epoch} was written for a "
                    f"different protocol configuration: segment spec hash "
                    f"{header.get('spec_hash')!r} != manifest spec hash "
                    f"{self._spec_hash!r}"
                )
        except SerializationError as exc:
            self._close_map(mapped)
            raise SerializationError(
                f"corrupt segment for epoch {epoch} at {path}: {exc}"
            ) from exc
        except BaseException:  # pragma: no cover - resource hygiene
            self._close_map(mapped)
            raise
        self._maps[epoch] = (mapped, header, body_offset)
        return self._maps[epoch]

    def read_state_bytes(self, epoch: int) -> bytes:
        """The packed v1 accumulator bytes of one sealed epoch."""
        mapped, header, body_offset = self._map_segment(epoch)
        return segment_state_bytes(mapped, header, body_offset)

    def load_state(self, epoch: int) -> CompositeAccumulator:
        """Decode one sealed epoch's full accumulator state."""
        epoch = int(epoch)
        try:
            state = AccumulatorState.from_bytes(self.read_state_bytes(epoch))
        except SerializationError as exc:
            raise SerializationError(
                f"corrupt accumulator state in segment for epoch {epoch}: {exc}"
            ) from exc
        if not isinstance(state, CompositeAccumulator):
            raise SerializationError(
                f"segment for epoch {epoch} does not hold a composite "
                f"accumulator (got {type(state).__name__})"
            )
        return state

    def pushdown_state(
        self, epochs: Sequence[int], *, use_aggregates: bool = True
    ) -> Optional[CompositeAccumulator]:
        """The exact merged state of ``epochs`` via pre-aggregated vectors.

        Plans the window as a cover of aggregate blocks plus leaf
        segments (:meth:`plan_window`), then sums the mapped int64
        sufficient-statistic vectors of every plan node elementwise with
        the backend's blocked ``column_sums`` kernel -- bit-identical to
        merging the full accumulators, since integer addition is
        associative and commutative -- and rebuilds one
        :class:`~repro.core.session.CompositeAccumulator` from the
        totals.  A contiguous window backed by a full hierarchy reads
        O(log k) segments instead of k.  Returns ``None`` when any
        selected segment lacks a pushdown region (the caller falls back
        to full load-and-merge).  An unreadable *aggregate* is dropped
        and the window re-planned from its leaves -- aggregates are
        derived data, so their corruption is repaired, not raised.
        """
        epochs = [int(epoch) for epoch in epochs]
        if not epochs:
            return None
        if not all(self.supports_pushdown(epoch) for epoch in epochs):
            return None
        while True:
            plan = self.plan_window(epochs, use_aggregates=use_aggregates)
            try:
                return self._gather_plan(plan)
            except _AggregateUnusable as exc:
                self._discard_aggregate(exc.key)

    def _gather_plan(self, plan: Sequence[PlanNode]) -> CompositeAccumulator:
        """Zero-copy gather and sum over one cover plan's segments."""
        base: Optional[dict] = None
        names: List[List[str]] = []
        shapes: List[List[tuple]] = []
        views: List[List[List[np.ndarray]]] = []
        child_reports: List[int] = []
        n_users = 0
        for node in plan:
            if node[0] == PLAN_AGGREGATE:
                key = (node[1], node[2])
                label = f"aggregate L{key[0]} @ {key[1]}"
                try:
                    mapped, header, body_offset = self._map_aggregate(*key)
                    children = segment_pushdown_children(mapped, header, body_offset)
                except SerializationError as exc:
                    raise _AggregateUnusable(key, exc) from exc
            else:
                label = f"segment for epoch {node[1]}"
                mapped, header, body_offset = self._map_segment(node[1])
                children = segment_pushdown_children(mapped, header, body_offset)
            pushdown = header["pushdown"]
            if base is None:
                base = pushdown
                for child in children:
                    child_names = list(child["vectors"])
                    names.append(child_names)
                    shapes.append(
                        [child["vectors"][name].shape for name in child_names]
                    )
                    views.append(
                        [
                            [child["vectors"][name].reshape(-1)]
                            for name in child_names
                        ]
                    )
                    child_reports.append(child["n_reports"])
            else:
                if len(children) != len(views):
                    raise SerializationError(
                        f"{label} has {len(children)} pushdown children; the "
                        f"window's first segment has {len(views)}"
                    )
                for index, child in enumerate(children):
                    for position, name in enumerate(names[index]):
                        views[index][position].append(
                            child["vectors"][name].reshape(-1)
                        )
                    child_reports[index] += child["n_reports"]
            n_users += int(pushdown["n_users"])
        column_sums = self._kernels.column_sums
        children_states: List[AccumulatorState] = []
        for index in range(len(views)):
            vectors = {
                name: column_sums(views[index][position]).reshape(
                    shapes[index][position]
                )
                for position, name in enumerate(names[index])
            }
            children_states.append(
                OracleAccumulator(
                    oracle_kind=base["children"][index]["oracle_kind"],
                    config=base["children"][index]["config"],
                    vectors=vectors,
                    n_reports=child_reports[index],
                )
            )
        return CompositeAccumulator(
            label=base["label"],
            config=base["config"],
            children=children_states,
            n_users=n_users,
        )

    def close(self) -> None:
        """Release every cached memory map (leaf and aggregate)."""
        for epoch in list(self._maps):
            self._drop_map(epoch)
        for key in list(self._agg_maps):
            self._drop_agg_map(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochStore({self.directory!r}, epochs={self.epochs()}, "
            f"bytes={self.total_bytes()})"
        )
