"""Epoch-aware aggregation-service façade over the protocol engine.

``Engine.open(spec)`` turns any protocol configuration into a managed
aggregation service with epoch-partitioned state, windowed queries,
and durable checkpoint/restore.  ``Engine.open(..., store_dir=...)``
adds the out-of-core epoch store (:mod:`repro.engine.store`): sealed
epochs spill to per-epoch memory-mapped segment files, checkpoints
become incremental, and windowed queries over sealed epochs run via
pushdown over pre-aggregated integer vectors.  See
:mod:`repro.engine.engine` for the model and
``examples/engine_windows.py`` for a runnable sliding-window
walkthrough.
"""

from repro.core.exceptions import InvalidWindowError
from repro.engine.engine import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_KIND,
    Engine,
    EpochSession,
)
from repro.engine.store import EpochStore, spec_fingerprint
from repro.engine.windows import (
    ALL,
    PLAN_AGGREGATE,
    PLAN_EPOCH,
    LastK,
    WindowLike,
    last,
    parse_window,
    plan_cover,
    plan_epochs,
    resolve_window,
    split_window,
)

__all__ = [
    "ALL",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_KIND",
    "Engine",
    "EpochSession",
    "EpochStore",
    "InvalidWindowError",
    "LastK",
    "PLAN_AGGREGATE",
    "PLAN_EPOCH",
    "WindowLike",
    "last",
    "parse_window",
    "plan_cover",
    "plan_epochs",
    "resolve_window",
    "spec_fingerprint",
    "split_window",
]
