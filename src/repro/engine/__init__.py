"""Epoch-aware aggregation-service façade over the protocol engine.

``Engine.open(spec)`` turns any protocol configuration into a managed
aggregation service with epoch-partitioned state, windowed queries,
and durable checkpoint/restore.  See :mod:`repro.engine.engine` for the
model and ``examples/engine_windows.py`` for a runnable sliding-window
walkthrough.
"""

from repro.core.exceptions import InvalidWindowError
from repro.engine.engine import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_KIND,
    Engine,
    EpochSession,
)
from repro.engine.windows import ALL, LastK, WindowLike, last, parse_window, resolve_window

__all__ = [
    "ALL",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_KIND",
    "Engine",
    "EpochSession",
    "InvalidWindowError",
    "LastK",
    "WindowLike",
    "last",
    "parse_window",
    "resolve_window",
]
