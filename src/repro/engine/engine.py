"""The epoch-aware aggregation-service façade.

The paper's protocols assume one static population aggregated once; a
long-running aggregation service instead absorbs *continuous* traffic.
:class:`Engine` is the production-facing layer that turns the per-protocol
client/server objects into managed, durable, epoch-partitioned state:

* **Epochs.**  ``engine.session(epoch=...)`` opens (or re-opens) one epoch
  -- a time slice of the report stream, e.g. an hour or a day of traffic.
  Each epoch is its own :class:`~repro.core.session.CompositeAccumulator`
  shard, stamped with its epoch key in the accumulator's ``meta``, so
  ingestion never touches historical state.
* **Windows.**  ``engine.estimator(window=...)`` answers queries over any
  subset of epochs -- ``"all"``, ``last(k)``, or an explicit key list.
  The selected shards are merged *lazily* (exact integer merges into a
  copy; live epochs are never mutated) and the merged state feeds the
  existing estimator/batch-query kernels unchanged, so a single-epoch
  ``window="all"`` engine is bit-identical to the plain session path.
* **Durability.**  ``engine.checkpoint(path)`` persists every epoch shard
  in one versioned v2 envelope (:data:`repro.core.serialization.MAGIC_V2`)
  carrying the protocol spec, engine metadata and the epoch keys;
  :meth:`Engine.restore` rebuilds the engine from it.  A bare v1 server
  state (``server.to_bytes()`` / ``repro-cli aggregate`` output) restores
  too, as a single-epoch engine, so pre-engine files keep working.

Example::

    from repro.engine import Engine, last

    engine = Engine.open("hh", domain_size=1024, epsilon=1.1, branching=4)
    for day, items in enumerate(daily_batches):
        engine.session(epoch=day).absorb(items, rng=rng)
    engine.checkpoint("service.ckpt")

    weekly = engine.estimator(window=last(7))
    print(weekly.range_query((100, 400)))
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.rng import RngLike
from repro.core.serialization import (
    SerializationError,
    pack_blob,
    pack_child,
    peek_header,
    unpack_blob,
    unpack_child,
)
from repro.core.session import (
    AccumulatorState,
    CompositeAccumulator,
    ProtocolServer,
    Report,
    load_server,
    protocol_from_spec,
)
from repro.engine.windows import ALL, WindowLike, resolve_window

#: ``file_kind`` tag of a checkpoint envelope.
CHECKPOINT_KIND = "engine-checkpoint"

#: Layout version of the checkpoint envelope contents (independent of the
#: wire-format version, which is the envelope's v2 magic).
CHECKPOINT_FORMAT = 1


def _is_protocol_like(obj) -> bool:
    return all(callable(getattr(obj, name, None)) for name in ("client", "server", "spec"))


class EpochSession:
    """A handle on one epoch of an :class:`Engine`.

    A session is a thin view: it shares the engine's per-epoch server, so
    two sessions opened on the same epoch fold into the same shard.  It
    adds the user-facing conveniences of the façade -- ``absorb`` raw
    items through the engine's client, ``ingest`` pre-encoded reports,
    snapshot the shard, or finalize an estimator over just this epoch.
    """

    def __init__(self, engine: "Engine", epoch: int, server: ProtocolServer) -> None:
        self._engine = engine
        self._epoch = epoch
        self._server = server

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpochSession(epoch={self._epoch}, n_reports={self.n_reports})"

    @property
    def engine(self) -> "Engine":
        """The owning engine."""
        return self._engine

    @property
    def epoch(self) -> int:
        """This session's epoch key."""
        return self._epoch

    @property
    def server(self) -> ProtocolServer:
        """The live per-epoch aggregation server (shared, not a copy)."""
        return self._server

    @property
    def n_reports(self) -> int:
        """Reports folded into this epoch so far."""
        return self._server.n_reports

    def ingest(self, reports: Union[Report, Iterable[Report]]) -> "EpochSession":
        """Fold pre-encoded privatized reports into this epoch's shard."""
        self._server.ingest(reports)
        return self

    def absorb(self, items: np.ndarray, rng: RngLike = None) -> "EpochSession":
        """Encode raw private items through the engine's client and ingest.

        One call is exactly one ``encode_batch`` + ``ingest`` round trip,
        so ``engine.session().absorb(items, rng)`` followed by
        ``engine.estimator()`` reproduces ``protocol.run(items, rng)``
        bit-for-bit.
        """
        self._server.ingest(self._engine.client().encode_batch(items, rng=rng))
        return self

    def snapshot(self) -> CompositeAccumulator:
        """An independent deep copy of this epoch's accumulator state."""
        return self._server.snapshot()

    def estimator(self):
        """An estimator over this epoch alone (``window=[epoch]``)."""
        return self._engine.estimator(window=[self._epoch])


class Engine:
    """Epoch-aware aggregation service for one protocol configuration.

    Construct with :meth:`open`; see the module docstring for the model.
    All epochs share the engine's protocol configuration -- one engine is
    one logical aggregation service, not a multi-tenant registry.

    **Concurrency contract.**  The epoch map itself is thread-safe: every
    operation that creates, adopts, absorbs or enumerates epoch shards
    (:meth:`session`, :meth:`adopt_state`, :meth:`absorb_shard`,
    :meth:`window_state`, :meth:`estimator`, :meth:`to_bytes`, ...) runs
    under one internal re-entrant lock, so concurrent shard adoption from
    many threads never loses, duplicates or misnumbers an epoch -- this
    is what lets a multi-process ingest service (:mod:`repro.service`)
    fold worker shards in from whatever thread completes first.  The
    *contents* of a single epoch shard are not locked: ``ingest`` into
    one :class:`EpochSession` must come from one thread at a time (the
    usual arrangement -- e.g. one worker process per shard -- satisfies
    this for free), while readers are safe because windows materialise
    from snapshots, never from live state.
    """

    def __init__(self, protocol) -> None:
        if not _is_protocol_like(protocol):
            raise ProtocolUsageError(
                f"Engine needs a protocol exposing client()/server()/spec(); "
                f"got {type(protocol).__name__}"
            )
        self._protocol = protocol
        self._servers: Dict[int, ProtocolServer] = {}
        self._client = None
        # Guards the epoch map (see the concurrency contract above).
        # Re-entrant because compound operations (from_bytes, absorb_shard,
        # with_postprocess) call the locked primitives while holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        spec,
        domain_size: Optional[int] = None,
        epsilon: Optional[float] = None,
        **kwargs,
    ) -> "Engine":
        """Open an engine for one protocol configuration.

        ``spec`` may be a live protocol object, a spec dict (as produced by
        ``protocol.spec()``), or a registry handle string -- the latter
        requires ``domain_size`` and ``epsilon`` (plus any constructor
        keywords), mirroring :func:`repro.make_protocol`.
        """
        if isinstance(spec, str):
            from repro import make_protocol  # deferred: repro imports engine

            if domain_size is None or epsilon is None:
                raise ProtocolUsageError(
                    "Engine.open(handle, ...) requires domain_size and epsilon"
                )
            return cls(make_protocol(spec, domain_size, epsilon, **kwargs))
        if isinstance(spec, dict):
            return cls(protocol_from_spec(spec))
        return cls(spec)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def protocol(self):
        """The protocol configuration this engine aggregates for."""
        return self._protocol

    def spec(self) -> dict:
        """The protocol's registry spec (see ``protocol.spec()``)."""
        return self._protocol.spec()

    @property
    def epochs(self) -> Tuple[int, ...]:
        """Epoch keys currently held, in ascending order."""
        with self._lock:
            return tuple(sorted(self._servers))

    def n_reports(self, window: WindowLike = ALL) -> int:
        """Total reports across the selected window.

        A fresh engine reports 0 for *any* window -- an empty service has
        nothing in every window -- so monitoring can poll sliding windows
        before the first epoch exists.
        """
        with self._lock:
            if not self._servers:
                return 0
            return sum(
                self._servers[epoch].n_reports for epoch in self._resolve(window)
            )

    def describe(self) -> str:
        """Single-line summary used by the CLI and logs."""
        name = getattr(self._protocol, "name", type(self._protocol).__name__)
        return (
            f"Engine({name}, epochs={list(self.epochs)}, "
            f"reports={self.n_reports()})"
        )

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def client(self):
        """The engine's shared stateless client-side encoder (cached)."""
        if self._client is None:
            self._client = self._protocol.client()
        return self._client

    def _next_epoch(self) -> int:
        return max(self._servers) + 1 if self._servers else 0

    def session(self, epoch: Optional[int] = None) -> EpochSession:
        """Open a session on ``epoch`` (default: the next fresh epoch).

        Re-opening an existing epoch returns a session over the same
        shard; a new epoch key creates an empty shard stamped with
        ``meta={"epoch": key}``.
        """
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            server = self._servers.get(epoch)
            if server is None:
                server = self._protocol.server()
                server.state.meta.setdefault("epoch", epoch)
                self._servers[epoch] = server
        return EpochSession(self, epoch, server)

    def adopt_state(
        self,
        state: Union[AccumulatorState, bytes, bytearray, memoryview],
        epoch: Optional[int] = None,
    ) -> EpochSession:
        """Adopt an existing accumulator state as a new epoch shard.

        ``state`` is a :class:`CompositeAccumulator` or its packed bytes
        (e.g. a ``repro-cli aggregate`` file) of an identically configured
        protocol; it becomes epoch ``epoch`` (default: next fresh key).
        Adopting into an existing epoch is refused -- merge through a
        window instead, so historical shards stay immutable (to *combine*
        shards of one time slice, see :meth:`absorb_shard`).
        """
        if isinstance(state, (bytes, bytearray, memoryview)):
            state = AccumulatorState.from_bytes(bytes(state))
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            if epoch in self._servers:
                raise ProtocolUsageError(
                    f"epoch {epoch} already exists in this engine; windows, not "
                    "adoption, combine existing epochs"
                )
            server = self._protocol.server(state=state)
            server.state.meta.setdefault("epoch", epoch)
            self._servers[epoch] = server
        return EpochSession(self, epoch, server)

    def absorb_shard(
        self,
        state: Union[AccumulatorState, bytes, bytearray, memoryview],
        epoch: Optional[int] = None,
    ) -> EpochSession:
        """Merge one shard's accumulator into an epoch, creating it if new.

        This is the epoch-close hook of sharded ingestion: N workers each
        accumulate a slice of one time window, and on epoch close every
        shard is absorbed into the same epoch key.  Unlike
        :meth:`adopt_state`, absorbing into an existing epoch *merges*
        (exactly -- integer sufficient statistics, so any absorption order
        is bit-identical to single-server ingestion of the same reports).
        The adopt-or-merge decision and the merge itself run under the
        engine lock, so concurrent absorption from many threads is safe.
        """
        if isinstance(state, (bytes, bytearray, memoryview)):
            state = AccumulatorState.from_bytes(bytes(state))
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            server = self._servers.get(epoch)
            if server is None:
                return self.adopt_state(state, epoch=epoch)
            server.merge(state)
        return EpochSession(self, epoch, server)

    # ------------------------------------------------------------------ #
    # windowed queries
    # ------------------------------------------------------------------ #
    def _resolve(self, window: WindowLike) -> List[int]:
        return resolve_window(window, sorted(self._servers))

    def window_state(self, window: WindowLike = ALL) -> CompositeAccumulator:
        """The merged accumulator state of the selected epochs (a copy).

        Merging is exact (integer sufficient statistics), commutative and
        associative, so any window materialises bit-identically regardless
        of how its epochs were sharded.  The returned state is independent
        of the live shards and records the window in ``meta["epochs"]``.
        """
        with self._lock:
            selected = self._resolve(window)
            merged = self._servers[selected[0]].snapshot()
            for epoch in selected[1:]:
                merged.merge(self._servers[epoch].state)
        merged.meta = {"epochs": list(selected)}
        return merged

    def estimator(self, window: WindowLike = ALL):
        """Finalize an estimator over the selected window of epochs.

        The merge is lazy -- nothing is combined until an estimator is
        requested -- and feeds the family's existing estimator and batch
        query kernels unchanged.  A single-epoch window finalizes the live
        shard directly, which is bit-identical to the plain
        client/server session path.
        """
        with self._lock:
            selected = self._resolve(window)
            if len(selected) == 1:
                return self._servers[selected[0]].finalize()
            state = self.window_state(selected)
        finalize = getattr(self._protocol, "estimator_from_state", None)
        if finalize is not None:
            return finalize(state)
        return self._protocol.server(state=state).finalize()

    def with_postprocess(self, postprocess) -> "Engine":
        """A view of this engine under a different post-processing pipeline.

        Post-processing runs at assembly (finalize) time only, so an
        existing service can be re-finalized under any pipeline without
        re-ingesting a single report.  ``postprocess`` is a registry
        string (``"none"``, ``"norm_sub"``, ``"consistency+norm_sub"``,
        ...); the returned engine shares the live shards of every epoch
        existing at call time (ingest into those through either view and
        both see the reports) but finalizes its estimators through the new
        pipeline.  This is what the CLI's ``engine query --postprocess``
        uses.
        """
        spec = self.spec()
        spec["postprocess"] = postprocess
        clone = Engine(protocol_from_spec(spec))
        with self._lock:
            for epoch in self.epochs:
                # Adopt the live shard itself (not a copy): states are
                # exchangeable across postprocess settings because the
                # pipeline never touches the sufficient statistics.
                clone.adopt_state(self._servers[epoch].state, epoch=epoch)
        return clone

    def simulate(self, true_counts: np.ndarray, rng: RngLike = None):
        """Statistically equivalent aggregate simulation (Section 5).

        Façade over the protocol's aggregate-simulation driver: samples an
        estimator straight from the exact histogram without materialising
        per-user reports.  The sample is *not* folded into any epoch --
        simulation produces estimates, not mergeable state.
        """
        driver = getattr(self._protocol, "simulate_aggregate", None)
        if driver is None:
            name = getattr(self._protocol, "name", type(self._protocol).__name__)
            raise ProtocolUsageError(
                f"{name} does not support aggregate simulation"
            )
        return driver(true_counts, rng=rng)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize every epoch shard into one versioned v2 envelope."""
        from repro import __version__  # deferred: repro imports engine

        with self._lock:
            epochs = sorted(self._servers)
            header = {
                "file_kind": CHECKPOINT_KIND,
                "engine": {"format": CHECKPOINT_FORMAT, "version": __version__},
                "protocol": self._protocol.spec(),
                "epochs": epochs,
                "epoch_reports": {
                    str(epoch): self._servers[epoch].n_reports for epoch in epochs
                },
            }
            arrays = {
                f"epoch_{epoch}": pack_child(self._servers[epoch].to_bytes())
                for epoch in epochs
            }
        return pack_blob(header, arrays, version=2)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Engine":
        """Rebuild an engine from checkpoint bytes.

        Accepts both the v2 checkpoint envelope and a bare v1 accumulator
        state from the pre-engine era (``server.to_bytes()`` output),
        which restores as a single-epoch engine.
        """
        # Route on the JSON header alone; the array blocks are decoded
        # once, by whichever branch owns the payload.
        kind_header = peek_header(data)
        if kind_header.get("file_kind") == CHECKPOINT_KIND:
            header, arrays = unpack_blob(data)
            spec = header.get("protocol")
            if not isinstance(spec, dict):
                raise SerializationError(
                    "engine checkpoint does not embed a protocol spec"
                )
            epochs = header.get("epochs")
            if not isinstance(epochs, list):
                raise SerializationError(
                    "engine checkpoint does not declare its epoch keys"
                )
            try:
                engine = cls(protocol_from_spec(spec))
                for epoch in epochs:
                    key = f"epoch_{int(epoch)}"
                    if key not in arrays:
                        raise SerializationError(
                            f"engine checkpoint is missing the shard for epoch {epoch}"
                        )
                    engine.adopt_state(unpack_child(arrays[key]), epoch=int(epoch))
            except SerializationError:
                raise
            except (ProtocolUsageError, KeyError, TypeError, ValueError) as exc:
                # A corrupt-but-parseable checkpoint (e.g. a mutated spec
                # or an epoch shard that no longer matches it) is a decode
                # failure, not an internal error.
                raise SerializationError(
                    f"corrupt engine checkpoint: {exc}"
                ) from exc
            return engine
        if kind_header.get("state_kind") is not None:
            # A pre-engine v1 payload: a single server's accumulator state.
            try:
                server = load_server(data)
            except SerializationError:
                raise
            except (ProtocolUsageError, KeyError, TypeError, ValueError) as exc:
                raise SerializationError(f"corrupt server state: {exc}") from exc
            engine = cls(server.protocol)
            epoch = int(server.state.meta.get("epoch", 0))
            server.state.meta.setdefault("epoch", epoch)
            engine._servers[epoch] = server
            return engine
        raise SerializationError(
            f"not an engine checkpoint or server state (file_kind="
            f"{kind_header.get('file_kind')!r})"
        )

    def checkpoint(self, path: str) -> "Engine":
        """Write the full engine state to ``path``.

        The write is atomic at the filesystem level: the envelope lands in
        a temporary sibling file first and is renamed over ``path``, so a
        crash mid-write never destroys the previous durable checkpoint.
        """
        blob = self.to_bytes()
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
        return self

    @classmethod
    def restore(cls, path: str) -> "Engine":
        """Rebuild an engine from a file written by :meth:`checkpoint`."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())
