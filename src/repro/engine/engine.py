"""The epoch-aware aggregation-service façade.

The paper's protocols assume one static population aggregated once; a
long-running aggregation service instead absorbs *continuous* traffic.
:class:`Engine` is the production-facing layer that turns the per-protocol
client/server objects into managed, durable, epoch-partitioned state:

* **Epochs.**  ``engine.session(epoch=...)`` opens (or re-opens) one epoch
  -- a time slice of the report stream, e.g. an hour or a day of traffic.
  Each epoch is its own :class:`~repro.core.session.CompositeAccumulator`
  shard, stamped with its epoch key in the accumulator's ``meta``, so
  ingestion never touches historical state.
* **Windows.**  ``engine.estimator(window=...)`` answers queries over any
  subset of epochs -- ``"all"``, ``last(k)``, or an explicit key list.
  The selected shards are merged *lazily* (exact integer merges into a
  copy; live epochs are never mutated) and the merged state feeds the
  existing estimator/batch-query kernels unchanged, so a single-epoch
  ``window="all"`` engine is bit-identical to the plain session path.
* **Durability.**  ``engine.checkpoint(path)`` persists every epoch shard
  in one versioned v2 envelope (:data:`repro.core.serialization.MAGIC_V2`)
  carrying the protocol spec, engine metadata and the epoch keys;
  :meth:`Engine.restore` rebuilds the engine from it.  A bare v1 server
  state (``server.to_bytes()`` / ``repro-cli aggregate`` output) restores
  too, as a single-epoch engine, so pre-engine files keep working.
* **Out-of-core storage.**  ``Engine.open(..., store_dir=...)`` attaches
  an :class:`~repro.engine.store.EpochStore`: live epochs stay in RAM,
  :meth:`Engine.seal_epoch` writes a finished epoch to its own
  memory-mapped segment file and evicts it, ``checkpoint()`` (no path)
  becomes *incremental* -- only dirty epochs are rewritten, manifest
  fsync'd last -- and restore maps segments lazily, so RSS scales with
  the queried window instead of the total epoch count.  Windowed queries
  over sealed epochs sum the segments' pre-aggregated integer vectors
  (query pushdown) and remain bit-identical to the in-RAM merge path.

Example::

    from repro.engine import Engine, last

    engine = Engine.open("hh", domain_size=1024, epsilon=1.1, branching=4)
    for day, items in enumerate(daily_batches):
        engine.session(epoch=day).absorb(items, rng=rng)
    engine.checkpoint("service.ckpt")

    weekly = engine.estimator(window=last(7))
    print(weekly.range_query((100, 400)))
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.rng import RngLike
from repro.core.serialization import (
    SerializationError,
    pack_blob,
    pack_child,
    peek_header,
    unpack_blob,
    unpack_child,
)
from repro.core.session import (
    AccumulatorState,
    CompositeAccumulator,
    ProtocolServer,
    Report,
    load_server,
    protocol_from_spec,
)
from repro.engine.store import EpochStore
from repro.engine.windows import ALL, WindowLike, resolve_window, split_window

#: ``file_kind`` tag of a checkpoint envelope.
CHECKPOINT_KIND = "engine-checkpoint"

#: Layout version of the checkpoint envelope contents (independent of the
#: wire-format version, which is the envelope's v2 magic).
CHECKPOINT_FORMAT = 1


def _is_protocol_like(obj) -> bool:
    return all(callable(getattr(obj, name, None)) for name in ("client", "server", "spec"))


class EpochSession:
    """A handle on one epoch of an :class:`Engine`.

    A session is a thin view: it shares the engine's per-epoch server, so
    two sessions opened on the same epoch fold into the same shard.  It
    adds the user-facing conveniences of the façade -- ``absorb`` raw
    items through the engine's client, ``ingest`` pre-encoded reports,
    snapshot the shard, or finalize an estimator over just this epoch.
    """

    def __init__(self, engine: "Engine", epoch: int, server: ProtocolServer) -> None:
        self._engine = engine
        self._epoch = epoch
        self._server = server

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpochSession(epoch={self._epoch}, n_reports={self.n_reports})"

    @property
    def engine(self) -> "Engine":
        """The owning engine."""
        return self._engine

    @property
    def epoch(self) -> int:
        """This session's epoch key."""
        return self._epoch

    @property
    def server(self) -> ProtocolServer:
        """The live per-epoch aggregation server (shared, not a copy)."""
        return self._server

    @property
    def n_reports(self) -> int:
        """Reports folded into this epoch so far."""
        return self._server.n_reports

    def ingest(self, reports: Union[Report, Iterable[Report]]) -> "EpochSession":
        """Fold pre-encoded privatized reports into this epoch's shard."""
        self._server.ingest(reports)
        self._engine._note_mutation(self._epoch)
        return self

    def absorb(self, items: np.ndarray, rng: RngLike = None) -> "EpochSession":
        """Encode raw private items through the engine's client and ingest.

        One call is exactly one ``encode_batch`` + ``ingest`` round trip,
        so ``engine.session().absorb(items, rng)`` followed by
        ``engine.estimator()`` reproduces ``protocol.run(items, rng)``
        bit-for-bit.
        """
        self._server.ingest(self._engine.client().encode_batch(items, rng=rng))
        self._engine._note_mutation(self._epoch)
        return self

    def snapshot(self) -> CompositeAccumulator:
        """An independent deep copy of this epoch's accumulator state."""
        return self._server.snapshot()

    def estimator(self):
        """An estimator over this epoch alone (``window=[epoch]``)."""
        return self._engine.estimator(window=[self._epoch])


class Engine:
    """Epoch-aware aggregation service for one protocol configuration.

    Construct with :meth:`open`; see the module docstring for the model.
    All epochs share the engine's protocol configuration -- one engine is
    one logical aggregation service, not a multi-tenant registry.

    **Concurrency contract.**  The epoch map itself is thread-safe: every
    operation that creates, adopts, absorbs or enumerates epoch shards
    (:meth:`session`, :meth:`adopt_state`, :meth:`absorb_shard`,
    :meth:`window_state`, :meth:`estimator`, :meth:`to_bytes`, ...) runs
    under one internal re-entrant lock, so concurrent shard adoption from
    many threads never loses, duplicates or misnumbers an epoch -- this
    is what lets a multi-process ingest service (:mod:`repro.service`)
    fold worker shards in from whatever thread completes first.  The
    *contents* of a single epoch shard are not locked: ``ingest`` into
    one :class:`EpochSession` must come from one thread at a time (the
    usual arrangement -- e.g. one worker process per shard -- satisfies
    this for free), while readers are safe because windows materialise
    from snapshots, never from live state.
    """

    def __init__(self, protocol) -> None:
        if not _is_protocol_like(protocol):
            raise ProtocolUsageError(
                f"Engine needs a protocol exposing client()/server()/spec(); "
                f"got {type(protocol).__name__}"
            )
        self._protocol = protocol
        self._servers: Dict[int, ProtocolServer] = {}
        self._client = None
        # Out-of-core backing (attach_store): sealed epochs live only in
        # the store; _dirty tracks live epochs whose state has outrun
        # their last written segment.
        self._store: Optional[EpochStore] = None
        self._dirty: set = set()
        # Guards the epoch map (see the concurrency contract above).
        # Re-entrant because compound operations (from_bytes, absorb_shard,
        # with_postprocess) call the locked primitives while holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        spec=None,
        domain_size: Optional[int] = None,
        epsilon: Optional[float] = None,
        store_dir: Optional[str] = None,
        **kwargs,
    ) -> "Engine":
        """Open an engine for one protocol configuration.

        ``spec`` may be a live protocol object, a spec dict (as produced by
        ``protocol.spec()``), or a registry handle string -- the latter
        requires ``domain_size`` and ``epsilon`` (plus any constructor
        keywords), mirroring :func:`repro.make_protocol`.

        ``store_dir`` attaches an out-of-core
        :class:`~repro.engine.store.EpochStore` (created on first use):
        sealed epochs live on disk as lazily mapped segments and
        ``checkpoint()`` becomes incremental.  With ``spec=None`` the
        store must already exist and the protocol configuration is taken
        from its manifest -- this is the restore path.
        """
        if spec is None:
            if store_dir is None:
                raise ProtocolUsageError(
                    "Engine.open() needs a protocol (handle, spec dict, or "
                    "protocol object) or a store_dir holding an existing "
                    "epoch store"
                )
            store = EpochStore(store_dir, create=False)
            engine = cls(protocol_from_spec(store.spec))
            engine._store = store
            return engine
        if isinstance(spec, str):
            from repro import make_protocol  # deferred: repro imports engine

            if domain_size is None or epsilon is None:
                raise ProtocolUsageError(
                    "Engine.open(handle, ...) requires domain_size and epsilon"
                )
            engine = cls(make_protocol(spec, domain_size, epsilon, **kwargs))
        elif isinstance(spec, dict):
            engine = cls(protocol_from_spec(spec))
        else:
            engine = cls(spec)
        if store_dir is not None:
            engine.attach_store(store_dir)
        return engine

    def attach_store(self, store_dir: str) -> "Engine":
        """Attach (opening or creating) an out-of-core epoch store.

        An existing store must have been written for an identically
        configured protocol (assembly-only spec keys ignored).  Epochs
        already sealed in the store become queryable immediately -- they
        are mapped lazily, never materialized wholesale.  A live epoch
        that collides with a sealed one is refused: restore *from* the
        store first, then ingest.
        """
        with self._lock:
            if self._store is not None:
                raise ProtocolUsageError(
                    f"engine is already backed by the store at "
                    f"{self._store.directory}"
                )
            store = EpochStore(store_dir, spec=self.spec())
            collisions = sorted(set(self._servers) & set(store.epochs()))
            if collisions:
                raise ProtocolUsageError(
                    f"live epoch(s) {collisions} collide with sealed epochs "
                    f"in the store at {store_dir}; restore from the store "
                    "first (Engine.open(None, store_dir=...)), then ingest"
                )
            self._store = store
        return self

    @property
    def store(self) -> Optional[EpochStore]:
        """The attached out-of-core store (``None`` for in-RAM engines)."""
        return self._store

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def protocol(self):
        """The protocol configuration this engine aggregates for."""
        return self._protocol

    def spec(self) -> dict:
        """The protocol's registry spec (see ``protocol.spec()``)."""
        return self._protocol.spec()

    @property
    def epochs(self) -> Tuple[int, ...]:
        """Epoch keys currently held (live and sealed), in ascending order."""
        with self._lock:
            return tuple(sorted(self._known_epochs()))

    def _known_epochs(self) -> set:
        known = set(self._servers)
        if self._store is not None:
            known.update(self._store.epochs())
        return known

    @property
    def live_epochs(self) -> Tuple[int, ...]:
        """Epoch keys currently materialized in RAM, in ascending order."""
        with self._lock:
            return tuple(sorted(self._servers))

    @property
    def sealed_epochs(self) -> Tuple[int, ...]:
        """Epoch keys held only by the store, in ascending order."""
        with self._lock:
            if self._store is None:
                return ()
            return tuple(
                sorted(set(self._store.epochs()) - set(self._servers))
            )

    def _epoch_reports(self, epoch: int) -> int:
        """One epoch's report count, live state winning over the manifest."""
        server = self._servers.get(epoch)
        if server is not None:
            return server.n_reports
        return self._store.n_reports(epoch)

    def n_reports(self, window: WindowLike = ALL) -> int:
        """Total reports across the selected window.

        A fresh engine reports 0 for *any* window -- an empty service has
        nothing in every window -- so monitoring can poll sliding windows
        before the first epoch exists.  Sealed epochs are counted from
        the store manifest without loading a single segment.
        """
        with self._lock:
            if not self._known_epochs():
                return 0
            return sum(
                self._epoch_reports(epoch) for epoch in self._resolve(window)
            )

    def epoch_report_counts(self) -> Dict[int, int]:
        """Per-epoch report counts, without materializing sealed epochs."""
        with self._lock:
            return {
                epoch: self._epoch_reports(epoch)
                for epoch in sorted(self._known_epochs())
            }

    def epoch_stats(self) -> Dict[int, dict]:
        """Per-epoch accounting for monitoring and ``engine info``.

        Each entry reports ``n_reports``, the serialized state size in
        ``bytes`` (live epochs pay one in-memory serialization; sealed
        epochs reuse the manifest's recorded segment size), whether the
        epoch is ``sealed`` (on disk only), and -- when store-backed --
        the ``on_disk`` segment size and ``dirty`` flag.
        """
        with self._lock:
            stats: Dict[int, dict] = {}
            for epoch in sorted(self._known_epochs()):
                server = self._servers.get(epoch)
                entry: dict = {"sealed": server is None}
                if server is not None:
                    entry["n_reports"] = server.n_reports
                    entry["bytes"] = len(server.to_bytes())
                else:
                    entry["n_reports"] = self._store.n_reports(epoch)
                    entry["bytes"] = self._store.on_disk_size(epoch)
                if self._store is not None:
                    in_store = epoch in self._store
                    entry["on_disk"] = (
                        self._store.on_disk_size(epoch) if in_store else 0
                    )
                    entry["dirty"] = epoch in self._dirty or (
                        server is not None and not in_store
                    )
                stats[epoch] = entry
            return stats

    def describe(self) -> str:
        """Single-line summary used by the CLI and logs."""
        name = getattr(self._protocol, "name", type(self._protocol).__name__)
        return (
            f"Engine({name}, epochs={list(self.epochs)}, "
            f"reports={self.n_reports()})"
        )

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def client(self):
        """The engine's shared stateless client-side encoder (cached)."""
        if self._client is None:
            self._client = self._protocol.client()
        return self._client

    def _next_epoch(self) -> int:
        known = self._known_epochs()
        return max(known) + 1 if known else 0

    def _note_mutation(self, epoch: int) -> None:
        """Record that a live epoch's statistics changed (store dirtiness)."""
        if self._store is None:
            return
        with self._lock:
            self._dirty.add(int(epoch))
            self._store.mark_dirty(int(epoch))

    def _load_sealed(self, epoch: int) -> ProtocolServer:
        """Materialize one sealed epoch back into RAM (clean until mutated)."""
        state = self._store.load_state(epoch)
        server = self._protocol.server(state=state)
        server.state.meta.setdefault("epoch", epoch)
        self._servers[epoch] = server
        return server

    def session(self, epoch: Optional[int] = None) -> EpochSession:
        """Open a session on ``epoch`` (default: the next fresh epoch).

        Re-opening an existing epoch returns a session over the same
        shard; a new epoch key creates an empty shard stamped with
        ``meta={"epoch": key}``.  Opening a *sealed* epoch loads its
        segment back into RAM (it stays clean -- and is not rewritten at
        the next checkpoint -- until mutated).
        """
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            server = self._servers.get(epoch)
            if server is None:
                if self._store is not None and epoch in self._store:
                    server = self._load_sealed(epoch)
                else:
                    server = self._protocol.server()
                    server.state.meta.setdefault("epoch", epoch)
                    self._servers[epoch] = server
        return EpochSession(self, epoch, server)

    def adopt_state(
        self,
        state: Union[AccumulatorState, bytes, bytearray, memoryview],
        epoch: Optional[int] = None,
    ) -> EpochSession:
        """Adopt an existing accumulator state as a new epoch shard.

        ``state`` is a :class:`CompositeAccumulator` or its packed bytes
        (e.g. a ``repro-cli aggregate`` file) of an identically configured
        protocol; it becomes epoch ``epoch`` (default: next fresh key).
        Adopting into an existing epoch is refused -- merge through a
        window instead, so historical shards stay immutable (to *combine*
        shards of one time slice, see :meth:`absorb_shard`).
        """
        if isinstance(state, (bytes, bytearray, memoryview)):
            state = AccumulatorState.from_bytes(bytes(state))
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            if epoch in self._known_epochs():
                raise ProtocolUsageError(
                    f"epoch {epoch} already exists in this engine; windows, not "
                    "adoption, combine existing epochs"
                )
            server = self._protocol.server(state=state)
            server.state.meta.setdefault("epoch", epoch)
            self._servers[epoch] = server
            self._note_mutation(epoch)
        return EpochSession(self, epoch, server)

    def absorb_shard(
        self,
        state: Union[AccumulatorState, bytes, bytearray, memoryview],
        epoch: Optional[int] = None,
    ) -> EpochSession:
        """Merge one shard's accumulator into an epoch, creating it if new.

        This is the epoch-close hook of sharded ingestion: N workers each
        accumulate a slice of one time window, and on epoch close every
        shard is absorbed into the same epoch key.  Unlike
        :meth:`adopt_state`, absorbing into an existing epoch *merges*
        (exactly -- integer sufficient statistics, so any absorption order
        is bit-identical to single-server ingestion of the same reports).
        The adopt-or-merge decision and the merge itself run under the
        engine lock, so concurrent absorption from many threads is safe.
        """
        if isinstance(state, (bytes, bytearray, memoryview)):
            state = AccumulatorState.from_bytes(bytes(state))
        with self._lock:
            if epoch is None:
                epoch = self._next_epoch()
            epoch = int(epoch)
            server = self._servers.get(epoch)
            if server is None and self._store is not None and epoch in self._store:
                # Absorbing into a sealed epoch un-seals it first.
                server = self._load_sealed(epoch)
            if server is None:
                return self.adopt_state(state, epoch=epoch)
            server.merge(state)
            self._note_mutation(epoch)
        return EpochSession(self, epoch, server)

    # ------------------------------------------------------------------ #
    # windowed queries
    # ------------------------------------------------------------------ #
    def _resolve(self, window: WindowLike) -> List[int]:
        return resolve_window(window, sorted(self._known_epochs()))

    def window_state(self, window: WindowLike = ALL) -> CompositeAccumulator:
        """The merged accumulator state of the selected epochs (a copy).

        Merging is exact (integer sufficient statistics), commutative and
        associative, so any window materialises bit-identically regardless
        of how its epochs were sharded.  The returned state is independent
        of the live shards and records the window in ``meta["epochs"]``.

        On a store-backed engine the sealed part of the window is
        answered by *query pushdown* when every selected segment carries
        pre-aggregated vectors: the store plans the window as a cover of
        power-of-two aggregate segments plus leaves (O(log k) nodes for
        a contiguous window) and sums the mapped int64 statistics
        elementwise -- exactly the accumulator merge -- so no sealed
        epoch is ever fully decoded.  Segments without a pushdown region
        (e.g. SHE's exact-summation states) fall back to full
        load-and-merge; either way the result is bit-identical to an
        all-live merge, and no sealed epoch is re-materialized into the
        engine's epoch map.
        """
        with self._lock:
            selected = self._resolve(window)
            live, sealed = split_window(selected, self._servers)
            merged: Optional[CompositeAccumulator] = None
            if sealed:
                merged = self._store.pushdown_state(sealed)
                if merged is None:
                    for epoch in sealed:
                        state = self._store.load_state(epoch)
                        merged = state if merged is None else merged.merge(state)
            for epoch in live:
                if merged is None:
                    merged = self._servers[epoch].snapshot()
                else:
                    merged.merge(self._servers[epoch].state)
        merged.meta = {"epochs": list(selected)}
        return merged

    def estimator(self, window: WindowLike = ALL):
        """Finalize an estimator over the selected window of epochs.

        The merge is lazy -- nothing is combined until an estimator is
        requested -- and feeds the family's existing estimator and batch
        query kernels unchanged.  A single-epoch window over a live shard
        finalizes it directly, which is bit-identical to the plain
        client/server session path.
        """
        with self._lock:
            selected = self._resolve(window)
            if len(selected) == 1 and selected[0] in self._servers:
                return self._servers[selected[0]].finalize()
            state = self.window_state(selected)
        finalize = getattr(self._protocol, "estimator_from_state", None)
        if finalize is not None:
            return finalize(state)
        return self._protocol.server(state=state).finalize()

    def with_postprocess(self, postprocess) -> "Engine":
        """A view of this engine under a different post-processing pipeline.

        Post-processing runs at assembly (finalize) time only, so an
        existing service can be re-finalized under any pipeline without
        re-ingesting a single report.  ``postprocess`` is a registry
        string (``"none"``, ``"norm_sub"``, ``"consistency+norm_sub"``,
        ...); the returned engine shares the live shards of every epoch
        existing at call time (ingest into those through either view and
        both see the reports) but finalizes its estimators through the new
        pipeline.  This is what the CLI's ``engine query --postprocess``
        uses.
        """
        spec = self.spec()
        spec["postprocess"] = postprocess
        clone = Engine(protocol_from_spec(spec))
        with self._lock:
            for epoch in self.live_epochs:
                # Adopt the live shard itself (not a copy): states are
                # exchangeable across postprocess settings because the
                # pipeline never touches the sufficient statistics.
                clone.adopt_state(self._servers[epoch].state, epoch=epoch)
            # Sealed epochs stay sealed: the clone reads the same store
            # (spec hashes ignore assembly-only keys, so the segments are
            # exchangeable too).  The clone is a query view -- it borrows
            # the store and must not checkpoint into it.
            clone._store = self._store
            clone._dirty = set(self._dirty)
        return clone

    def simulate(self, true_counts: np.ndarray, rng: RngLike = None):
        """Statistically equivalent aggregate simulation (Section 5).

        Façade over the protocol's aggregate-simulation driver: samples an
        estimator straight from the exact histogram without materialising
        per-user reports.  The sample is *not* folded into any epoch --
        simulation produces estimates, not mergeable state.
        """
        driver = getattr(self._protocol, "simulate_aggregate", None)
        if driver is None:
            name = getattr(self._protocol, "name", type(self._protocol).__name__)
            raise ProtocolUsageError(
                f"{name} does not support aggregate simulation"
            )
        return driver(true_counts, rng=rng)

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize every epoch shard into one versioned v2 envelope.

        On a store-backed engine sealed epochs are included too (their
        packed states are read straight from the segment files), so a
        monolithic checkpoint of an out-of-core engine is complete and
        restorable anywhere -- the export path out of a store.
        """
        from repro import __version__  # deferred: repro imports engine

        with self._lock:
            epochs = sorted(self._known_epochs())
            header = {
                "file_kind": CHECKPOINT_KIND,
                "engine": {"format": CHECKPOINT_FORMAT, "version": __version__},
                "protocol": self._protocol.spec(),
                "epochs": epochs,
                "epoch_reports": {
                    str(epoch): self._epoch_reports(epoch) for epoch in epochs
                },
            }
            arrays = {}
            for epoch in epochs:
                server = self._servers.get(epoch)
                if server is not None:
                    blob = server.to_bytes()
                else:
                    blob = self._store.read_state_bytes(epoch)
                arrays[f"epoch_{epoch}"] = pack_child(blob)
        return pack_blob(header, arrays, version=2)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Engine":
        """Rebuild an engine from checkpoint bytes.

        Accepts both the v2 checkpoint envelope and a bare v1 accumulator
        state from the pre-engine era (``server.to_bytes()`` output),
        which restores as a single-epoch engine.
        """
        # Route on the JSON header alone; the array blocks are decoded
        # once, by whichever branch owns the payload.
        kind_header = peek_header(data)
        if kind_header.get("file_kind") == CHECKPOINT_KIND:
            header, arrays = unpack_blob(data)
            spec = header.get("protocol")
            if not isinstance(spec, dict):
                raise SerializationError(
                    "engine checkpoint does not embed a protocol spec"
                )
            epochs = header.get("epochs")
            if not isinstance(epochs, list):
                raise SerializationError(
                    "engine checkpoint does not declare its epoch keys"
                )
            try:
                engine = cls(protocol_from_spec(spec))
            except (ProtocolUsageError, KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"corrupt engine checkpoint: {exc}"
                ) from exc
            for epoch in epochs:
                key = f"epoch_{int(epoch)}"
                if key not in arrays:
                    raise SerializationError(
                        f"engine checkpoint is missing the shard for epoch {epoch}"
                    )
                try:
                    engine.adopt_state(unpack_child(arrays[key]), epoch=int(epoch))
                except SerializationError as exc:
                    # Name the failing epoch: a corrupt child's own error
                    # reports byte offsets *within* the nested blob, which
                    # is useless without knowing which shard it was.
                    raise SerializationError(
                        f"corrupt shard for epoch {epoch} in engine "
                        f"checkpoint: {exc}"
                    ) from exc
                except (ProtocolUsageError, KeyError, TypeError, ValueError) as exc:
                    # A corrupt-but-parseable checkpoint (e.g. a mutated
                    # spec or an epoch shard that no longer matches it) is
                    # a decode failure, not an internal error.
                    raise SerializationError(
                        f"corrupt shard for epoch {epoch} in engine "
                        f"checkpoint: {exc}"
                    ) from exc
            return engine
        if kind_header.get("state_kind") is not None:
            # A pre-engine v1 payload: a single server's accumulator state.
            try:
                server = load_server(data)
            except SerializationError:
                raise
            except (ProtocolUsageError, KeyError, TypeError, ValueError) as exc:
                raise SerializationError(f"corrupt server state: {exc}") from exc
            engine = cls(server.protocol)
            epoch = int(server.state.meta.get("epoch", 0))
            server.state.meta.setdefault("epoch", epoch)
            engine._servers[epoch] = server
            return engine
        raise SerializationError(
            f"not an engine checkpoint or server state (file_kind="
            f"{kind_header.get('file_kind')!r})"
        )

    def seal_epoch(self, epoch: int) -> "Engine":
        """Write one epoch to its own segment and evict it from RAM.

        The epoch stays fully queryable -- windows read it back through
        the store's lazy memory maps (and, when eligible, through query
        pushdown) -- but it no longer occupies RSS.  Sealing an
        already-sealed epoch is a no-op; the segment is only rewritten
        when the live state has outrun it.  Requires an attached store.
        """
        with self._lock:
            self._require_store("seal_epoch")
            epoch = int(epoch)
            server = self._servers.get(epoch)
            if server is None:
                if epoch in self._store:
                    return self
                raise ProtocolUsageError(
                    f"cannot seal unknown epoch {epoch}; "
                    f"available epochs: {list(self.epochs)}"
                )
            if epoch in self._dirty or not self._store.has_segment(epoch):
                self._store.write_segment(epoch, server.state)
            # Sealing may have just completed one or more aligned blocks:
            # fold them into aggregate segments now, while the leaves are
            # hot, so later windowed queries read O(log k) segments.
            self._store.build_aggregates([epoch])
            if self._store.manifest_dirty:
                self._store.save_manifest()
            del self._servers[epoch]
            self._dirty.discard(epoch)
        return self

    def _require_store(self, operation: str) -> None:
        if self._store is None:
            raise ProtocolUsageError(
                f"{operation} needs a store-backed engine; open with "
                "Engine.open(..., store_dir=...) or attach_store()"
            )

    def checkpoint(self, path: Optional[str] = None) -> "Engine":
        """Persist the engine state durably.

        With ``path``, writes the full monolithic v2 envelope there
        atomically (temporary sibling + rename), exactly as before --
        including sealed epochs on a store-backed engine.

        Without ``path`` (store-backed engines only), the checkpoint is
        *incremental*: only live epochs whose statistics have changed
        since their last segment write -- plus live epochs that never had
        a segment -- are rewritten, missing aggregate blocks are
        materialized, then the manifest is rewritten and fsync'd last.
        Clean sealed epochs are never touched, and a fully clean store
        (nothing dirty, nothing built) skips the manifest rewrite
        entirely, which is what makes the checkpoint cost O(dirty)
        instead of O(total).
        """
        if path is None:
            with self._lock:
                self._require_store("checkpoint() without a path")
                for epoch in sorted(self._servers):
                    if epoch in self._dirty or not self._store.has_segment(epoch):
                        self._store.write_segment(
                            epoch, self._servers[epoch].state
                        )
                self._store.build_aggregates()
                if self._store.manifest_dirty:
                    self._store.save_manifest()
                self._dirty.clear()
            return self
        blob = self.to_bytes()
        temp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp_path, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        finally:
            if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
                os.unlink(temp_path)
        return self

    @classmethod
    def restore(cls, path: str) -> "Engine":
        """Rebuild an engine from a checkpoint file or a store directory.

        A directory restores as a store-backed engine (lazy: the
        manifest is read, segments are mapped only when queried); a file
        restores the monolithic envelope as before.
        """
        if os.path.isdir(path):
            return cls.open(None, store_dir=path)
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())
