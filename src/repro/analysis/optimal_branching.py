"""Optimal branching factor analysis (Sections 4.4-4.5).

The paper differentiates the variance bound with respect to the fan-out B
and finds the stationary point

* ``B ln B - 2B + 2 = 0``  (no consistency)  -> B ~ 4.92, and
* ``B ln B - 2B - 2 = 0``  (with consistency) -> B ~ 9.18.

We solve both equations numerically (simple, dependency-free bisection) and
expose helpers that return the practical power-of-two recommendations the
paper settles on (B = 4 and B = 8 respectively).
"""

from __future__ import annotations

import math
from typing import Callable


def _bisect(func: Callable[[float], float], low: float, high: float, tol: float = 1e-12) -> float:
    f_low = func(low)
    f_high = func(high)
    if f_low == 0:
        return low
    if f_high == 0:
        return high
    if f_low * f_high > 0:
        raise ValueError("bisection bracket does not straddle a root")
    for _ in range(200):
        mid = 0.5 * (low + high)
        f_mid = func(mid)
        if abs(f_mid) < tol or (high - low) < tol:
            return mid
        if f_low * f_mid <= 0:
            high, f_high = mid, f_mid
        else:
            low, f_low = mid, f_mid
    return 0.5 * (low + high)


def branching_gradient_without_consistency(branching: float) -> float:
    """Stationarity condition ``B ln B - 2B + 2`` from Section 4.4."""
    return branching * math.log(branching) - 2.0 * branching + 2.0


def branching_gradient_with_consistency(branching: float) -> float:
    """Stationarity condition ``B ln B - 2B - 2`` from Section 4.5."""
    return branching * math.log(branching) - 2.0 * branching - 2.0


def optimal_branching_factor(consistency: bool = False) -> float:
    """Numerical solution of the paper's optimal fan-out equation.

    Returns ~4.92 without consistency and ~9.18 with it.
    """
    if consistency:
        return _bisect(branching_gradient_with_consistency, 2.0, 64.0)
    return _bisect(branching_gradient_without_consistency, 2.0, 64.0)


def recommended_power_of_two(consistency: bool = False) -> int:
    """Nearest power-of-two fan-out, which is what the experiments use."""
    optimum = optimal_branching_factor(consistency)
    lower = 2 ** int(math.floor(math.log2(optimum)))
    upper = lower * 2
    # Pick the power of two with the smaller variance-bound value.
    return lower if _bound_value(lower, consistency) <= _bound_value(upper, consistency) else upper


def _bound_value(branching: int, consistency: bool) -> float:
    """The B-dependent factor of the variance bound, up to constants.

    Without consistency: ``2 (B - 1) / ln^2 B``;
    with consistency:    ``(B + 1) / (2 ln^2 B)``.
    (Both expressions come from writing ``log_B x = ln x / ln B``.)
    """
    log_sq = math.log(branching) ** 2
    if consistency:
        return (branching + 1) / (2.0 * log_sq)
    return 2.0 * (branching - 1) / log_sq


def variance_bound_factor(branching: int, consistency: bool = False) -> float:
    """Public wrapper around the B-dependent bound factor (for plots/tests)."""
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    return _bound_value(branching, consistency)
