"""Error metrics used throughout the evaluation.

The paper reports mean squared error between true and reconstructed range
answers (each normalised to [0, 1]), plus standard deviations over repeated
runs.  These helpers keep the bookkeeping in one place so experiments,
benchmarks and tests agree on definitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def squared_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Element-wise squared errors."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if estimates.shape != truths.shape:
        raise ValueError(
            f"shape mismatch: estimates {estimates.shape} vs truths {truths.shape}"
        )
    return (estimates - truths) ** 2


def mean_squared_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Mean squared error."""
    errors = squared_errors(estimates, truths)
    if errors.size == 0:
        raise ValueError("cannot compute the MSE of zero queries")
    return float(errors.mean())


def mean_absolute_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Mean absolute error."""
    errors = np.abs(np.asarray(estimates, dtype=np.float64) - np.asarray(truths, dtype=np.float64))
    if errors.size == 0:
        raise ValueError("cannot compute the MAE of zero queries")
    return float(errors.mean())


def max_absolute_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Worst-case absolute error."""
    errors = np.abs(np.asarray(estimates, dtype=np.float64) - np.asarray(truths, dtype=np.float64))
    if errors.size == 0:
        raise ValueError("cannot compute the max error of zero queries")
    return float(errors.max())


@dataclass(frozen=True)
class RepeatedMeasurement:
    """Mean and standard deviation of a metric over repeated runs."""

    mean: float
    std: float
    values: tuple

    @property
    def count(self) -> int:
        """Number of repetitions."""
        return len(self.values)


def summarize_repetitions(values: Sequence[float]) -> RepeatedMeasurement:
    """Aggregate one metric measured over several repetitions."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise zero repetitions")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return RepeatedMeasurement(mean=float(arr.mean()), std=std, values=tuple(arr.tolist()))


def scaled_for_presentation(value: float, scale: float = 1000.0) -> float:
    """The paper multiplies MSE values by 1000 in its tables; mirror that."""
    return value * scale


def mse_by_group(
    estimates_by_group: Dict[int, np.ndarray], truths_by_group: Dict[int, np.ndarray]
) -> Dict[int, float]:
    """Per-group MSE (e.g. keyed by range length for Figure 4)."""
    if set(estimates_by_group) != set(truths_by_group):
        raise ValueError("estimate and truth groups do not match")
    return {
        key: mean_squared_error(estimates_by_group[key], truths_by_group[key])
        for key in estimates_by_group
    }


def mse_by_length(
    estimates: np.ndarray, truths: np.ndarray, lengths: np.ndarray
) -> Dict[int, float]:
    """Per-range-length MSE straight from array-native workload answers.

    ``lengths`` is the per-query range length (e.g.
    :attr:`repro.queries.workload.RangeWorkload.lengths`); the grouping is
    one ``bincount`` pass instead of materialising per-length query lists.
    """
    errors = squared_errors(estimates, truths)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != errors.shape:
        raise ValueError(
            f"shape mismatch: lengths {lengths.shape} vs errors {errors.shape}"
        )
    if errors.size == 0:
        return {}
    unique, inverse = np.unique(lengths, return_inverse=True)
    sums = np.bincount(inverse, weights=errors)
    counts = np.bincount(inverse)
    return {
        int(length): float(total / count)
        for length, total, count in zip(unique, sums, counts)
    }
