"""Analytical variance formulas, optimal-branching analysis and error metrics."""

from repro.analysis.metrics import (
    RepeatedMeasurement,
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    mse_by_group,
    scaled_for_presentation,
    squared_errors,
    summarize_repetitions,
)
from repro.analysis.optimal_branching import (
    branching_gradient_with_consistency,
    branching_gradient_without_consistency,
    optimal_branching_factor,
    recommended_power_of_two,
    variance_bound_factor,
)
from repro.analysis.variance import (
    consistency_node_variance_factor,
    flat_average_error,
    flat_range_variance,
    frequency_oracle_variance,
    haar_range_variance,
    hierarchical_average_error,
    hierarchical_range_variance,
    prefix_variance,
)

__all__ = [
    "RepeatedMeasurement",
    "max_absolute_error",
    "mean_absolute_error",
    "mean_squared_error",
    "mse_by_group",
    "scaled_for_presentation",
    "squared_errors",
    "summarize_repetitions",
    "branching_gradient_with_consistency",
    "branching_gradient_without_consistency",
    "optimal_branching_factor",
    "recommended_power_of_two",
    "variance_bound_factor",
    "consistency_node_variance_factor",
    "flat_average_error",
    "flat_range_variance",
    "frequency_oracle_variance",
    "haar_range_variance",
    "hierarchical_average_error",
    "hierarchical_range_variance",
    "prefix_variance",
]
