"""Closed-form variance expressions from the paper.

Collects every analytical bound the paper derives so that experiments and
tests can compare measured error against theory:

* Fact 1 and Lemma 4.2 for the flat methods;
* Theorem 4.3 / Eq. (1) for hierarchical histograms with level sampling;
* Lemma 4.6 and Eq. (2) for the constrained-inference variants;
* Theorem 4.5 for the average worst-case error of HH_B;
* Eq. (3) for HaarHRR;
* Section 4.7's factor-two reduction for prefix queries.

All functions work in terms of ``V_F = psi_F(eps) / N`` where
``psi_F(eps) = 4 e^eps / (e^eps - 1)^2`` (the shared variance of OUE, OLH
and HRR).
"""

from __future__ import annotations

import math

from repro.frequency_oracles.base import standard_oracle_variance


def frequency_oracle_variance(epsilon: float, n_users: int) -> float:
    """``V_F = 4 e^eps / (N (e^eps - 1)^2)``."""
    if n_users <= 0:
        raise ValueError(f"n_users must be positive, got {n_users}")
    return standard_oracle_variance(epsilon) / n_users


def flat_range_variance(epsilon: float, n_users: int, range_length: int) -> float:
    """Fact 1: variance of a flat range answer is ``r * V_F``."""
    if range_length < 1:
        raise ValueError(f"range_length must be >= 1, got {range_length}")
    return range_length * frequency_oracle_variance(epsilon, n_users)


def flat_average_error(epsilon: float, n_users: int, domain_size: int) -> float:
    """Lemma 4.2: average worst-case squared error ``(D + 2) V_F / 3``."""
    if domain_size < 1:
        raise ValueError(f"domain_size must be >= 1, got {domain_size}")
    return (domain_size + 2) * frequency_oracle_variance(epsilon, n_users) / 3.0


def _tree_height(domain_size: int, branching: int) -> int:
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    if domain_size < 2:
        raise ValueError(f"domain_size must be >= 2, got {domain_size}")
    height = 0
    size = 1
    while size < domain_size:
        size *= branching
        height += 1
    return height


def hierarchical_range_variance(
    epsilon: float,
    n_users: int,
    domain_size: int,
    branching: int,
    range_length: int,
    consistency: bool = False,
) -> float:
    """Theorem 4.3 / Eq. (1)-(2) bound for a range of length ``r``.

    With uniform level sampling each level's oracle sees ``N / h`` users in
    expectation, so the per-level variance is ``h * V_F``.  A range touches
    ``ceil(log_B r) + 1`` levels with at most ``2B - 1`` nodes per level
    (``(B + 1) / 2`` effective nodes after constrained inference).
    """
    if range_length < 1:
        raise ValueError(f"range_length must be >= 1, got {range_length}")
    height = _tree_height(domain_size, branching)
    vf = frequency_oracle_variance(epsilon, n_users)
    per_level = height * vf
    levels_touched = (
        min(height, math.ceil(math.log(range_length, branching)) + 1)
        if range_length > 1
        else 1
    )
    constant = (branching + 1) / 2.0 if consistency else (2.0 * branching - 1.0)
    return constant * per_level * levels_touched


def hierarchical_average_error(
    epsilon: float, n_users: int, domain_size: int, branching: int
) -> float:
    """Theorem 4.5: average worst-case error of HH_B over all ranges.

    ``E_B ~ 2 (B - 1) V_F log_B(D) log_B(3 D^2 / (1 + 2 D))``.
    """
    height = _tree_height(domain_size, branching)
    vf = frequency_oracle_variance(epsilon, n_users)
    log_b = lambda x: math.log(x) / math.log(branching)  # noqa: E731
    return (
        2.0
        * (branching - 1)
        * (height * vf)
        * log_b(domain_size)
        * log_b(3.0 * domain_size**2 / (1.0 + 2.0 * domain_size))
    )


def consistency_node_variance_factor(branching: int) -> float:
    """Lemma 4.6: per-node variance after constrained inference, ``B/(B+1)``."""
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    return branching / (branching + 1.0)


def haar_range_variance(epsilon: float, n_users: int, domain_size: int) -> float:
    """Eq. (3): ``V_r = 0.5 * log2(D)^2 * V_F`` for HaarHRR (independent of r)."""
    height = _tree_height(domain_size, 2)
    return 0.5 * height**2 * frequency_oracle_variance(epsilon, n_users)


def prefix_variance(range_variance: float) -> float:
    """Section 4.7: prefix queries cut only one fringe, halving the bound."""
    if range_variance < 0:
        raise ValueError("range_variance must be non-negative")
    return 0.5 * range_variance
