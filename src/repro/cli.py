"""Command-line interface for running the protocols on real data files.

While :mod:`repro.experiments` reproduces the paper's figures on synthetic
data, this CLI is the "production" entry point a practitioner would use:

* ``repro-cli generate``  -- write a synthetic population to a CSV file
  (handy for demos and for testing pipelines end to end);
* ``repro-cli run``       -- read one integer column from a CSV file (one
  row per user), execute a chosen protocol under a chosen epsilon, and
  print / save range, prefix and quantile answers as JSON;
* ``repro-cli compare``   -- run several methods on the same file and
  report their mean squared error against the exact answers, i.e. a
  one-dataset version of the paper's accuracy comparison.

The streaming trio exposes the client/server split on files, demonstrating
a sharded multi-server round trip:

* ``repro-cli encode``    -- user side only: privatize a CSV of items into
  one or more report files (``--shards K`` splits the population);
* ``repro-cli aggregate`` -- server side only: fold report files into a
  serialized accumulator state (run once per server shard);
* ``repro-cli merge``     -- combine shard states (exactly, in any order),
  finalize, and answer range/quantile queries.

The ``engine`` subcommands expose the epoch-aware aggregation-service
façade (:class:`repro.engine.Engine`) on files, replacing the ad-hoc
state-file juggling for long-running services (``aggregate`` and
``merge`` remain as thin wrappers over the same façade):

* ``repro-cli engine checkpoint`` -- fold report files into one epoch of a
  durable checkpoint (created on first use, extended thereafter);
* ``repro-cli engine info``       -- inspect a checkpoint (spec, epochs,
  per-epoch report counts) and optionally export a merged window as a
  classic state file;
* ``repro-cli engine query``      -- restore a checkpoint and answer
  range/quantile/rectangle queries over a window of epochs
  (``--window all``, ``--window last:K``, or ``--window 0,2,5``).

The service pair runs the same machinery over the network
(:mod:`repro.service`):

* ``repro-cli serve``   -- HTTP ingest gateway + shard worker processes,
  epoch close on ``POST /close``, durable ``--checkpoint`` restore;
* ``repro-cli loadgen`` -- drive a running gateway with synthetic
  traffic and report sustained reports/second and latency percentiles.

``encode`` and ``aggregate`` accept ``-`` for stdin/stdout (``encode
--output -`` emits the service's framed-batch wire format), so the
pipeline composes with shell pipes and ``curl``.

Every registry handle (``flat``, ``hh``, ``haar`` / ``wavelet``,
``grid2d`` / ``grid``) round-trips through the sharded workflow.  The 2-D
grid encodes two CSV columns (``--column`` / ``--column-y``, sized by
``--domain-size`` / ``--domain-size-y``) and answers axis-aligned
``--rectangles`` at merge time instead of scalar ranges.

Example::

    repro-cli generate --distribution cauchy --domain-size 1024 \
        --n-users 100000 --output users.csv
    repro-cli run --input users.csv --domain-size 1024 --epsilon 1.1 \
        --method hh --branching 4 --ranges 0:127,128:511 --quantiles 0.5,0.9

    # The same computation, sharded across two aggregation servers:
    repro-cli encode --input users.csv --domain-size 1024 --epsilon 1.1 \
        --method hh --branching 4 --shards 2 --output reports.bin
    repro-cli aggregate --reports reports.bin.0 --output shard0.state
    repro-cli aggregate --reports reports.bin.1 --output shard1.state
    repro-cli merge --states shard0.state shard1.state \
        --ranges 0:127,128:511 --quantiles 0.5,0.9
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import (
    PROTOCOL_ALIASES,
    PROTOCOL_REGISTRY,
    RangeQueryProtocol,
    accepted_protocol_kwargs,
    make_protocol,
)
from repro.analysis.metrics import mean_squared_error
from repro.core.exceptions import ProtocolUsageError
from repro.core.rng import ensure_rng
from repro.core.serialization import (
    MAGIC_BATCH,
    SerializationError,
    pack_report_batch,
    unpack_report_batch,
)
from repro.core.postprocess import available_pipelines
from repro.core.session import (
    Report,
    load_report_bytes,
    load_report_file,
    protocol_from_spec,
    save_report_file,
    save_server_file,
)
from repro.engine import Engine, parse_window, resolve_window
from repro.data.synthetic import DISTRIBUTIONS, make_population
from repro.queries.workload import true_answers
from repro.core.types import RangeSpec


# --------------------------------------------------------------------- #
# small parsing helpers (exposed for tests)
# --------------------------------------------------------------------- #
def parse_ranges(text: str) -> List[Tuple[int, int]]:
    """Parse ``"0:127,300:511"`` into a list of (left, right) tuples."""
    ranges: List[Tuple[int, int]] = []
    if not text:
        return ranges
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            left_text, right_text = piece.split(":")
            left, right = int(left_text), int(right_text)
        except ValueError as exc:
            raise ValueError(f"malformed range {piece!r}; expected left:right") from exc
        if left > right:
            raise ValueError(f"range {piece!r} has left > right")
        ranges.append((left, right))
    return ranges


def parse_rectangles(text: str) -> List[Tuple[int, int, int, int]]:
    """Parse ``"0:7:0:7,2:5:9:13"`` into (xl, xr, yl, yr) tuples."""
    rectangles: List[Tuple[int, int, int, int]] = []
    if not text:
        return rectangles
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        try:
            xl, xr, yl, yr = (int(part) for part in piece.split(":"))
        except ValueError as exc:
            raise ValueError(
                f"malformed rectangle {piece!r}; expected xleft:xright:yleft:yright"
            ) from exc
        if xl > xr or yl > yr:
            raise ValueError(f"rectangle {piece!r} has left > right")
        rectangles.append((xl, xr, yl, yr))
    return rectangles


def parse_quantiles(text: str) -> List[float]:
    """Parse ``"0.5,0.9,0.99"`` into a list of floats in [0, 1]."""
    quantiles: List[float] = []
    if not text:
        return quantiles
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        value = float(piece)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"quantile {value} outside [0, 1]")
        quantiles.append(value)
    return quantiles


def read_item_columns(
    path: str, columns: Sequence[int], has_header: bool = False
) -> np.ndarray:
    """Read integer columns from a CSV file (one row per user) in one pass.

    ``path`` may be ``"-"`` for standard input.  Returns an
    ``(N, len(columns))`` ``int64`` array.
    """

    def collect(handle) -> List[List[int]]:
        rows: List[List[int]] = []
        for row_number, row in enumerate(csv.reader(handle)):
            if has_header and row_number == 0:
                continue
            if not row:
                continue
            try:
                rows.append([int(float(row[column])) for column in columns])
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"could not read integers from columns {list(columns)} "
                    f"of line {row_number + 1}"
                ) from exc
        return rows

    if path == "-":
        rows = collect(sys.stdin)
    else:
        with open(path, newline="") as handle:
            rows = collect(handle)
    if not rows:
        raise ValueError(f"no usable rows found in {path}")
    return np.asarray(rows, dtype=np.int64)


def read_items(path: str, column: int = 0, has_header: bool = False) -> np.ndarray:
    """Read one integer column from a CSV file (one row per user)."""
    return read_item_columns(path, [column], has_header=has_header)[:, 0]


def write_items(path: str, items: np.ndarray) -> None:
    """Write one user per line to a CSV file.

    ``items`` may be a 1-D array (one value per user) or an ``(N, 2)``
    array of coordinate pairs (one ``x,y`` row per user, as the grid2d
    method consumes).
    """
    items = np.asarray(items)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for value in items:
            writer.writerow([int(entry) for entry in np.atleast_1d(value)])


def _check_domain_bounds(items: np.ndarray, domain_size: int) -> None:
    if items.max() >= domain_size or items.min() < 0:
        raise SystemExit(
            f"input values fall outside [0, {domain_size}); "
            "pass the correct --domain-size"
        )


#: Every handle :func:`repro.make_protocol` accepts, aliases included, so
#: the CLI listing can never drift out of sync with the registry.
PROTOCOL_CHOICES = sorted(set(PROTOCOL_REGISTRY) | set(PROTOCOL_ALIASES))
#: Handles usable by the 1-D ``run`` / ``compare`` commands: exactly the
#: registry entries implementing the scalar-range protocol interface
#: (the grid answers rectangles, not ranges), plus their aliases.
RANGE_PROTOCOL_CHOICES = sorted(
    name
    for name in PROTOCOL_CHOICES
    if issubclass(
        PROTOCOL_REGISTRY[PROTOCOL_ALIASES.get(name, name)], RangeQueryProtocol
    )
)


def _build_protocol(args: argparse.Namespace):
    """Build the selected protocol, forwarding only the kwargs it accepts.

    Driven by :func:`repro.accepted_protocol_kwargs` rather than a
    per-family dispatch, so a newly registered family picks up the
    matching CLI flags (``--branching``, ``--oracle``, ...) automatically.
    """
    method = PROTOCOL_ALIASES.get(args.method, args.method)
    candidates = {
        "branching": getattr(args, "branching", None),
        "oracle": getattr(args, "oracle", None),
        "consistency": (
            not args.no_consistency if hasattr(args, "no_consistency") else None
        ),
        "domain_size_y": _domain_size_y(args),
        "postprocess": getattr(args, "postprocess", None),
    }
    accepted = accepted_protocol_kwargs(PROTOCOL_REGISTRY[method])
    kwargs = {
        name: value
        for name, value in candidates.items()
        if name in accepted and value is not None
    }
    try:
        return make_protocol(method, args.domain_size, args.epsilon, **kwargs)
    except ValueError as exc:
        # e.g. an unknown --postprocess token; surface the registry message.
        raise SystemExit(str(exc))


def _domain_size_y(args: argparse.Namespace) -> int:
    """The y-axis size of a grid protocol (square grids by default)."""
    domain_size_y = getattr(args, "domain_size_y", None)
    return args.domain_size if domain_size_y is None else domain_size_y


def _is_grid_method(args: argparse.Namespace) -> bool:
    return PROTOCOL_ALIASES.get(args.method, args.method) == "grid2d"


# --------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------- #
def command_generate(args: argparse.Namespace) -> int:
    dataset = make_population(
        args.distribution,
        args.domain_size,
        args.n_users,
        rng=ensure_rng(args.seed),
    )
    write_items(args.output, dataset.items)
    print(f"wrote {dataset.n_users} rows to {args.output}")
    return 0


def command_run(args: argparse.Namespace) -> int:
    items = read_items(args.input, column=args.column, has_header=args.has_header)
    _check_domain_bounds(items, args.domain_size)
    protocol = _build_protocol(args)
    estimator = protocol.run(items, rng=ensure_rng(args.seed))

    output = {
        "method": protocol.name,
        "epsilon": args.epsilon,
        "domain_size": args.domain_size,
        "n_users": int(len(items)),
    }
    output.update(_answer_queries(estimator, args))

    _write_query_output(output, args)
    return 0


def _answer_queries(estimator, args: argparse.Namespace) -> dict:
    """Evaluate the --ranges / --quantiles / --dump-frequencies requests.

    Grid estimators answer axis-aligned rectangles (--rectangles) instead
    of scalar ranges and quantiles.
    """
    if hasattr(estimator, "rectangle_query"):
        if (
            getattr(args, "ranges", "")
            or getattr(args, "quantiles", "")
            or getattr(args, "dump_frequencies", False)
        ):
            raise SystemExit(
                "a 2-D grid protocol answers --rectangles "
                "(xleft:xright:yleft:yright), not "
                "--ranges/--quantiles/--dump-frequencies"
            )
        answers = {"rectangles": {}}
        for xl, xr, yl, yr in parse_rectangles(getattr(args, "rectangles", "")):
            answers["rectangles"][f"{xl}:{xr}:{yl}:{yr}"] = estimator.rectangle_query(
                (xl, xr), (yl, yr)
            )
        return answers
    if getattr(args, "rectangles", ""):
        raise SystemExit("--rectangles requires a 2-D grid protocol (method grid2d)")
    answers = {"ranges": {}, "quantiles": {}}
    for left, right in parse_ranges(args.ranges):
        answers["ranges"][f"{left}:{right}"] = estimator.range_query((left, right))
    for phi in parse_quantiles(args.quantiles):
        answers["quantiles"][f"{phi:g}"] = int(estimator.quantile_query(phi))
    if getattr(args, "dump_frequencies", False):
        answers["frequencies"] = [float(v) for v in estimator.estimated_frequencies()]
    return answers


def _write_query_output(output: dict, args: argparse.Namespace) -> None:
    text = json.dumps(output, indent=2, sort_keys=True)
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote results to {args.output}")
    else:
        print(text)


def command_encode(args: argparse.Namespace) -> int:
    """Client side of the streaming pipeline: items -> report file(s).

    ``--input -`` reads the CSV from standard input; ``--output -``
    writes one framed report batch (the service's ``POST /ingest``
    payload, ``--shards`` reports as its frames) to standard output, so
    ``encode`` pipes directly into ``aggregate`` or ``curl``.
    """
    if _is_grid_method(args):
        items = read_item_columns(
            args.input, [args.column, args.column_y], has_header=args.has_header
        )
        _check_domain_bounds(items[:, 0], args.domain_size)
        _check_domain_bounds(items[:, 1], _domain_size_y(args))
    else:
        items = read_items(args.input, column=args.column, has_header=args.has_header)
        _check_domain_bounds(items, args.domain_size)
    protocol = _build_protocol(args)
    client = protocol.client()
    rng = ensure_rng(args.seed)
    shards = int(args.shards)
    if shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.output == "-":
        reports = [
            client.encode_batch(chunk, rng=rng)
            for chunk in np.array_split(items, shards)
        ]
        sys.stdout.buffer.write(pack_report_batch(protocol, reports))
        sys.stdout.buffer.flush()
        print(
            f"encoded {len(items)} users with {protocol.name} into a "
            f"{len(reports)}-frame batch on stdout",
            file=sys.stderr,
        )
        return 0
    paths = []
    for index, chunk in enumerate(np.array_split(items, shards)):
        report = client.encode_batch(chunk, rng=rng)
        path = args.output if shards == 1 else f"{args.output}.{index}"
        save_report_file(path, protocol, report)
        paths.append(path)
    print(
        f"encoded {len(items)} users with {protocol.name} into "
        f"{len(paths)} report file(s): {', '.join(paths)}"
    )
    return 0


def _spec_sans_postprocess(spec: Optional[dict]) -> Optional[dict]:
    """A protocol spec with its assembly-time keys stripped.

    ``postprocess`` (and the ``consistency`` flag it derives) only affect
    finalize, never the accumulated statistics, so reports and shards are
    exchangeable across those settings.
    """
    if not isinstance(spec, dict):
        return spec
    return {
        key: value
        for key, value in spec.items()
        if key not in ("postprocess", "consistency")
    }


def _load_report_source(path: str):
    """Yield ``(protocol, report)`` pairs from one report source.

    ``path`` is a report file from ``encode``, or ``"-"`` for standard
    input -- which additionally accepts a framed report batch (the
    service wire format, as ``encode --output -`` emits), yielding one
    pair per frame.
    """
    if path == "-":
        data = sys.stdin.buffer.read()
        if data.startswith(MAGIC_BATCH):
            header, frames = unpack_report_batch(data)
            spec = header.get("protocol")
            if not isinstance(spec, dict):
                raise SerializationError(
                    "the framed batch on stdin carries no protocol spec"
                )
            protocol = protocol_from_spec(spec)
            for frame in frames:
                yield protocol, Report.from_bytes(frame)
        else:
            yield load_report_bytes(data, source="<stdin>")
    else:
        yield load_report_file(path)


def _ingest_report_files(
    paths: Sequence[str],
    session,
    spec: Optional[dict],
    epoch: Optional[int] = 0,
    postprocess: Optional[str] = None,
) -> Tuple[object, dict, int]:
    """Fold report files into an engine session, validating their specs.

    ``session`` may be ``None``; it is created from the first report's
    protocol, on epoch ``epoch`` (``None`` = the engine's next fresh key).
    ``postprocess`` optionally overrides the pipeline recorded in the
    report files.  Spec compatibility across files ignores the
    ``postprocess`` key (post-processing never touches the accumulated
    statistics, so shards encoded under different pipelines are
    exchangeable; the first file's -- or the override's -- pipeline wins).
    A path of ``"-"`` reads standard input (a report file or a framed
    batch).  Returns ``(session, spec, n_reports_folded)``.
    """
    folded = 0
    for path in paths:
        try:
            pairs = list(_load_report_source(path))
        except (OSError, SerializationError, ValueError) as exc:
            raise SystemExit(f"could not load report file {path}: {exc}")
        for protocol, report in pairs:
            if session is None:
                spec = protocol.spec()
                if postprocess is not None:
                    try:
                        protocol = protocol_from_spec(
                            {**spec, "postprocess": postprocess}
                        )
                    except ValueError as exc:
                        raise SystemExit(str(exc))
                session = Engine.open(protocol).session(epoch=epoch)
            elif _spec_sans_postprocess(protocol.spec()) != _spec_sans_postprocess(
                spec
            ):
                raise SystemExit(
                    f"{path} was encoded with a different protocol configuration "
                    f"({protocol.spec()} != {spec})"
                )
            session.ingest(report)
            folded += report.n_users
    return session, spec, folded


def command_aggregate(args: argparse.Namespace) -> int:
    """Server side of the streaming pipeline: report files -> shard state.

    Thin wrapper over the engine façade: one single-epoch engine ingests
    every report file and its shard state is written in the classic v1
    layout, so downstream ``merge`` / ``engine checkpoint`` runs (and
    pre-engine tooling) consume it unchanged.  ``--reports -`` reads a
    report file or framed batch from standard input; ``--output -``
    writes the state bytes to standard output, so the whole pipeline
    composes with shell pipes.
    """
    session, _, _ = _ingest_report_files(
        args.reports, None, None, postprocess=getattr(args, "postprocess", None)
    )
    if session is None:
        raise SystemExit("no report files given")
    # Classic layout: strip the engine's epoch annotation so the output
    # stays byte-identical to a plain single-server aggregation.
    session.server.state.meta.clear()
    if args.output == "-":
        sys.stdout.buffer.write(session.server.to_bytes())
        sys.stdout.buffer.flush()
        destination, status_stream = "stdout", sys.stderr
    else:
        save_server_file(args.output, session.server)
        destination, status_stream = args.output, sys.stdout
    print(
        f"aggregated {session.n_reports} reports from {len(args.reports)} "
        f"file(s) into {destination}",
        file=status_stream,
    )
    return 0


def _engine_from_state_files(paths: Sequence[str]) -> Engine:
    """An engine holding one epoch per state file, in file order."""
    engine = None
    for path in paths:
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            if engine is None:
                engine = Engine.from_bytes(blob)
            else:
                engine.adopt_state(blob)
        except (OSError, SerializationError) as exc:
            raise SystemExit(f"could not load state file {path}: {exc}")
        except ProtocolUsageError as exc:
            raise SystemExit(str(exc))
    if engine is None:
        raise SystemExit("no state files given")
    return engine


def _export_classic_state(path: str, state) -> None:
    """Write a merged window as a classic (pre-engine, meta-free) state file.

    Stripping the window annotation keeps the bytes identical to what a
    plain single-server aggregation of the same reports would produce.
    """
    state.meta = {}
    with open(path, "wb") as handle:
        handle.write(state.to_bytes())


def _window_output(engine: Engine, window, estimator, args: argparse.Namespace) -> dict:
    """The common JSON skeleton of the windowed query commands."""
    protocol = engine.protocol
    if hasattr(protocol, "domain_size"):
        domain_size = protocol.domain_size
    else:  # 2-D grid: one size per axis
        domain_size = [protocol.domain_size_x, protocol.domain_size_y]
    output = {
        "method": protocol.name,
        "epsilon": protocol.epsilon,
        "domain_size": domain_size,
        "n_users": int(engine.n_reports(window)),
    }
    output.update(_answer_queries(estimator, args))
    return output


def command_merge(args: argparse.Namespace) -> int:
    """Combine shard states exactly, finalize, and answer queries.

    Thin wrapper over the engine façade: each state file becomes one
    epoch and the answer is the ``window="all"`` estimator -- the lazily
    merged window reproduces the old in-place merge bit-for-bit.
    """
    engine = _engine_from_state_files(args.states)
    if args.output_state:
        merged = engine.window_state()
        _export_classic_state(args.output_state, merged)
        print(f"wrote merged state ({merged.n_reports} reports) to {args.output_state}")

    try:
        estimator = engine.estimator()
    except ProtocolUsageError as exc:
        raise SystemExit(str(exc))
    output = _window_output(engine, None, estimator, args)
    output["n_shards"] = len(args.states)
    _write_query_output(output, args)
    return 0


# --------------------------------------------------------------------- #
# engine subcommands: the epoch-aware aggregation-service façade on files
# --------------------------------------------------------------------- #
def _restore_engine(path: Optional[str] = None, store_dir: Optional[str] = None) -> Engine:
    """Restore an engine from a checkpoint file or an epoch store directory."""
    if store_dir is not None:
        try:
            return Engine.open(None, store_dir=store_dir)
        except (OSError, SerializationError) as exc:
            raise SystemExit(f"could not open epoch store {store_dir}: {exc}")
    try:
        return Engine.restore(path)
    except (OSError, SerializationError) as exc:
        raise SystemExit(f"could not restore engine checkpoint {path}: {exc}")


def _checkpoint_source(args: argparse.Namespace) -> Tuple[Optional[str], Optional[str]]:
    """Validate the ``--checkpoint`` / ``--store-dir`` pair of a subcommand."""
    checkpoint = getattr(args, "checkpoint", None)
    store_dir = getattr(args, "store_dir", None)
    if checkpoint is None and store_dir is None:
        raise SystemExit("one of --checkpoint or --store-dir is required")
    if checkpoint is not None and store_dir is not None:
        raise SystemExit(
            "--checkpoint and --store-dir are mutually exclusive: a store "
            "directory replaces the monolithic checkpoint file"
        )
    return checkpoint, store_dir


def _parse_window_arg(args: argparse.Namespace):
    try:
        return parse_window(getattr(args, "window", "all"))
    except (ValueError, ProtocolUsageError) as exc:
        raise SystemExit(str(exc))


def command_engine_checkpoint(args: argparse.Namespace) -> int:
    """Fold report files into one epoch of a durable engine checkpoint.

    The checkpoint (file or epoch store directory) is created on first
    use and extended on every subsequent run; ``--epoch`` selects the
    epoch (default: the next fresh one), and re-using an epoch key
    appends to that epoch's shard.  With ``--store-dir`` the write is
    *incremental*: only the touched epoch's segment is rewritten, and
    every other epoch's segment stays byte-identical on disk.
    """
    checkpoint, store_dir = _checkpoint_source(args)
    engine = None
    spec = None
    if store_dir is not None and os.path.exists(
        os.path.join(store_dir, "MANIFEST.json")
    ):
        engine = _restore_engine(store_dir=store_dir)
        spec = engine.spec()
    elif checkpoint is not None and os.path.exists(checkpoint):
        engine = _restore_engine(checkpoint)
        spec = engine.spec()
    session = None
    if engine is not None:
        try:
            session = engine.session(epoch=args.epoch)
        except (ProtocolUsageError, SerializationError) as exc:
            raise SystemExit(str(exc))
    session, spec, folded = _ingest_report_files(
        args.reports, session, spec, epoch=args.epoch
    )
    if session is None:
        raise SystemExit("no report files given")
    engine = session.engine
    try:
        if store_dir is not None:
            if engine.store is None:
                engine.attach_store(store_dir)
            engine.checkpoint()
            engine.seal_epoch(session.epoch)
            destination = store_dir
        else:
            engine.checkpoint(checkpoint)
            destination = checkpoint
    except (OSError, SerializationError, ProtocolUsageError) as exc:
        raise SystemExit(f"could not write checkpoint: {exc}")
    print(
        f"epoch {session.epoch}: folded {folded} reports from "
        f"{len(args.reports)} file(s); checkpoint {destination} now holds "
        f"epochs {list(engine.epochs)} ({engine.n_reports()} reports total)"
    )
    return 0


def command_engine_info(args: argparse.Namespace) -> int:
    """Inspect a checkpoint; optionally export a window as a state file.

    Reports per-epoch report counts and serialized sizes (plus on-disk
    segment sizes and seal/dirty status when store-backed), without
    materializing a single sealed epoch.
    """
    checkpoint, store_dir = _checkpoint_source(args)
    engine = _restore_engine(checkpoint, store_dir=store_dir)
    window = _parse_window_arg(args)
    epoch_stats = engine.epoch_stats()
    output = {
        "checkpoint": checkpoint if store_dir is None else store_dir,
        "method": getattr(engine.protocol, "name", type(engine.protocol).__name__),
        "spec": engine.spec(),
        "epochs": list(engine.epochs),
        "epoch_reports": {
            str(epoch): stats["n_reports"] for epoch, stats in epoch_stats.items()
        },
        "epoch_stats": {str(epoch): stats for epoch, stats in epoch_stats.items()},
        "n_users": engine.n_reports(),
    }
    if engine.store is not None:
        output["store"] = {
            "dir": engine.store.directory,
            "sealed_epochs": list(engine.sealed_epochs),
            "on_disk_bytes": engine.store.total_bytes(),
            "aggregates": engine.store.aggregate_stats(),
        }
        if getattr(args, "aggregates", False):
            # Detailed listing: one row per materialized aggregate block,
            # plus the cover plan the current window would use.
            output["store"]["aggregate_segments"] = engine.store.aggregate_entries()
            sealed = [
                epoch
                for epoch in resolve_window(window, list(engine.epochs))
                if epoch in engine.store
            ]
            output["store"]["window_plan"] = [
                list(node) for node in engine.store.plan_window(sealed)
            ]
    if args.output_state:
        try:
            merged = engine.window_state(window)
        except ProtocolUsageError as exc:
            raise SystemExit(str(exc))
        _export_classic_state(args.output_state, merged)
        output["output_state"] = args.output_state
        output["window_reports"] = int(merged.n_reports)
    print(json.dumps(output, indent=2, sort_keys=True))
    return 0


def command_engine_query(args: argparse.Namespace) -> int:
    """Restore a checkpoint and answer queries over a window of epochs.

    ``--postprocess`` re-finalizes the checkpointed statistics under a
    different pipeline (post-processing never touches the accumulated
    state, so no re-ingestion is needed).  With ``--store-dir`` the
    window is answered out-of-core: only the selected epochs' segments
    are read (via pushdown when available), bit-identically to the
    in-RAM merge path.
    """
    checkpoint, store_dir = _checkpoint_source(args)
    engine = _restore_engine(checkpoint, store_dir=store_dir)
    window = _parse_window_arg(args)
    postprocess = getattr(args, "postprocess", None)
    if postprocess is not None:
        try:
            engine = engine.with_postprocess(postprocess)
        except (ValueError, ProtocolUsageError) as exc:
            raise SystemExit(str(exc))
    try:
        selected = resolve_window(window, engine.epochs)
        estimator = engine.estimator(window)
    except (ProtocolUsageError, SerializationError) as exc:
        raise SystemExit(str(exc))
    output = _window_output(engine, window, estimator, args)
    output["window"] = getattr(args, "window", "all")
    output["epochs"] = selected
    if postprocess is not None:
        output["postprocess"] = postprocess
    _write_query_output(output, args)
    return 0


def command_compare(args: argparse.Namespace) -> int:
    items = read_items(args.input, column=args.column, has_header=args.has_header)
    counts = np.bincount(items, minlength=args.domain_size).astype(float)
    frequencies = counts / counts.sum()
    ranges = parse_ranges(args.ranges)
    if not ranges:
        raise SystemExit("--ranges is required for compare")
    specs = [RangeSpec(left, right) for left, right in ranges]
    truths = true_answers(specs, frequencies)

    results = {}
    rng = ensure_rng(args.seed)
    for method in args.methods.split(","):
        method = PROTOCOL_ALIASES.get(method.strip(), method.strip())
        if method not in RANGE_PROTOCOL_CHOICES:
            raise SystemExit(
                f"--methods entry {method!r} is not a 1-D range protocol; "
                f"expected one of {RANGE_PROTOCOL_CHOICES}"
            )
        kwargs = {}
        if method == "hh":
            kwargs.update(branching=args.branching, oracle=args.oracle)
        elif method == "flat":
            kwargs.update(oracle=args.oracle)
        protocol = make_protocol(method, args.domain_size, args.epsilon, **kwargs)
        estimator = protocol.run(items, rng=rng)
        estimates = estimator.range_queries(specs)
        results[protocol.name] = mean_squared_error(estimates, truths)

    print(json.dumps(results, indent=2, sort_keys=True))
    best = min(results, key=results.get)
    print(f"best method on this workload: {best}", file=sys.stderr)
    return 0


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #
def command_serve(args: argparse.Namespace) -> int:
    """Run the network-facing aggregation service (gateway + workers).

    With ``--checkpoint`` pointing at an existing file the service
    resumes from it (ignoring the protocol flags -- the checkpoint *is*
    the configuration); otherwise a fresh engine is built from
    ``--method``/``--domain-size``/``--epsilon`` and the checkpoint file,
    if requested, is created on the first epoch close.  SIGINT/SIGTERM
    trigger a graceful shutdown: the in-progress epoch is closed, a final
    checkpoint written, and the workers quit cleanly.
    """
    import asyncio
    import signal

    # Deferred import: the service layer is optional machinery the rest
    # of the CLI never pays for (and it imports cli's query grammar).
    from repro.service import AggregationService

    options = {
        "num_workers": args.workers,
        "host": args.host,
        "port": args.port,
        "checkpoint_every": args.checkpoint_every,
        "wal_dir": args.wal_dir,
        "wal_sync": args.wal_sync,
        "request_timeout": args.request_timeout,
        "max_inflight": args.max_inflight,
    }
    store_dir = getattr(args, "store_dir", None)
    try:
        if store_dir and os.path.exists(os.path.join(store_dir, "MANIFEST.json")):
            service = AggregationService.from_store(
                store_dir, checkpoint_path=args.checkpoint, **options
            )
            origin = f"restored from store {store_dir}"
        elif args.checkpoint and os.path.exists(args.checkpoint):
            service = AggregationService.from_checkpoint(
                args.checkpoint, store_dir=store_dir, **options
            )
            origin = f"restored from {args.checkpoint}"
        else:
            if args.domain_size is None:
                raise SystemExit(
                    "--domain-size is required unless --checkpoint or "
                    "--store-dir names an existing checkpoint to restore"
                )
            service = AggregationService(
                _build_protocol(args),
                checkpoint_path=args.checkpoint,
                store_dir=store_dir,
                **options,
            )
            origin = "fresh engine"
    except SerializationError as exc:
        raise SystemExit(str(exc))

    async def run() -> None:
        await service.start()
        epochs = list(service.engine.epochs)
        wal = f"wal={args.wal_dir}" if args.wal_dir else "wal=off"
        print(
            f"serving {service.spec.get('name')} on {service.url} "
            f"({args.workers} workers, {origin}, {wal}, epochs={epochs}); "
            "Ctrl-C for graceful shutdown",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("shutting down: closing epoch, flushing checkpoint", flush=True)
        await service.stop(flush=True)
        print(f"stopped; engine holds epochs {list(service.engine.epochs)}", flush=True)

    asyncio.run(run())
    return 0


def command_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service with synthetic traffic and report numbers.

    Fetches the protocol spec from the gateway itself (clients must
    encode for the server's configuration), generates and privatizes a
    synthetic population locally, posts it from ``--concurrency``
    threads, closes the epoch, and prints a JSON document with sustained
    reports/second and ingest latency percentiles.
    """
    from repro.service import generate_batches, request_json, run_loadgen

    url = args.url.rstrip("/")
    try:
        spec = request_json(url + "/spec")
    except (OSError, RuntimeError, ValueError) as exc:
        raise SystemExit(f"could not fetch {url}/spec: {exc}")
    try:
        dataset, blobs = generate_batches(
            spec,
            n_users=args.users,
            batch_size=args.batch_size,
            distribution=args.distribution,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    result = run_loadgen(
        url,
        blobs,
        dataset.n_users,
        concurrency=args.concurrency,
        close_epoch=not args.no_close,
        max_retries=args.max_retries,
        query_mix=args.query_mix,
        query_window=args.query_window,
    )
    document = {"url": url, "spec": spec, **result.to_document()}
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0 if result.errors == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Run LDP range-query protocols on CSV data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic population CSV")
    generate.add_argument("--distribution", choices=sorted(DISTRIBUTIONS), default="cauchy")
    generate.add_argument("--domain-size", type=int, required=True)
    generate.add_argument("--n-users", type=int, required=True)
    generate.add_argument("--output", required=True)
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(func=command_generate)

    def add_postprocess_argument(sub):
        sub.add_argument(
            "--postprocess",
            default=None,
            help=(
                "post-processing pipeline applied at estimate assembly: "
                f"'+'-combinations of {', '.join(available_pipelines())} "
                "(default: the protocol's own default)"
            ),
        )

    def add_common_run_arguments(sub):
        sub.add_argument("--input", required=True, help="CSV file with one user per row")
        sub.add_argument("--column", type=int, default=0)
        sub.add_argument("--has-header", action="store_true")
        sub.add_argument("--domain-size", type=int, required=True)
        sub.add_argument("--epsilon", type=float, default=1.1)
        sub.add_argument("--branching", type=int, default=4)
        sub.add_argument("--oracle", default="oue")
        sub.add_argument("--seed", type=int, default=None)
        sub.add_argument("--ranges", default="", help="comma separated left:right pairs")

    run = subparsers.add_parser("run", help="run one protocol and answer queries")
    add_common_run_arguments(run)
    add_postprocess_argument(run)
    run.add_argument("--method", choices=RANGE_PROTOCOL_CHOICES, default="hh")
    run.add_argument("--no-consistency", action="store_true")
    run.add_argument("--quantiles", default="", help="comma separated values in [0, 1]")
    run.add_argument("--dump-frequencies", action="store_true")
    run.add_argument("--output", default=None, help="write JSON here instead of stdout")
    run.set_defaults(func=command_run)

    compare = subparsers.add_parser("compare", help="compare several methods on one file")
    add_common_run_arguments(compare)
    compare.add_argument("--methods", default="flat,hh,haar")
    compare.set_defaults(func=command_compare)

    encode = subparsers.add_parser(
        "encode", help="privatize a CSV of items into report file(s) (client side)"
    )
    encode.add_argument("--input", required=True, help="CSV file with one user per row")
    encode.add_argument("--column", type=int, default=0)
    encode.add_argument(
        "--column-y",
        type=int,
        default=1,
        help="CSV column of the y coordinate (grid2d only)",
    )
    encode.add_argument("--has-header", action="store_true")
    encode.add_argument("--domain-size", type=int, required=True)
    encode.add_argument(
        "--domain-size-y",
        type=int,
        default=None,
        help="y-axis size for grid2d (defaults to --domain-size)",
    )
    encode.add_argument("--epsilon", type=float, default=1.1)
    encode.add_argument("--method", choices=PROTOCOL_CHOICES, default="hh")
    encode.add_argument("--branching", type=int, default=4)
    encode.add_argument("--oracle", default="oue")
    encode.add_argument("--no-consistency", action="store_true")
    add_postprocess_argument(encode)
    encode.add_argument("--seed", type=int, default=None)
    encode.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the population into K report files (suffix .0 .. .K-1)",
    )
    encode.add_argument("--output", required=True, help="report file (or prefix)")
    encode.set_defaults(func=command_encode)

    aggregate = subparsers.add_parser(
        "aggregate",
        help="fold report file(s) into a serialized accumulator state (server side)",
    )
    aggregate.add_argument(
        "--reports", nargs="+", required=True, help="report files from encode"
    )
    aggregate.add_argument("--output", required=True, help="accumulator state file")
    add_postprocess_argument(aggregate)
    aggregate.set_defaults(func=command_aggregate)

    merge = subparsers.add_parser(
        "merge", help="merge shard states exactly and answer queries"
    )
    merge.add_argument(
        "--states", nargs="+", required=True, help="state files from aggregate"
    )
    merge.add_argument("--ranges", default="", help="comma separated left:right pairs")
    merge.add_argument("--quantiles", default="", help="comma separated values in [0, 1]")
    merge.add_argument(
        "--rectangles",
        default="",
        help="comma separated xleft:xright:yleft:yright rectangles (grid2d only)",
    )
    merge.add_argument("--dump-frequencies", action="store_true")
    merge.add_argument("--output", default=None, help="write JSON here instead of stdout")
    merge.add_argument(
        "--output-state", default=None, help="also write the merged state here"
    )
    merge.set_defaults(func=command_merge)

    engine = subparsers.add_parser(
        "engine",
        help="epoch-aware aggregation service: durable checkpoints + windowed queries",
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    checkpoint = engine_sub.add_parser(
        "checkpoint",
        help="fold report files into one epoch of a durable checkpoint",
    )
    checkpoint.add_argument(
        "--checkpoint",
        default=None,
        help="monolithic checkpoint file (created or extended)",
    )
    checkpoint.add_argument(
        "--store-dir",
        default=None,
        help=(
            "epoch store directory: per-epoch mmap segments + incremental "
            "checkpoints (replaces --checkpoint)"
        ),
    )
    checkpoint.add_argument(
        "--reports", nargs="+", required=True, help="report files from encode"
    )
    checkpoint.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="epoch key to fold into (default: the next fresh epoch)",
    )
    checkpoint.set_defaults(func=command_engine_checkpoint)

    info = engine_sub.add_parser(
        "info", help="inspect a checkpoint (spec, epochs, report counts)"
    )
    info.add_argument("--checkpoint", default=None)
    info.add_argument(
        "--store-dir",
        default=None,
        help="epoch store directory to inspect (replaces --checkpoint)",
    )
    info.add_argument(
        "--window",
        default="all",
        help="epoch window: all, last:K, or a comma separated key list",
    )
    info.add_argument(
        "--output-state",
        default=None,
        help="export the merged window as a classic state file",
    )
    info.add_argument(
        "--aggregates",
        action="store_true",
        help="list materialized aggregate segments and the window's cover plan",
    )
    info.set_defaults(func=command_engine_info)

    query = engine_sub.add_parser(
        "query", help="answer queries over a window of checkpointed epochs"
    )
    query.add_argument("--checkpoint", default=None)
    query.add_argument(
        "--store-dir",
        default=None,
        help="epoch store directory to query (replaces --checkpoint)",
    )
    query.add_argument(
        "--window",
        default="all",
        help="epoch window: all, last:K, or a comma separated key list",
    )
    query.add_argument("--ranges", default="", help="comma separated left:right pairs")
    query.add_argument("--quantiles", default="", help="comma separated values in [0, 1]")
    query.add_argument(
        "--rectangles",
        default="",
        help="comma separated xleft:xright:yleft:yright rectangles (grid2d only)",
    )
    query.add_argument("--dump-frequencies", action="store_true")
    add_postprocess_argument(query)
    query.add_argument("--output", default=None, help="write JSON here instead of stdout")
    query.set_defaults(func=command_engine_query)

    serve = subparsers.add_parser(
        "serve",
        help="run the aggregation service: HTTP ingest gateway + shard workers",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="number of shard worker processes"
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint file: restored if it exists, written on epoch close",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        help=(
            "epoch store directory: sealed epochs spill to per-epoch mmap "
            "segments and checkpoints become incremental (restored if the "
            "directory already holds a manifest)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="write the checkpoint every K-th epoch close",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        help=(
            "durable ingest log directory: every accepted batch is logged "
            "before its ack, so crashes and restarts are exactly-once"
        ),
    )
    serve.add_argument(
        "--wal-sync",
        action="store_true",
        help="fsync each WAL append (power-loss safe; much slower)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for a request before closing the connection (408)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="per-worker in-flight batch bound; beyond it ingest gets 429",
    )
    serve.add_argument("--method", choices=PROTOCOL_CHOICES, default="hh")
    serve.add_argument(
        "--domain-size",
        type=int,
        default=None,
        help="domain size (required unless restoring a checkpoint)",
    )
    serve.add_argument(
        "--domain-size-y",
        type=int,
        default=None,
        help="y-axis size for grid2d (defaults to --domain-size)",
    )
    serve.add_argument("--epsilon", type=float, default=1.1)
    serve.add_argument("--branching", type=int, default=4)
    serve.add_argument("--oracle", default="oue")
    serve.add_argument("--no-consistency", action="store_true")
    add_postprocess_argument(serve)
    serve.set_defaults(func=command_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a running service with synthetic traffic; report throughput",
    )
    loadgen.add_argument("--url", required=True, help="gateway base URL")
    loadgen.add_argument("--users", type=int, default=10000)
    loadgen.add_argument("--batch-size", type=int, default=500)
    loadgen.add_argument("--concurrency", type=int, default=4)
    loadgen.add_argument(
        "--distribution", choices=sorted(DISTRIBUTIONS), default="zipf"
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per batch on connection failures and 429/503",
    )
    loadgen.add_argument(
        "--no-close",
        action="store_true",
        help="leave the epoch open after the run (default: POST /close)",
    )
    loadgen.add_argument(
        "--query-mix",
        type=int,
        default=0,
        help="number of threads hammering GET /query alongside ingest "
        "(measures the query/ingest overlap; default 0 = ingest only)",
    )
    loadgen.add_argument(
        "--query-window",
        default="all",
        help="window the query-mix threads ask for (default all)",
    )
    loadgen.add_argument(
        "--output", default=None, help="also write the JSON result here"
    )
    loadgen.set_defaults(func=command_loadgen)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
