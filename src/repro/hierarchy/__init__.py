"""Hierarchical-histogram range queries under LDP (Sections 4.3-4.5).

Public entry point: :class:`HierarchicalHistogram` (the paper's HH_B
framework, instantiated as TreeOUE / TreeHRR / TreeOLH with or without
consistency).  Supporting pieces -- B-adic decompositions, the structural
domain tree and the constrained-inference post-processing -- are exposed for
reuse and testing.
"""

from repro.hierarchy.badic import (
    BAdicInterval,
    badic_decomposition,
    decomposition_size_bound,
    is_badic,
    worst_case_nodes_per_level,
)
from repro.hierarchy.consistency import (
    consistency_violation,
    enforce_consistency,
    mean_consistency,
    variance_reduction_factor,
    weighted_averaging,
)
from repro.hierarchy.hh import (
    LEVEL_STRATEGIES,
    HierarchicalClient,
    HierarchicalEstimator,
    HierarchicalHistogram,
    HierarchicalServer,
)
from repro.hierarchy.least_squares import (
    design_matrix,
    least_squares_leaves,
    least_squares_levels,
    range_query_variance_factor,
)
from repro.hierarchy.tree import DomainTree, TreeNode

__all__ = [
    "BAdicInterval",
    "badic_decomposition",
    "decomposition_size_bound",
    "is_badic",
    "worst_case_nodes_per_level",
    "consistency_violation",
    "enforce_consistency",
    "mean_consistency",
    "variance_reduction_factor",
    "weighted_averaging",
    "LEVEL_STRATEGIES",
    "HierarchicalClient",
    "HierarchicalEstimator",
    "HierarchicalHistogram",
    "HierarchicalServer",
    "design_matrix",
    "least_squares_leaves",
    "least_squares_levels",
    "range_query_variance_factor",
    "DomainTree",
    "TreeNode",
]
