"""Complete B-ary tree imposed over a discrete domain.

The hierarchical-histogram protocol views the domain ``[D]`` as the leaves
of a complete B-ary tree of height ``h = log_B(D_padded)``.  Every internal
node corresponds to a B-adic interval (Fact 2) and stores, conceptually, the
fraction of users whose item falls inside that interval.  This module holds
the purely structural bookkeeping: level sizes, the ancestor of an item at a
given level, the interval covered by a node, and conversion between a leaf
histogram and per-level node histograms.

Level numbering convention
--------------------------
``level 0`` is the root (one node covering the whole padded domain) and
``level h`` is the leaf level (one node per item).  The paper's "height"
``i`` of a node (leaves at height 1) relates to our level by
``i = h - level + 1``; the consistency code documents where it uses heights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.exceptions import InvalidDomainError
from repro.core.types import next_power_of
from repro.hierarchy.badic import BAdicInterval, badic_decomposition


@dataclass(frozen=True)
class TreeNode:
    """Identifier of a node: its level (0 = root) and index within the level."""

    level: int
    index: int


class DomainTree:
    """Structural view of the complete B-ary tree over a (padded) domain.

    Parameters
    ----------
    domain_size:
        The true domain size ``D``; it is padded up to the next power of
        ``branching`` so the tree is complete.
    branching:
        The fan-out ``B >= 2``.
    """

    def __init__(self, domain_size: int, branching: int) -> None:
        if branching < 2:
            raise ValueError(f"branching factor must be >= 2, got {branching}")
        if domain_size < 1:
            raise InvalidDomainError(f"domain size must be positive, got {domain_size}")
        self._domain_size = int(domain_size)
        self._branching = int(branching)
        self._padded_size = next_power_of(self._branching, self._domain_size)
        height = 0
        size = 1
        while size < self._padded_size:
            size *= self._branching
            height += 1
        self._height = height

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #
    @property
    def domain_size(self) -> int:
        """The caller-visible domain size ``D``."""
        return self._domain_size

    @property
    def padded_size(self) -> int:
        """The padded domain size ``B^h``."""
        return self._padded_size

    @property
    def branching(self) -> int:
        """The fan-out ``B``."""
        return self._branching

    @property
    def height(self) -> int:
        """The tree height ``h`` (number of non-root levels)."""
        return self._height

    @property
    def num_levels(self) -> int:
        """Total number of levels including the root (``h + 1``)."""
        return self._height + 1

    def level_size(self, level: int) -> int:
        """Number of nodes at ``level`` (``B^level``)."""
        self._check_level(level)
        return self._branching ** level

    def node_span(self, level: int) -> int:
        """Number of leaves covered by a single node at ``level``."""
        self._check_level(level)
        return self._branching ** (self._height - level)

    def _check_level(self, level: int) -> None:
        if level < 0 or level > self._height:
            raise ValueError(
                f"level must be in [0, {self._height}], got {level}"
            )

    # ------------------------------------------------------------------ #
    # item <-> node mappings
    # ------------------------------------------------------------------ #
    def ancestor_index(self, items: np.ndarray, level: int) -> np.ndarray:
        """Index of the ancestor node at ``level`` for each item."""
        self._check_level(level)
        items = np.asarray(items, dtype=np.int64)
        return items // self.node_span(level)

    def node_interval(self, node: TreeNode) -> BAdicInterval:
        """The B-adic interval of leaves covered by ``node``."""
        span = self.node_span(node.level)
        start = node.index * span
        return BAdicInterval(
            start=start, length=span, level_from_leaves=self._height - node.level
        )

    def node_for_block(self, block: BAdicInterval) -> TreeNode:
        """The tree node corresponding to a B-adic block."""
        level = self._height - block.level_from_leaves
        self._check_level(level)
        span = self.node_span(level)
        if block.length != span or block.start % span != 0:
            raise ValueError(f"block {block} is not a node of this tree")
        return TreeNode(level=level, index=block.start // span)

    def decompose_range(self, left: int, right: int) -> List[TreeNode]:
        """Tree nodes forming the canonical B-adic decomposition of ``[left, right]``."""
        blocks = badic_decomposition(left, right, self._branching)
        return [self.node_for_block(block) for block in blocks]

    def decompose_ranges_batch(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Closed-form vectorised canonical decomposition of many ranges.

        The canonical B-adic decomposition of any ``[l, r]`` selects, at
        every level, at most two *contiguous runs* of node indices: a left
        fringe (nodes peeled off while ``l`` is not child-0-aligned) and a
        right fringe (while ``r`` is not child-(B-1)-aligned).  Walking the
        levels leaf-to-root once therefore decomposes an entire array of
        queries simultaneously with ``O(h)`` vector operations, selecting
        for every query *exactly* the node set of
        :meth:`decompose_range` -- no per-query Python objects.

        Parameters
        ----------
        lefts, rights:
            Equal-length ``int64`` arrays of inclusive leaf endpoints in
            ``[0, padded_size)``; callers are expected to have validated
            them (the estimator does so in one vectorised pass).

        Returns
        -------
        list of ``(left_lo, left_hi, right_lo, right_hi)``
            One tuple per level, root first.  ``left_lo[q] .. left_hi[q]``
            (inclusive) is the left-fringe run of node indices query ``q``
            selects at that level, and similarly for the right fringe.  A
            run with ``hi < lo`` is empty; empty runs are encoded as
            ``(0, -1)`` so that a prefix-sum gather ``P[hi + 1] - P[lo]``
            evaluates to exactly ``0.0`` without masking.
        """
        branching = self._branching
        lefts = np.asarray(lefts, dtype=np.int64).reshape(-1)
        rights = np.asarray(rights, dtype=np.int64).reshape(-1)
        num_queries = lefts.size
        runs = [
            (
                np.zeros(num_queries, np.int64),
                np.full(num_queries, -1, np.int64),
                np.zeros(num_queries, np.int64),
                np.full(num_queries, -1, np.int64),
            )
            for _ in range(self.num_levels)
        ]
        if num_queries == 0:
            return runs
        low = lefts.copy()
        high = rights.copy()
        active = np.ones(num_queries, dtype=bool)
        for level in range(self._height, -1, -1):
            if not active.any():
                break
            left_lo, left_hi, right_lo, right_hi = runs[level]
            parent_low, offset_low = np.divmod(low, branching)
            parent_high, offset_high = np.divmod(high, branching)
            same_parent = parent_low == parent_high
            exact_block = (offset_low == 0) & (offset_high == branching - 1)
            # A range confined to one parent that is not the parent's exact
            # child block terminates here as a single run [low, high]; an
            # exact block keeps ascending and is emitted as one node higher
            # up (the *maximal* block of the canonical decomposition).
            take_run = active & same_parent & ~exact_block
            left_lo[take_run] = low[take_run]
            left_hi[take_run] = high[take_run]
            crossing = active & ~same_parent
            take_left = crossing & (offset_low != 0)
            left_lo[take_left] = low[take_left]
            left_hi[take_left] = (parent_low[take_left] + 1) * branching - 1
            take_right = crossing & (offset_high != branching - 1)
            right_lo[take_right] = parent_high[take_right] * branching
            right_hi[take_right] = high[take_right]
            low = np.where(take_left, parent_low + 1, parent_low)
            high = np.where(take_right, parent_high - 1, parent_high)
            active = active & ~take_run & (low <= high)
        return runs

    # ------------------------------------------------------------------ #
    # histograms
    # ------------------------------------------------------------------ #
    def level_histogram(self, leaf_counts: np.ndarray, level: int) -> np.ndarray:
        """Aggregate a leaf-level histogram up to the node counts at ``level``."""
        self._check_level(level)
        counts = np.asarray(leaf_counts, dtype=np.float64)
        if len(counts) == self._domain_size:
            padded = np.zeros(self._padded_size)
            padded[: self._domain_size] = counts
            counts = padded
        elif len(counts) != self._padded_size:
            raise ValueError(
                f"leaf_counts must have length {self._domain_size} or "
                f"{self._padded_size}, got {len(counts)}"
            )
        return counts.reshape(self.level_size(level), self.node_span(level)).sum(axis=1)

    def all_level_histograms(self, leaf_counts: np.ndarray) -> List[np.ndarray]:
        """Node counts for every level, root first."""
        return [self.level_histogram(leaf_counts, level) for level in range(self.num_levels)]

    def empty_levels(self) -> List[np.ndarray]:
        """A list of zero arrays shaped like the per-level node values."""
        return [np.zeros(self.level_size(level)) for level in range(self.num_levels)]
