"""Complete B-ary tree imposed over a discrete domain.

The hierarchical-histogram protocol views the domain ``[D]`` as the leaves
of a complete B-ary tree of height ``h = log_B(D_padded)``.  Every internal
node corresponds to a B-adic interval (Fact 2) and stores, conceptually, the
fraction of users whose item falls inside that interval.  This module holds
the purely structural bookkeeping: level sizes, the ancestor of an item at a
given level, the interval covered by a node, and conversion between a leaf
histogram and per-level node histograms.

Level numbering convention
--------------------------
``level 0`` is the root (one node covering the whole padded domain) and
``level h`` is the leaf level (one node per item).  The paper's "height"
``i`` of a node (leaves at height 1) relates to our level by
``i = h - level + 1``; the consistency code documents where it uses heights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.exceptions import InvalidDomainError
from repro.core.types import next_power_of
from repro.hierarchy.badic import BAdicInterval, badic_decomposition


@dataclass(frozen=True)
class TreeNode:
    """Identifier of a node: its level (0 = root) and index within the level."""

    level: int
    index: int


class DomainTree:
    """Structural view of the complete B-ary tree over a (padded) domain.

    Parameters
    ----------
    domain_size:
        The true domain size ``D``; it is padded up to the next power of
        ``branching`` so the tree is complete.
    branching:
        The fan-out ``B >= 2``.
    """

    def __init__(self, domain_size: int, branching: int) -> None:
        if branching < 2:
            raise ValueError(f"branching factor must be >= 2, got {branching}")
        if domain_size < 1:
            raise InvalidDomainError(f"domain size must be positive, got {domain_size}")
        self._domain_size = int(domain_size)
        self._branching = int(branching)
        self._padded_size = next_power_of(self._branching, self._domain_size)
        height = 0
        size = 1
        while size < self._padded_size:
            size *= self._branching
            height += 1
        self._height = height

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #
    @property
    def domain_size(self) -> int:
        """The caller-visible domain size ``D``."""
        return self._domain_size

    @property
    def padded_size(self) -> int:
        """The padded domain size ``B^h``."""
        return self._padded_size

    @property
    def branching(self) -> int:
        """The fan-out ``B``."""
        return self._branching

    @property
    def height(self) -> int:
        """The tree height ``h`` (number of non-root levels)."""
        return self._height

    @property
    def num_levels(self) -> int:
        """Total number of levels including the root (``h + 1``)."""
        return self._height + 1

    def level_size(self, level: int) -> int:
        """Number of nodes at ``level`` (``B^level``)."""
        self._check_level(level)
        return self._branching ** level

    def node_span(self, level: int) -> int:
        """Number of leaves covered by a single node at ``level``."""
        self._check_level(level)
        return self._branching ** (self._height - level)

    def _check_level(self, level: int) -> None:
        if level < 0 or level > self._height:
            raise ValueError(
                f"level must be in [0, {self._height}], got {level}"
            )

    # ------------------------------------------------------------------ #
    # item <-> node mappings
    # ------------------------------------------------------------------ #
    def ancestor_index(self, items: np.ndarray, level: int) -> np.ndarray:
        """Index of the ancestor node at ``level`` for each item."""
        self._check_level(level)
        items = np.asarray(items, dtype=np.int64)
        return items // self.node_span(level)

    def node_interval(self, node: TreeNode) -> BAdicInterval:
        """The B-adic interval of leaves covered by ``node``."""
        span = self.node_span(node.level)
        start = node.index * span
        return BAdicInterval(
            start=start, length=span, level_from_leaves=self._height - node.level
        )

    def node_for_block(self, block: BAdicInterval) -> TreeNode:
        """The tree node corresponding to a B-adic block."""
        level = self._height - block.level_from_leaves
        self._check_level(level)
        span = self.node_span(level)
        if block.length != span or block.start % span != 0:
            raise ValueError(f"block {block} is not a node of this tree")
        return TreeNode(level=level, index=block.start // span)

    def decompose_range(self, left: int, right: int) -> List[TreeNode]:
        """Tree nodes forming the canonical B-adic decomposition of ``[left, right]``."""
        blocks = badic_decomposition(left, right, self._branching)
        return [self.node_for_block(block) for block in blocks]

    # ------------------------------------------------------------------ #
    # histograms
    # ------------------------------------------------------------------ #
    def level_histogram(self, leaf_counts: np.ndarray, level: int) -> np.ndarray:
        """Aggregate a leaf-level histogram up to the node counts at ``level``."""
        self._check_level(level)
        counts = np.asarray(leaf_counts, dtype=np.float64)
        if len(counts) == self._domain_size:
            padded = np.zeros(self._padded_size)
            padded[: self._domain_size] = counts
            counts = padded
        elif len(counts) != self._padded_size:
            raise ValueError(
                f"leaf_counts must have length {self._domain_size} or "
                f"{self._padded_size}, got {len(counts)}"
            )
        return counts.reshape(self.level_size(level), self.node_span(level)).sum(axis=1)

    def all_level_histograms(self, leaf_counts: np.ndarray) -> List[np.ndarray]:
        """Node counts for every level, root first."""
        return [self.level_histogram(leaf_counts, level) for level in range(self.num_levels)]

    def empty_levels(self) -> List[np.ndarray]:
        """A list of zero arrays shaped like the per-level node values."""
        return [np.zeros(self.level_size(level)) for level in range(self.num_levels)]
