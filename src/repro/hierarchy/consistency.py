"""Constrained inference (consistency post-processing) for noisy trees.

Section 4.5 of the paper adapts the two-stage least-squares procedure of
Hay et al. (VLDB 2010) to the local model.  Given the unbiased but noisy
per-node fraction estimates produced by the hierarchical-histogram
aggregator, the procedure finds the minimum-L2 adjustment that makes every
parent equal the sum of its children:

* **Stage 1 (weighted averaging, bottom-up).**  Each non-leaf node's value is
  replaced by a weighted combination of its own estimate and the sum of its
  children's adjusted estimates,
  ``f_bar(v) = (B^i - B^{i-1})/(B^i - 1) * f(v)
  + (B^{i-1} - 1)/(B^i - 1) * sum_children f_bar(u)``,
  where ``i`` is the node's height (leaves have height 1).
* **Stage 2 (mean consistency, top-down).**  The residual between a parent
  and the sum of its children is split equally among the children,
  ``f_hat(v) = f_bar(v) + (1/B) * (f_hat(parent) - sum_siblings f_bar)``.

Because the protocol works with *fractions* (level sampling means per-level
counts need not agree), the root's value is known exactly: the fractions of
the whole population sum to one.  We therefore pin the root to 1 before the
top-down stage, which is itself a valid post-processing step and further
reduces the children's error.

The result is the best linear unbiased estimator subject to the tree
constraints (Gauss-Markov, Lemma 4.6), reducing the per-node variance by a
factor of at least ``B / (B + 1)``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def _validate_levels(level_values: Sequence[np.ndarray], branching: int) -> List[np.ndarray]:
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    levels = [np.array(values, dtype=np.float64, copy=True) for values in level_values]
    if not levels:
        raise ValueError("level_values must contain at least the root level")
    for depth, values in enumerate(levels):
        expected = branching ** depth
        if len(values) != expected:
            raise ValueError(
                f"level {depth} must have {expected} nodes, got {len(values)}"
            )
    return levels


def weighted_averaging(
    level_values: Sequence[np.ndarray], branching: int
) -> List[np.ndarray]:
    """Stage 1: bottom-up weighted averaging of node estimates.

    ``level_values[0]`` is the root, ``level_values[-1]`` the leaves.
    Returns a new list; the input is not modified.
    """
    levels = _validate_levels(level_values, branching)
    height = len(levels) - 1
    b = float(branching)
    # Walk from the last internal level up to the root.  A node at level
    # ``depth`` has paper-height i = height - depth + 1 (leaves have i = 1).
    for depth in range(height - 1, -1, -1):
        i = height - depth + 1
        child_sums = levels[depth + 1].reshape(-1, branching).sum(axis=1)
        numerator_self = b**i - b ** (i - 1)
        numerator_children = b ** (i - 1) - 1.0
        denominator = b**i - 1.0
        # In-place update (the levels are private copies): one temporary
        # instead of three per level.
        values = levels[depth]
        values *= numerator_self
        child_sums *= numerator_children
        values += child_sums
        values /= denominator
    return levels


def mean_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: float = None,
) -> List[np.ndarray]:
    """Stage 2: top-down redistribution of parent/children residuals.

    If ``root_value`` is given the root is pinned to that value first (the
    hierarchical-histogram protocol passes ``1.0`` because fractions over
    the whole population must sum to one).
    """
    levels = _validate_levels(level_values, branching)
    if root_value is not None:
        levels[0] = np.array([float(root_value)])
    height = len(levels) - 1
    for depth in range(1, height + 1):
        child_sums = levels[depth].reshape(-1, branching).sum(axis=1)
        residual = (levels[depth - 1] - child_sums) / branching
        # Broadcast the per-parent residual onto the children in place.
        levels[depth].reshape(-1, branching)[...] += residual[:, None]
    return levels


def enforce_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: float = 1.0,
) -> List[np.ndarray]:
    """Full two-stage constrained inference (Stage 1 then Stage 2).

    Parameters
    ----------
    level_values:
        Per-level node estimates, root first.
    branching:
        Tree fan-out ``B``.
    root_value:
        Known exact value of the root, or ``None`` to keep the averaged
        root.  The LDP protocol uses ``1.0``.

    Returns
    -------
    list of numpy.ndarray
        Adjusted estimates with every parent equal to the sum of its
        children (up to floating point error).
    """
    averaged = weighted_averaging(level_values, branching)
    return mean_consistency(averaged, branching, root_value=root_value)


def consistency_violation(level_values: Sequence[np.ndarray], branching: int) -> float:
    """Maximum absolute violation of the parent = sum(children) constraint.

    Useful in tests and as a sanity check after post-processing (should be
    at floating-point noise level).
    """
    levels = _validate_levels(level_values, branching)
    worst = 0.0
    for depth in range(len(levels) - 1):
        child_sums = levels[depth + 1].reshape(-1, branching).sum(axis=1)
        worst = max(worst, float(np.max(np.abs(levels[depth] - child_sums))))
    return worst


def variance_reduction_factor(branching: int) -> float:
    """Lemma 4.6 lower bound on the variance reduction: ``B / (B + 1)``."""
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    return branching / (branching + 1.0)
