"""Constrained inference (consistency post-processing) for noisy trees.

Section 4.5 of the paper adapts the two-stage least-squares procedure of
Hay et al. (VLDB 2010) to the local model.  Given the unbiased but noisy
per-node fraction estimates produced by the hierarchical-histogram
aggregator, the procedure finds the minimum-L2 adjustment that makes every
parent equal the sum of its children:

* **Stage 1 (weighted averaging, bottom-up).**  Each non-leaf node's value is
  replaced by a weighted combination of its own estimate and the sum of its
  children's adjusted estimates,
  ``f_bar(v) = (B^i - B^{i-1})/(B^i - 1) * f(v)
  + (B^{i-1} - 1)/(B^i - 1) * sum_children f_bar(u)``,
  where ``i`` is the node's height (leaves have height 1).
* **Stage 2 (mean consistency, top-down).**  The residual between a parent
  and the sum of its children is split equally among the children,
  ``f_hat(v) = f_bar(v) + (1/B) * (f_hat(parent) - sum_siblings f_bar)``.

Because the protocol works with *fractions* (level sampling means per-level
counts need not agree), the root's value is known exactly: the fractions of
the whole population sum to one.  We therefore pin the root to 1 before the
top-down stage, which is itself a valid post-processing step and further
reduces the children's error.

The result is the best linear unbiased estimator subject to the tree
constraints (Gauss-Markov, Lemma 4.6), reducing the per-node variance by a
factor of at least ``B / (B + 1)``.

.. deprecated::
    The math now lives in :mod:`repro.core.postprocess` as the
    ``TreeWeightedAveraging`` / ``TreeMeanConsistency`` processors of the
    unified post-processing pipeline (registry token ``"consistency"``).
    :func:`weighted_averaging` and :func:`mean_consistency` remain as thin
    aliases; :func:`enforce_consistency` additionally emits a
    ``DeprecationWarning`` pointing at the pipeline API.  Behavior is
    bit-identical.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

import numpy as np

from repro.core.postprocess import (
    _validate_tree_levels,
    tree_enforce_consistency,
    tree_mean_consistency,
    tree_weighted_averaging,
)


def weighted_averaging(
    level_values: Sequence[np.ndarray], branching: int
) -> List[np.ndarray]:
    """Stage 1: bottom-up weighted averaging of node estimates.

    Alias of :func:`repro.core.postprocess.tree_weighted_averaging` (the
    canonical home of the math since the pipeline unification).
    """
    return tree_weighted_averaging(level_values, branching)


def mean_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: Optional[float] = None,
) -> List[np.ndarray]:
    """Stage 2: top-down redistribution of parent/children residuals.

    Alias of :func:`repro.core.postprocess.tree_mean_consistency` (the
    canonical home of the math since the pipeline unification).
    """
    return tree_mean_consistency(level_values, branching, root_value=root_value)


def enforce_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: Optional[float] = 1.0,
) -> List[np.ndarray]:
    """Deprecated alias of the ``"consistency"`` post-processing pipeline.

    Use ``postprocess="consistency"`` on the protocol (or
    :func:`repro.core.postprocess.tree_enforce_consistency` for the bare
    math).  Behavior is unchanged: Stage 1 then Stage 2 with the root
    pinned to ``root_value``.
    """
    warnings.warn(
        "repro.hierarchy.consistency.enforce_consistency is deprecated; use "
        "the unified post-processing pipeline (protocol postprocess="
        "'consistency', or repro.core.postprocess.tree_enforce_consistency "
        "for the bare math) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return tree_enforce_consistency(level_values, branching, root_value=root_value)


def consistency_violation(level_values: Sequence[np.ndarray], branching: int) -> float:
    """Maximum absolute violation of the parent = sum(children) constraint.

    Useful in tests and as a sanity check after post-processing (should be
    at floating-point noise level).
    """
    levels = _validate_tree_levels(level_values, branching)
    worst = 0.0
    for depth in range(len(levels) - 1):
        child_sums = levels[depth + 1].reshape(-1, branching).sum(axis=1)
        worst = max(worst, float(np.max(np.abs(levels[depth] - child_sums))))
    return worst


def variance_reduction_factor(branching: int) -> float:
    """Lemma 4.6 lower bound on the variance reduction: ``B / (B + 1)``."""
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    return branching / (branching + 1.0)
