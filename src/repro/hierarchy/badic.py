"""B-adic intervals and the canonical decomposition of ranges (Facts 2-3).

A *B-adic* interval has length ``B^j`` and starts at an integer multiple of
its length.  Any range ``[a, b]`` of length ``r`` decomposes into at most
``(B - 1)(2 log_B r + 1)`` disjoint B-adic intervals (Fact 3), and every
B-adic interval corresponds to exactly one node of the complete B-ary tree
imposed over the domain.  This module provides the greedy canonical
decomposition used by the hierarchical-histogram estimator to answer range
queries from tree-node estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.exceptions import InvalidRangeError
from repro.core.types import is_power_of


@dataclass(frozen=True)
class BAdicInterval:
    """A single B-adic interval ``[start, start + length - 1]``.

    ``level_from_leaves`` is the exponent ``j`` such that the length equals
    ``B^j``; ``0`` denotes a single leaf.
    """

    start: int
    length: int
    level_from_leaves: int

    @property
    def end(self) -> int:
        """Inclusive right endpoint."""
        return self.start + self.length - 1


def is_badic(start: int, length: int, branching: int) -> bool:
    """Return ``True`` iff ``[start, start + length - 1]`` is B-adic."""
    if length < 1 or start < 0:
        return False
    if not is_power_of(branching, length):
        return False
    return start % length == 0


def _largest_badic_length(position: int, limit: int, branching: int) -> int:
    """Largest B-adic block length that may start at ``position``.

    The block must start at a multiple of its own length and must not extend
    beyond ``limit`` items.
    """
    length = 1
    while True:
        candidate = length * branching
        if candidate > limit:
            break
        if position % candidate != 0:
            break
        length = candidate
    return length


def badic_decomposition(left: int, right: int, branching: int) -> List[BAdicInterval]:
    """Greedy canonical decomposition of ``[left, right]`` into B-adic blocks.

    The decomposition is the standard one used for dyadic/segment-tree range
    queries, generalised to branching factor ``B``: walk from the left end,
    at each position take the largest B-adic block that starts there and
    fits inside the remaining range.

    Returns the blocks in left-to-right order.  Raises
    :class:`InvalidRangeError` on malformed input.
    """
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    if left < 0 or right < left:
        raise InvalidRangeError(f"invalid range [{left}, {right}]")
    blocks: List[BAdicInterval] = []
    position = left
    while position <= right:
        remaining = right - position + 1
        length = _largest_badic_length(position, remaining, branching)
        level = 0
        size = 1
        while size < length:
            size *= branching
            level += 1
        blocks.append(BAdicInterval(start=position, length=length, level_from_leaves=level))
        position += length
    return blocks


def decomposition_size_bound(range_length: int, branching: int) -> int:
    """Fact 3 upper bound on the number of blocks for a range of this length."""
    if range_length < 1:
        raise ValueError(f"range_length must be >= 1, got {range_length}")
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    import math

    log_term = math.log(range_length, branching) if range_length > 1 else 0.0
    return int((branching - 1) * (2 * math.ceil(log_term) + 1) + branching)


def worst_case_nodes_per_level(branching: int) -> int:
    """Maximum number of tree nodes a range can touch at any single level.

    A range's fringe intersects at most ``2 (B - 1)`` nodes per level
    (``B - 1`` on each side), which is the constant that appears in
    Theorem 4.3.
    """
    return 2 * (branching - 1)
