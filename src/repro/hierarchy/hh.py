"""Hierarchical Histograms under LDP (Sections 4.3-4.5 of the paper).

The protocol imposes a complete B-ary tree over the domain.  Each user
samples a *single* level of the tree (uniformly by default -- Lemma 4.4
shows uniform sampling minimises the variance bound), forms the one-hot
vector of her ancestor node at that level, and reports it through a
frequency oracle (OUE, HRR or OLH; the paper calls the resulting protocols
TreeOUE, TreeHRR and TreeOLH).  The aggregator estimates the fraction of
the population under every node, optionally applies the constrained
inference of Section 4.5 (suffix "CI" in the paper), and answers a range
query by summing the nodes of its canonical B-adic decomposition.

The key departure from the centralized literature -- sampling a level
instead of splitting the privacy budget across levels -- is available as an
explicit ``level_strategy`` switch so the ablation benchmark can quantify
the difference the paper motivates analytically (error proportional to
``h`` for sampling versus ``h^2`` for splitting).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.decomposition import (
    BAdicTreeDecomposition,
    DecomposedRangeQueryProtocol,
)
from repro.core.exceptions import ProtocolUsageError
from repro.core.postprocess import (
    TREE,
    PipelineLike,
    resolve_postprocess,
    tree_enforce_consistency,
)
from repro.core.protocol import RangeQueryEstimator, RangeLike, _as_range
from repro.core.session import (
    AccumulatorState,
    DecompositionClient,
    DecompositionServer,
)
from repro.core.types import Domain
from repro.frequency_oracles import make_oracle
from repro.frequency_oracles.base import standard_oracle_variance
from repro.hierarchy.tree import DomainTree

#: Level-allocation strategies.  ``"sample"`` is the paper's protocol;
#: ``"split"`` is the centralized-style budget-splitting ablation.
LEVEL_STRATEGIES = ("sample", "split")


class HierarchicalEstimator(RangeQueryEstimator):
    """Aggregated per-node fraction estimates for a B-ary domain tree.

    Parameters
    ----------
    tree:
        The structural :class:`~repro.hierarchy.tree.DomainTree`.
    level_fractions:
        Estimated fraction of the population under each node, one array per
        level with the root first.  The root entry is the constant 1.
    consistent:
        Whether the values have been through constrained inference.
    level_user_counts:
        Number of users that reported at each level (diagnostics only).
    """

    def __init__(
        self,
        tree: DomainTree,
        level_fractions: Sequence[np.ndarray],
        consistent: bool,
        level_user_counts: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(Domain(tree.domain_size))
        self._tree = tree
        self._levels = [np.asarray(values, dtype=np.float64) for values in level_fractions]
        if len(self._levels) != tree.num_levels:
            raise ProtocolUsageError(
                f"expected {tree.num_levels} levels of estimates, got {len(self._levels)}"
            )
        self._consistent = bool(consistent)
        self._level_user_counts = (
            None if level_user_counts is None else np.asarray(level_user_counts)
        )
        self._level_prefix_cache: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DomainTree:
        """The underlying tree structure."""
        return self._tree

    @property
    def branching(self) -> int:
        """Tree fan-out ``B``."""
        return self._tree.branching

    @property
    def is_consistent(self) -> bool:
        """Whether constrained inference has been applied."""
        return self._consistent

    @property
    def level_fractions(self) -> List[np.ndarray]:
        """Per-level node estimates (copies; root first)."""
        return [values.copy() for values in self._levels]

    @property
    def level_user_counts(self) -> Optional[np.ndarray]:
        """Number of users assigned to each level, if known."""
        return None if self._level_user_counts is None else self._level_user_counts.copy()

    def node_value(self, level: int, index: int) -> float:
        """Estimated fraction of the population under one node."""
        return float(self._levels[level][index])

    # ------------------------------------------------------------------ #
    # post-processing
    # ------------------------------------------------------------------ #
    def with_consistency(self) -> "HierarchicalEstimator":
        """Return a new estimator with constrained inference applied.

        Idempotent: a consistent estimator returns itself unchanged, so
        chained calls never re-run (or drift) the inference.  The returned
        estimator starts with every query cache (prefix sums, per-level
        prefix sums, monotone CDF) explicitly invalidated, so batch range
        queries after post-processing can never read stale caches.
        """
        if self._consistent:
            return self
        adjusted = tree_enforce_consistency(
            self._levels, self.branching, root_value=1.0
        )
        estimator = HierarchicalEstimator(
            self._tree,
            adjusted,
            consistent=True,
            level_user_counts=self._level_user_counts,
        )
        estimator.invalidate_cache()
        return estimator

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def estimated_frequencies(self) -> np.ndarray:
        """Leaf-level estimates truncated to the true domain size."""
        return self._levels[-1][: self.domain_size].copy()

    def _level_prefix_sums(self) -> List[np.ndarray]:
        """Cached per-level prefix sums of the node estimates (root first).

        Computed once per estimator; together with the vectorised canonical
        decomposition they let a whole workload be answered with ``O(h)``
        gathers (two contiguous node runs per level per query).
        """
        if self._level_prefix_cache is None:
            self._level_prefix_cache = [
                np.concatenate(([0.0], np.cumsum(values))) for values in self._levels
            ]
        return self._level_prefix_cache

    def invalidate_cache(self) -> None:
        super().invalidate_cache()
        self._level_prefix_cache = None

    def range_query(self, query: RangeLike) -> float:
        """Answer ``[a, b]`` by summing its canonical B-adic decomposition.

        After constrained inference any way of combining nodes gives the
        same answer; before it, the canonical decomposition is the
        minimum-node (and minimum-variance) evaluation.  Thin wrapper over
        :meth:`range_queries_batch` on a one-element workload.
        """
        spec = _as_range(query).validate_for_domain(self.domain_size)
        return float(
            self.range_queries_batch(
                np.asarray([spec.left], np.int64), np.asarray([spec.right], np.int64)
            )[0]
        )

    def range_queries_batch(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        """Vectorised evaluation of many range queries.

        Consistent estimators use the prefix-sum fast path (identical
        answers by the consistency property); inconsistent ones answer the
        whole workload through the closed-form vectorised canonical
        decomposition: at most two contiguous node runs per level per
        query, each summed with one gather into the cached per-level
        prefix sums -- the same node set as
        :meth:`~repro.hierarchy.tree.DomainTree.decompose_range`, summed in
        level order (answers agree up to float-sum reordering, ~1e-15).
        """
        if self._consistent:
            return super().range_queries_batch(lefts, rights)
        lefts, rights = self._validate_query_arrays(lefts, rights)
        if not lefts.size:
            return np.zeros(0)
        answers = np.zeros(lefts.size)
        prefix_by_level = self._level_prefix_sums()
        runs = self._tree.decompose_ranges_batch(lefts, rights)
        for prefix, (left_lo, left_hi, right_lo, right_hi) in zip(prefix_by_level, runs):
            # Empty runs are encoded (0, -1), so each gather contributes
            # exactly 0.0 for queries that select nothing at this level.
            answers += prefix[left_hi + 1] - prefix[left_lo]
            answers += prefix[right_hi + 1] - prefix[right_lo]
        return answers


class HierarchicalClient(DecompositionClient):
    """User-side encoder of HH_B: sample a level, report the ancestor node.

    Under the paper's ``"sample"`` strategy each user reports through the
    oracle of a single tree level; under the ``"split"`` ablation every
    user reports at every level with budget ``epsilon / h``.  Thin
    instantiation of the generic engine on a
    :class:`~repro.core.decomposition.BAdicTreeDecomposition`.
    """


class HierarchicalServer(DecompositionServer):
    """Aggregator of HH_B: one oracle accumulator per tree level.

    The per-level user counts are part of the sufficient statistics (each
    level's oracle debiases against the users that actually reported
    there), so sharded servers can merge exactly even though the level
    sampling is random.  The same property makes epoch windows exact:
    ``finalize`` on a lazily merged window of epoch shards
    (``protocol.estimator_from_state``, used by
    :meth:`repro.engine.Engine.estimator`) debiases each level against
    the window's own per-level counts.
    """


class HierarchicalHistogram(DecomposedRangeQueryProtocol):
    """The HH_B range-query protocol (TreeOUE / TreeHRR / TreeOLH [+CI]).

    Parameters
    ----------
    domain_size:
        Domain size ``D``.
    epsilon:
        Privacy budget.
    branching:
        Tree fan-out ``B`` (paper's analysis favours 4-9; default 4).
    oracle:
        Frequency-oracle handle used at every level (``"oue"``, ``"hrr"``,
        ``"olh"`` or ``"grr"``).
    consistency:
        Apply the Section 4.5 constrained inference (the "CI" variants).
    level_strategy:
        ``"sample"`` (each user reports one level -- the paper's protocol)
        or ``"split"`` (every user reports every level with budget
        ``epsilon / h`` -- the centralized-style ablation).
    level_probabilities:
        Optional non-uniform level sampling distribution over the ``h``
        non-root levels.  Defaults to uniform, the optimum from Lemma 4.4.
    aggregation_chunk:
        Optional chunk size for the OLH decoding loop (an execution knob
        only; it never changes results and is not part of the protocol
        spec).  Only valid with ``oracle="olh"``.
    postprocess:
        Explicit post-processing pipeline applied to the per-level
        estimates at assembly time -- a registry string (``"none"``,
        ``"consistency"``, ``"consistency+norm_sub"``, ``"least_squares"``,
        ...) or a :class:`~repro.core.postprocess.PostPipeline`.  When
        given it overrides the ``consistency`` boolean; the default
        (``None``) maps ``consistency=True`` to the equivalent
        ``"consistency"`` pipeline, bit-identical to the legacy behavior.
    """

    def __init__(
        self,
        domain_size: int,
        epsilon: float,
        branching: int = 4,
        oracle: str = "oue",
        consistency: bool = True,
        level_strategy: str = "sample",
        level_probabilities: Optional[Sequence[float]] = None,
        aggregation_chunk: Optional[int] = None,
        postprocess: PipelineLike = None,
    ) -> None:
        super().__init__(domain_size, epsilon)
        if level_strategy not in LEVEL_STRATEGIES:
            raise ValueError(
                f"level_strategy must be one of {LEVEL_STRATEGIES}, got {level_strategy!r}"
            )
        self._tree = DomainTree(self.domain_size, branching)
        self._oracle_name = oracle.strip().lower()
        if aggregation_chunk is not None and self._oracle_name != "olh":
            raise ValueError(
                "aggregation_chunk is only supported by the 'olh' oracle"
            )
        self._aggregation_chunk = aggregation_chunk
        # Validate eagerly so bad pipeline strings fail at construction.
        # An explicit pipeline overrides the consistency boolean; the
        # reported flag (and the "CI" name suffix, and the variance bound)
        # then follow what the pipeline actually establishes, so callers
        # never see consistency=True on an estimator that is not.
        if postprocess is not None:
            pipeline = resolve_postprocess(postprocess, TREE)
            self._postprocess_arg = pipeline.spec
            self._consistency = pipeline.tree_consistent()
        else:
            self._postprocess_arg = None
            self._consistency = bool(consistency)
        self._level_strategy = level_strategy
        # Keep the caller's raw argument so spec() can rebuild an identical
        # protocol (re-normalizing resolved values would drift by ulps).
        self._level_probabilities_arg = (
            None
            if level_probabilities is None
            else [float(value) for value in level_probabilities]
        )
        self._level_probabilities = self._resolve_level_probabilities(level_probabilities)
        # e.g. TreeOUECI, TreeHRR -- matches the paper's naming.
        suffix = "CI" if self._consistency else ""
        self.name = f"Tree{self._oracle_name.upper()}{suffix}"

    def _resolve_level_probabilities(
        self, probabilities: Optional[Sequence[float]]
    ) -> np.ndarray:
        height = self._tree.height
        if height == 0:
            raise ValueError("domain of size 1 does not need a hierarchical method")
        if probabilities is None:
            return np.full(height, 1.0 / height)
        probs = np.asarray(probabilities, dtype=np.float64)
        if len(probs) != height or np.any(probs < 0):
            raise ValueError(
                f"level_probabilities must be {height} non-negative values"
            )
        total = probs.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            if total <= 0:
                raise ValueError("level_probabilities must sum to a positive value")
            probs = probs / total
        return probs

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DomainTree:
        """The structural domain tree."""
        return self._tree

    @property
    def branching(self) -> int:
        """Tree fan-out ``B``."""
        return self._tree.branching

    @property
    def oracle_name(self) -> str:
        """Handle of the per-level frequency oracle."""
        return self._oracle_name

    @property
    def consistency(self) -> bool:
        """Whether the assembled estimator is tree-consistent.

        With an explicit ``postprocess`` pipeline this is derived from the
        pipeline (e.g. ``"consistency"`` -> True, ``"none"`` or
        ``"consistency+norm_sub"`` -> False) rather than the constructor
        boolean, so it always describes the estimator actually produced.
        """
        return self._consistency

    @property
    def postprocess(self) -> Optional[str]:
        """Explicit pipeline spelling, or ``None`` (= the consistency flag)."""
        return self._postprocess_arg

    @property
    def level_strategy(self) -> str:
        """``"sample"`` or ``"split"``."""
        return self._level_strategy

    @property
    def level_probabilities(self) -> np.ndarray:
        """Sampling distribution over the non-root levels (root excluded)."""
        return self._level_probabilities.copy()

    def _level_epsilon(self) -> float:
        if self._level_strategy == "split":
            return self.epsilon / self._tree.height
        return self.epsilon

    def _make_level_oracle(self, level: int):
        kwargs = {}
        if self._aggregation_chunk is not None:
            kwargs["aggregation_chunk"] = self._aggregation_chunk
        return make_oracle(
            self._oracle_name, self._tree.level_size(level), self._level_epsilon(), **kwargs
        )

    # ------------------------------------------------------------------ #
    # client / server roles
    # ------------------------------------------------------------------ #
    def _build_decomposition(self) -> BAdicTreeDecomposition:
        return BAdicTreeDecomposition(
            self._tree,
            self._make_level_oracle,
            self._level_probabilities,
            level_strategy=self._level_strategy,
            consistency=self._consistency,
            postprocess=self._postprocess_arg,
        )

    def client(self) -> HierarchicalClient:
        return HierarchicalClient(self)

    def server(self, state: Optional[AccumulatorState] = None) -> HierarchicalServer:
        return HierarchicalServer(self, state)

    def spec(self) -> dict:
        spec = {
            "name": "hh",
            "domain_size": self.domain_size,
            "epsilon": self.epsilon,
            "branching": self.branching,
            "oracle": self._oracle_name,
            "consistency": self._consistency,
            "level_strategy": self._level_strategy,
            "level_probabilities": self._level_probabilities_arg,
        }
        if self._postprocess_arg is not None:
            # Written only when set, so pre-pipeline specs (and the states
            # that embed them) stay byte-identical.
            spec["postprocess"] = self._postprocess_arg
        return spec

    # ------------------------------------------------------------------ #
    # theory
    # ------------------------------------------------------------------ #
    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Variance bound for a worst-case query of length ``range_length``.

        Uses Theorem 4.3 / Eq. (1) for the sampled, unconstrained protocol
        and the tightened ``(B + 1) / 2`` per-level constant of Section 4.5
        when consistency is enabled.  The budget-splitting ablation pays the
        ``h^2`` factor the paper warns about (each level's oracle runs at
        ``epsilon / h``).
        """
        if range_length < 1 or range_length > self._tree.padded_size:
            raise ValueError(
                f"range_length must be in [1, {self._tree.padded_size}], got {range_length}"
            )
        if n_users <= 0:
            raise ValueError(f"n_users must be positive, got {n_users}")
        b = self.branching
        height = self._tree.height
        levels_touched = math.ceil(math.log(range_length, b)) + 1 if range_length > 1 else 1
        levels_touched = min(levels_touched, height)
        psi = standard_oracle_variance(self._level_epsilon())
        if self._level_strategy == "sample":
            # Uniform sampling: each level sees N / h users in expectation.
            per_level_variance = psi * height / n_users
        else:
            per_level_variance = psi / n_users
        per_level_constant = (b + 1) / 2.0 if self._consistency else (2.0 * b - 1.0)
        return per_level_constant * per_level_variance * levels_touched
