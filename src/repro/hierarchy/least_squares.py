"""Explicit least-squares constrained inference (Lemma 4.6's formulation).

The proof of Lemma 4.6 works directly with the linear-algebraic form of the
problem: let ``H`` be the ``n x D`` matrix whose rows are the indicator
vectors of the leaves under each tree node and ``x`` the vector of noisy
node observations; then the optimal consistent estimate of the leaf
frequencies is ``(H^T H)^{-1} H^T x`` and any range query's variance can be
read off ``V_F * R^T (H^T H)^{-1} R``.

The two-stage algorithm in :mod:`repro.hierarchy.consistency` computes the
same solution in linear time; this module provides the explicit version for

* small domains, where materialising ``H`` is cheap and the closed form is
  convenient;
* tests, which use it as an independent oracle for the two-stage code; and
* the variance diagnostics (:func:`range_query_variance_factor`) used to
  verify the ``B/(B+1)`` and ``(B+1)/4`` constants of Lemma 4.6.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hierarchy.tree import DomainTree


def design_matrix(tree: DomainTree) -> np.ndarray:
    """The node-by-leaf indicator matrix ``H`` of a domain tree (root first)."""
    rows: List[np.ndarray] = []
    leaves = tree.padded_size
    for level in range(tree.num_levels):
        span = tree.node_span(level)
        for index in range(tree.level_size(level)):
            row = np.zeros(leaves)
            row[index * span : (index + 1) * span] = 1.0
            rows.append(row)
    return np.array(rows)


def flatten_levels(level_values: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-level node values in the same order as :func:`design_matrix`."""
    return np.concatenate([np.asarray(values, dtype=np.float64) for values in level_values])


def least_squares_leaves(
    tree: DomainTree, level_values: Sequence[np.ndarray]
) -> np.ndarray:
    """Optimal consistent leaf estimates ``(H^T H)^{-1} H^T x``.

    All observations are weighted equally, which is the correct weighting for
    the paper's protocols because every node estimate has the same variance
    ``V_F / p_l`` within a level and uniform level sampling equalises the
    levels too.
    """
    matrix = design_matrix(tree)
    observations = flatten_levels(level_values)
    if len(observations) != matrix.shape[0]:
        raise ValueError(
            f"expected {matrix.shape[0]} node observations, got {len(observations)}"
        )
    solution, *_ = np.linalg.lstsq(matrix, observations, rcond=None)
    return solution


def least_squares_levels(
    tree: DomainTree, level_values: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Consistent per-level values implied by the least-squares leaves."""
    leaves = least_squares_leaves(tree, level_values)
    return [tree.level_histogram(leaves, level) for level in range(tree.num_levels)]


def range_query_variance_factor(tree: DomainTree, left: int, right: int) -> float:
    """``R^T (H^T H)^{-1} R`` for the indicator ``R`` of ``[left, right]``.

    Multiplying by the per-node variance ``V_F`` gives the post-inference
    variance of the range query (the quantity bounded in Lemma 4.6).  Only
    practical for small trees since it inverts an ``n x n``-sized system.
    """
    if left < 0 or right < left or right >= tree.padded_size:
        raise ValueError(f"invalid range [{left}, {right}] for padded domain {tree.padded_size}")
    matrix = design_matrix(tree)
    gram = matrix.T @ matrix
    indicator = np.zeros(tree.padded_size)
    indicator[left : right + 1] = 1.0
    solved = np.linalg.solve(gram, indicator)
    return float(indicator @ solved)
