"""The unified decomposition core shared by every range-query protocol.

Cormode, Kulkarni and Srivastava frame the flat, hierarchical and
Haar-wavelet protocols as the *same* pipeline: decompose the domain into
levels of coefficients, split the users across the levels, run a frequency
oracle per level, and reassemble the per-level estimates into one
estimator.  This module makes that pipeline a first-class object instead of
four copy-pasted implementations:

* :class:`Decomposition` owns the level structure of one protocol family --
  the level keys, the item -> coefficient mapping per level, the per-level
  oracle factory, and the estimate-assembly (including any consistency
  post-processing).  Concrete decompositions:

  - :class:`IdentityDecomposition` -- the flat baseline: one level holding
    the whole domain (Section 4.2);
  - :class:`BAdicTreeDecomposition` -- the B-ary domain tree of the
    hierarchical histograms (Sections 4.3-4.5), with the paper's
    level-sampling or the budget-splitting ablation;
  - :class:`HaarDecomposition` -- the Haar detail heights of the wavelet
    protocol (Section 4.6), with signed coefficient contributions;
  - :class:`Grid2DDecomposition` -- the per-axis-level pairs of the 2-D
    grid extension (Section 6).

* :class:`DecomposedRangeQueryProtocol` is the protocol base class that
  turns a decomposition into the runtime roles: ``client()`` / ``server()``
  return the generic :class:`~repro.core.session.DecompositionClient` /
  :class:`~repro.core.session.DecompositionServer`, and
  :meth:`DecomposedRangeQueryProtocol.simulate_aggregate` is the one
  aggregate simulation driver shared by every family (``run_simulated``
  remains as a deprecated alias).

Adding a new protocol is therefore a ~50-line :class:`Decomposition`
subclass: streaming clients and servers, mergeable shards, wire
serialization and the CLI ``encode`` / ``aggregate`` / ``merge`` workflow
all come for free.  See ``ARCHITECTURE.md`` for the layer-by-layer tour.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.kernels import multinomial_level_split
from repro.core.postprocess import (
    FREQUENCIES,
    GRID,
    HAAR,
    TREE,
    PipelineLike,
    PostContext,
    resolve_postprocess,
)
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol
from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain


# ``multinomial_level_split`` is imported above for use and for back-compat
# re-export: the split is an RNG-bound shared kernel and now lives in
# repro.core.kernels (every backend uses the same numpy draws).


class Decomposition(abc.ABC):
    """Level structure of one protocol family.

    A decomposition describes *what* each level of a protocol estimates and
    *how* a user's private item contributes to it; the generic
    :class:`~repro.core.session.DecompositionClient` /
    :class:`~repro.core.session.DecompositionServer` handle everything else
    (user -> level assignment, payload transport, accumulator composition,
    merge, serialization) identically for every family.

    The contract:

    * :attr:`levels` enumerates the level keys in reporting order; they are
      also the payload keys of the wire-format
      :class:`~repro.core.session.LevelReport` and the order of the child
      accumulators inside the server's composite state.
    * ``level_user_counts`` bookkeeping is an ``int64`` array of
      :attr:`counts_size` entries; :meth:`counts_slot` maps a level key to
      its entry and :meth:`record_total` optionally stores the total user
      count (the hierarchical family keeps it in slot 0).
    * :meth:`assign_levels` returns the sampled level key per user, or
      ``None`` when every user reports at every level (the flat family and
      the budget-splitting ablation).
    * :meth:`encode_level` maps a level's items to coefficient indices and
      privatizes them through that level's oracle -- the only epsilon-LDP
      step of the pipeline.
    * :meth:`assemble` turns the per-level debiased estimates back into the
      family's estimator, applying any consistency hook.
    * :meth:`prepare_counts` / :meth:`split_counts` / :meth:`simulate_level`
      are the aggregate-simulation counterparts used by
      :meth:`DecomposedRangeQueryProtocol.simulate_aggregate`.
    """

    #: Tag shared by the composite accumulator label and the report codec;
    #: concrete decompositions override ("flat", "hierarchical", ...).
    label: str = "abstract"

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def levels(self) -> Sequence[int]:
        """Level keys in reporting order (payload keys, child order)."""

    @property
    @abc.abstractmethod
    def counts_size(self) -> int:
        """Length of the ``level_user_counts`` bookkeeping array."""

    def counts_slot(self, level: int) -> int:
        """Index of ``level`` inside ``level_user_counts``."""
        return int(level)

    def record_total(self, level_user_counts: np.ndarray, n_users: int) -> None:
        """Store the total user count, for families that track it (no-op)."""

    @abc.abstractmethod
    def validate_items(self, items: np.ndarray) -> np.ndarray:
        """Validate and coerce one batch of private items."""

    # ------------------------------------------------------------------ #
    # user -> level assignment and per-level encoding
    # ------------------------------------------------------------------ #
    def assign_levels(
        self, items: np.ndarray, rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        """Sampled level key per user; ``None`` = every user, every level."""
        return None

    @abc.abstractmethod
    def make_level_oracle(self, level: int):
        """A fresh frequency oracle for one level's coefficient domain."""

    @abc.abstractmethod
    def encode_level(
        self, items: np.ndarray, level: int, oracle: Any, rng: np.random.Generator
    ) -> Any:
        """Map items to level coefficients and privatize them."""

    # ------------------------------------------------------------------ #
    # estimate assembly
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def assemble(
        self,
        level_estimates: Dict[int, np.ndarray],
        level_user_counts: np.ndarray,
        n_users: int,
    ):
        """Build the family's estimator from per-level debiased estimates.

        ``level_estimates`` holds one entry per level that received at
        least one report; levels with no users are absent and the assembly
        substitutes its family's zero estimate.  Consistency hooks
        (constrained inference for the hierarchical family) run here.
        """

    # ------------------------------------------------------------------ #
    # aggregate simulation hooks
    # ------------------------------------------------------------------ #
    def prepare_counts(self, counts: np.ndarray) -> np.ndarray:
        """Family-specific preprocessing of a validated true histogram."""
        return counts

    def split_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> Optional[List[np.ndarray]]:
        """Per-level item counts; ``None`` = every level sees all counts."""
        return None

    def simulate_level(
        self,
        item_counts: np.ndarray,
        level: int,
        oracle: Any,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample one level's debiased estimate straight from a histogram."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support aggregate simulation"
        )


# --------------------------------------------------------------------- #
# concrete decompositions
# --------------------------------------------------------------------- #
class IdentityDecomposition(Decomposition):
    """The flat baseline: a single level holding the whole domain.

    Every user reports her item through one frequency oracle over the full
    domain; a range query is answered by summing the per-item estimates
    (Section 4.2 of the paper).
    """

    label = "flat"

    def __init__(
        self, domain: Domain, oracle_factory, postprocess: PipelineLike = None
    ) -> None:
        self._domain = domain
        self._oracle_factory = oracle_factory
        self._pipeline = resolve_postprocess(postprocess, FREQUENCIES)

    @property
    def levels(self) -> Sequence[int]:
        return (0,)

    @property
    def counts_size(self) -> int:
        return 1

    def counts_slot(self, level: int) -> int:
        return 0

    def validate_items(self, items: np.ndarray) -> np.ndarray:
        return self._domain.validate_items(items)

    def make_level_oracle(self, level: int):
        return self._oracle_factory()

    def encode_level(self, items, level, oracle, rng):
        return oracle.privatize(items, rng=rng)

    def assemble(self, level_estimates, level_user_counts, n_users):
        from repro.flat.flat import FlatEstimator

        frequencies = level_estimates[0]
        if self._pipeline:
            frequencies = self._pipeline.apply(
                frequencies, PostContext(kind=FREQUENCIES, n_users=n_users)
            )
        return FlatEstimator(self._domain, frequencies)

    def simulate_level(self, item_counts, level, oracle, rng):
        return oracle.estimate_from_counts(item_counts, rng=rng)


class BAdicTreeDecomposition(Decomposition):
    """The B-ary domain tree of the hierarchical histograms.

    Level ``l`` (1 = children of the root) estimates the fraction of the
    population under each of the ``B^l`` nodes; a user contributes the
    one-hot vector of her ancestor node.  Under the paper's ``"sample"``
    strategy each user reports a single sampled level; under the
    ``"split"`` ablation every user reports every level (the per-level
    oracles then run at ``epsilon / h``, which the oracle factory already
    accounts for).
    """

    label = "hierarchical"

    def __init__(
        self,
        tree,
        oracle_factory,
        level_probabilities: np.ndarray,
        level_strategy: str = "sample",
        consistency: bool = False,
        postprocess: PipelineLike = None,
    ) -> None:
        self._tree = tree
        self._domain = Domain(tree.domain_size)
        self._oracle_factory = oracle_factory
        self._level_probabilities = np.asarray(level_probabilities, dtype=np.float64)
        self._level_strategy = level_strategy
        self._consistency = bool(consistency)
        if postprocess is None:
            # The legacy boolean maps onto the equivalent pipeline, keeping
            # consistency=True bit-identical to the pre-pipeline outputs.
            postprocess = "consistency" if self._consistency else "none"
        self._pipeline = resolve_postprocess(postprocess, TREE)

    @property
    def tree(self):
        """The structural domain tree."""
        return self._tree

    @property
    def levels(self) -> Sequence[int]:
        return range(1, self._tree.height + 1)

    @property
    def counts_size(self) -> int:
        return self._tree.num_levels

    def record_total(self, level_user_counts: np.ndarray, n_users: int) -> None:
        level_user_counts[0] = n_users

    def validate_items(self, items: np.ndarray) -> np.ndarray:
        return self._domain.validate_items(items)

    def assign_levels(self, items, rng):
        if self._level_strategy != "sample":
            return None
        height = self._tree.height
        return rng.choice(
            np.arange(1, height + 1), size=len(items), p=self._level_probabilities
        )

    def make_level_oracle(self, level: int):
        return self._oracle_factory(level)

    def encode_level(self, items, level, oracle, rng):
        node_items = self._tree.ancestor_index(items, level)
        return oracle.privatize(node_items, rng=rng)

    def assemble(self, level_estimates, level_user_counts, n_users):
        from repro.hierarchy.hh import HierarchicalEstimator

        level_values = self._tree.empty_levels()
        level_values[0][:] = 1.0
        for level, estimates in level_estimates.items():
            level_values[level] = estimates
        if self._pipeline:
            context = PostContext(
                kind=TREE,
                n_users=n_users,
                level_user_counts=level_user_counts,
                branching=self._tree.branching,
                tree=self._tree,
            )
            level_values = self._pipeline.apply(level_values, context)
        return HierarchicalEstimator(
            self._tree,
            level_values,
            consistent=self._pipeline.tree_consistent(),
            level_user_counts=level_user_counts,
        )

    def prepare_counts(self, counts: np.ndarray) -> np.ndarray:
        return np.rint(counts).astype(np.int64)

    def split_counts(self, counts, rng):
        if self._level_strategy != "sample":
            return None
        return multinomial_level_split(counts, self._level_probabilities, rng)

    def simulate_level(self, item_counts, level, oracle, rng):
        node_counts = self._tree.level_histogram(item_counts, level)
        return oracle.estimate_from_counts(node_counts, rng=rng)


class HaarDecomposition(Decomposition):
    """The Haar detail heights of the wavelet protocol.

    Height ``j`` (1 = finest) estimates the signed node fractions feeding
    the Haar detail coefficients: a user contributes ``+1`` if her item
    falls in the left half of its ancestor node's interval and ``-1``
    otherwise, privatized with Hadamard Randomized Response.  The smooth
    coefficient is pinned analytically (fractions sum to one), so the
    assembly is consistent by construction -- no post-processing hook.
    """

    label = "haar"

    def __init__(
        self,
        domain: Domain,
        padded_size: int,
        height: int,
        oracle_factory,
        level_probabilities: np.ndarray,
        smooth_coefficient: float,
        postprocess: PipelineLike = None,
        epsilon: Optional[float] = None,
    ) -> None:
        self._domain = domain
        self._padded = int(padded_size)
        self._height = int(height)
        self._oracle_factory = oracle_factory
        self._level_probabilities = np.asarray(level_probabilities, dtype=np.float64)
        self._smooth = float(smooth_coefficient)
        self._pipeline = resolve_postprocess(postprocess, HAAR)
        # Known only when provided by the owning protocol; used to derive
        # the per-height noise floors of the haar_threshold processor.
        self._epsilon = None if epsilon is None else float(epsilon)

    @property
    def levels(self) -> Sequence[int]:
        return range(1, self._height + 1)

    @property
    def counts_size(self) -> int:
        # Index 0 is unused, matching the protocol's diagnostics convention.
        return self._height + 1

    def validate_items(self, items: np.ndarray) -> np.ndarray:
        return self._domain.validate_items(items)

    def assign_levels(self, items, rng):
        return rng.choice(
            np.arange(1, self._height + 1),
            size=len(items),
            p=self._level_probabilities,
        )

    def make_level_oracle(self, level: int):
        return self._oracle_factory(level)

    def encode_level(self, items, level, oracle, rng):
        from repro.wavelet.haar import leaf_membership

        nodes, signs = leaf_membership(items, level)
        return oracle.privatize_signed(nodes, signs, rng=rng)

    def assemble(self, level_estimates, level_user_counts, n_users):
        from repro.wavelet.haar import HaarCoefficients
        from repro.wavelet.haar_hrr import HaarEstimator

        details: List[np.ndarray] = []
        for height_j in self.levels:
            num_nodes = self._padded // (2**height_j)
            signed_fractions = level_estimates.get(height_j)
            if signed_fractions is None:
                details.append(np.zeros(num_nodes))
            else:
                details.append(signed_fractions / (2.0 ** (height_j / 2.0)))
        coefficients = HaarCoefficients(smooth=self._smooth, details=details)
        if self._pipeline:
            context = PostContext(
                kind=HAAR,
                n_users=n_users,
                level_user_counts=level_user_counts,
                noise_variances=self._noise_variances(level_user_counts),
            )
            coefficients = self._pipeline.apply(coefficients, context)
        return HaarEstimator(
            self._domain.size, self._padded, coefficients, level_user_counts
        )

    def _noise_variances(
        self, level_user_counts: np.ndarray
    ) -> Optional[Dict[int, float]]:
        """Estimation variance of one detail coefficient per height.

        The debiased signed fraction at height ``j`` carries the standard
        oracle variance over the ``n_j`` users sampled there; dividing by
        ``2^{j/2}`` to obtain the coefficient scales the variance by
        ``2^{-j}``.  ``None`` when the owning protocol did not share its
        epsilon (direct decomposition constructions).
        """
        if self._epsilon is None:
            return None
        from repro.frequency_oracles.base import standard_oracle_variance

        psi = standard_oracle_variance(self._epsilon)
        variances: Dict[int, float] = {}
        for height_j in self.levels:
            n_level = int(level_user_counts[height_j])
            if n_level <= 0:
                variances[height_j] = float("inf")
            else:
                variances[height_j] = psi / n_level / (2.0**height_j)
        return variances

    def prepare_counts(self, counts: np.ndarray) -> np.ndarray:
        counts = np.rint(counts).astype(np.int64)
        padded_counts = np.zeros(self._padded, dtype=np.int64)
        padded_counts[: self._domain.size] = counts
        return padded_counts

    def split_counts(self, counts, rng):
        return multinomial_level_split(counts, self._level_probabilities, rng)

    def simulate_level(self, item_counts, level, oracle, rng):
        span = 2**level
        half = span // 2
        num_nodes = self._padded // span
        reshaped = item_counts.reshape(num_nodes, span)
        positive = reshaped[:, :half].sum(axis=1)
        negative = reshaped[:, half:].sum(axis=1)
        return oracle.estimate_from_signed_counts(positive, negative, rng=rng)


class Grid2DDecomposition(Decomposition):
    """Per-axis-level pairs of the 2-D hierarchical grid (Section 6).

    Each level key indexes a pair ``(level_x, level_y)`` of per-axis tree
    levels; a user holding ``(x, y)`` contributes the one-hot vector over
    the grid of node pairs at those levels.  Items are ``(N, 2)`` arrays of
    coordinate pairs rather than scalars -- the only family whose
    coefficient mapping consumes more than one column.
    """

    label = "grid2d"

    def __init__(
        self,
        tree_x,
        tree_y,
        epsilon: float,
        oracle_name: str,
        postprocess: PipelineLike = None,
    ) -> None:
        self._tree_x = tree_x
        self._tree_y = tree_y
        self._domain_x = Domain(tree_x.domain_size)
        self._domain_y = Domain(tree_y.domain_size)
        self._epsilon = float(epsilon)
        self._oracle_name = oracle_name
        self._pipeline = resolve_postprocess(postprocess, GRID)
        self._pairs = [
            (level_x, level_y)
            for level_x in range(1, tree_x.height + 1)
            for level_y in range(1, tree_y.height + 1)
        ]

    @property
    def level_pairs(self) -> List[tuple]:
        """The ``(level_x, level_y)`` pair behind each level key."""
        return list(self._pairs)

    @property
    def levels(self) -> Sequence[int]:
        return range(len(self._pairs))

    @property
    def counts_size(self) -> int:
        return len(self._pairs)

    def validate_items(self, items: np.ndarray) -> np.ndarray:
        items = np.asarray(items)
        if items.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        if items.ndim != 2 or items.shape[1] != 2:
            raise ProtocolUsageError(
                f"grid items must be an (N, 2) array of (x, y) pairs, "
                f"got shape {items.shape}"
            )
        return np.stack(
            [
                self._domain_x.validate_items(items[:, 0]),
                self._domain_y.validate_items(items[:, 1]),
            ],
            axis=1,
        )

    def assign_levels(self, items, rng):
        return rng.integers(0, len(self._pairs), size=len(items))

    def make_level_oracle(self, level: int):
        from repro.frequency_oracles import make_oracle

        level_x, level_y = self._pairs[level]
        num_cells = self._tree_x.level_size(level_x) * self._tree_y.level_size(level_y)
        return make_oracle(self._oracle_name, num_cells, self._epsilon)

    def encode_level(self, items, level, oracle, rng):
        level_x, level_y = self._pairs[level]
        nodes_y_count = self._tree_y.level_size(level_y)
        node_x = self._tree_x.ancestor_index(items[:, 0], level_x)
        node_y = self._tree_y.ancestor_index(items[:, 1], level_y)
        return oracle.privatize(node_x * nodes_y_count + node_y, rng=rng)

    def assemble(self, level_estimates, level_user_counts, n_users):
        from repro.multidim.grid import Grid2DEstimator

        grids: Dict[tuple, np.ndarray] = {}
        for key, (level_x, level_y) in enumerate(self._pairs):
            shape = (
                self._tree_x.level_size(level_x),
                self._tree_y.level_size(level_y),
            )
            estimates = level_estimates.get(key)
            if estimates is None:
                grids[(level_x, level_y)] = np.zeros(shape)
            else:
                grids[(level_x, level_y)] = estimates.reshape(shape)
        if self._pipeline:
            grids = self._pipeline.apply(
                grids, PostContext(kind=GRID, n_users=n_users)
            )
        return Grid2DEstimator(self._tree_x, self._tree_y, grids)


# --------------------------------------------------------------------- #
# the protocol base classes built on a decomposition
# --------------------------------------------------------------------- #
class DecompositionRoles(abc.ABC):
    """Cached decomposition plus the generic runtime-role factories.

    The one implementation of ``decomposition()`` / ``client()`` /
    ``server()`` shared by every protocol that runs on the engine --
    1-D range protocols inherit it through
    :class:`DecomposedRangeQueryProtocol`, and protocols outside the
    :class:`~repro.core.protocol.RangeQueryProtocol` interface (the 2-D
    grid) mix it in directly.
    """

    @abc.abstractmethod
    def _build_decomposition(self) -> Decomposition:
        """Construct this configuration's decomposition (built once)."""

    def decomposition(self) -> Decomposition:
        """The cached :class:`Decomposition` of this configuration."""
        cached = getattr(self, "_decomposition_cache", None)
        if cached is None:
            cached = self._build_decomposition()
            self._decomposition_cache = cached
        return cached

    def client(self):
        from repro.core.session import DecompositionClient

        return DecompositionClient(self)

    def server(self, state=None):
        from repro.core.session import DecompositionServer

        return DecompositionServer(self, state)

    def estimator_from_state(self, state):
        """Finalize an estimator straight from an accumulator state.

        ``state`` is any :class:`~repro.core.session.CompositeAccumulator`
        of this configuration -- a single server's live state, a snapshot,
        or a lazily merged window of epoch shards (see
        :meth:`repro.engine.Engine.estimator`).  The state is adopted
        without copying, so callers merging windows should pass a merged
        *copy* rather than a live epoch shard.
        """
        return self.server(state=state).finalize()

    def engine(self):
        """A fresh single-protocol :class:`repro.engine.Engine` façade."""
        from repro.engine import Engine

        return Engine.open(self)


class DecomposedRangeQueryProtocol(DecompositionRoles, RangeQueryProtocol):
    """A range-query protocol whose runtime roles are decomposition-generic.

    Subclasses implement :meth:`_build_decomposition` (plus ``spec()`` and
    the theory hooks) and inherit streaming clients/servers, exact shard
    merging, wire serialization and the aggregate-simulation driver.
    """

    def simulate_aggregate(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> RangeQueryEstimator:
        """One aggregate-simulation driver for every decomposition.

        Validates the histogram, lets the decomposition preprocess it and
        split it across levels (Binomial sampling mirrors the per-user
        level sampling exactly), samples each level's debiased estimate
        directly from its level histogram, and assembles -- statistically
        equivalent to :meth:`run` at a fraction of the cost, the same
        device the paper uses for its large-scale OUE experiments.
        """
        rng = ensure_rng(rng)
        counts = np.asarray(true_counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) != self.domain_size:
            raise ValueError(
                f"true_counts must have length {self.domain_size}, got {counts.shape}"
            )
        if counts.sum() <= 0:
            raise ProtocolUsageError("cannot simulate the protocol with zero users")
        decomposition = self.decomposition()
        counts = decomposition.prepare_counts(counts)
        total = int(counts.sum())
        level_user_counts = np.zeros(decomposition.counts_size, dtype=np.int64)
        decomposition.record_total(level_user_counts, total)
        per_level = decomposition.split_counts(counts, rng)
        level_estimates: Dict[int, np.ndarray] = {}
        for index, level in enumerate(decomposition.levels):
            item_counts = counts if per_level is None else per_level[index]
            n_level = int(item_counts.sum())
            level_user_counts[decomposition.counts_slot(level)] = n_level
            if per_level is not None and n_level == 0:
                continue
            oracle = decomposition.make_level_oracle(level)
            level_estimates[level] = decomposition.simulate_level(
                item_counts, level, oracle, rng
            )
        return decomposition.assemble(level_estimates, level_user_counts, total)
