"""Small value types shared across the library.

The paper works with three recurring concepts that we make explicit here:

* a discrete :class:`Domain` ``[D] = {0, 1, ..., D-1}`` that user items are
  drawn from;
* the privacy budget, wrapped in :class:`PrivacyParams` so that derived
  quantities (``e^eps`` and the randomized-response probabilities) are
  computed once and validated; and
* a closed range query ``[a, b]`` represented by :class:`RangeSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import (
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
)


def next_power_of(base: int, value: int) -> int:
    """Return the smallest power of ``base`` that is ``>= value``.

    Used to pad domains so that complete ``B``-ary trees and the Haar
    transform (which requires a power-of-two length) can be applied.
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    power = 1
    while power < value:
        power *= base
    return power


def is_power_of(base: int, value: int) -> bool:
    """Return ``True`` iff ``value`` is an exact power of ``base``."""
    if value < 1:
        return False
    return next_power_of(base, value) == value


@dataclass(frozen=True)
class Domain:
    """A one-dimensional discrete domain ``{0, ..., size - 1}``.

    Parameters
    ----------
    size:
        The number of distinct items ``D``.  Must be a positive integer.
    """

    size: int

    def __post_init__(self) -> None:
        if not isinstance(self.size, (int, np.integer)) or self.size < 1:
            raise InvalidDomainError(
                f"domain size must be a positive integer, got {self.size!r}"
            )

    def validate_items(self, items: np.ndarray) -> np.ndarray:
        """Validate and coerce an array of user items into the domain.

        Returns the items as an ``int64`` array; raises
        :class:`InvalidDomainError` if any item falls outside ``[0, size)``.
        """
        arr = np.asarray(items)
        if arr.ndim != 1:
            raise InvalidDomainError(
                f"items must be a 1-D array, got shape {arr.shape}"
            )
        if arr.size == 0:
            return arr.astype(np.int64)
        if not np.issubdtype(arr.dtype, np.integer):
            rounded = np.rint(arr)
            if not np.allclose(arr, rounded):
                raise InvalidDomainError("items must be integers")
            arr = rounded
        arr = arr.astype(np.int64)
        if arr.min() < 0 or arr.max() >= self.size:
            raise InvalidDomainError(
                f"items must lie in [0, {self.size}), observed range "
                f"[{arr.min()}, {arr.max()}]"
            )
        return arr

    def padded_size(self, base: int = 2) -> int:
        """Size of this domain padded up to the next power of ``base``."""
        return next_power_of(base, self.size)

    def histogram(self, items: np.ndarray) -> np.ndarray:
        """Exact (non-private) counts of each item; used as ground truth."""
        arr = self.validate_items(items)
        return np.bincount(arr, minlength=self.size).astype(np.float64)

    def frequencies(self, items: np.ndarray) -> np.ndarray:
        """Exact (non-private) fractional frequencies of each item."""
        counts = self.histogram(items)
        total = counts.sum()
        if total == 0:
            return counts
        return counts / total


@dataclass(frozen=True)
class PrivacyParams:
    """The local differential privacy budget ``epsilon``.

    Exposes the derived quantities used throughout the paper:
    ``e^eps`` and the binary randomized-response "keep" probability
    ``p = e^eps / (1 + e^eps)``.
    """

    epsilon: float

    def __post_init__(self) -> None:
        eps = self.epsilon
        if not isinstance(eps, (int, float, np.floating)) or isinstance(eps, bool):
            raise InvalidPrivacyBudgetError(
                f"epsilon must be a number, got {eps!r}"
            )
        if not math.isfinite(eps) or eps <= 0:
            raise InvalidPrivacyBudgetError(
                f"epsilon must be a positive finite number, got {eps!r}"
            )

    @property
    def e_eps(self) -> float:
        """``exp(epsilon)``."""
        return math.exp(self.epsilon)

    @property
    def keep_probability(self) -> float:
        """Binary randomized response probability of reporting truthfully."""
        return self.e_eps / (1.0 + self.e_eps)

    @property
    def flip_probability(self) -> float:
        """Binary randomized response probability of lying."""
        return 1.0 / (1.0 + self.e_eps)

    def grr_keep_probability(self, k: int) -> float:
        """Generalized randomized response keep probability over ``k`` items."""
        if k < 2:
            raise ValueError(f"GRR needs at least 2 categories, got {k}")
        return self.e_eps / (self.e_eps + k - 1)


@dataclass(frozen=True)
class RangeSpec:
    """A closed range query ``[left, right]`` over a domain of size ``D``.

    Both endpoints are inclusive, matching the paper's definition
    ``R[a, b] = (1/N) sum_i I(a <= z_i <= b)``.
    """

    left: int
    right: int

    def __post_init__(self) -> None:
        if self.left > self.right:
            raise InvalidRangeError(
                f"range left endpoint {self.left} exceeds right endpoint {self.right}"
            )
        if self.left < 0:
            raise InvalidRangeError(f"range left endpoint must be >= 0, got {self.left}")

    @property
    def length(self) -> int:
        """Number of domain items covered by the range (``r`` in the paper)."""
        return self.right - self.left + 1

    def validate_for_domain(self, domain_size: int) -> "RangeSpec":
        """Raise :class:`InvalidRangeError` if the range exceeds the domain."""
        if self.right >= domain_size:
            raise InvalidRangeError(
                f"range [{self.left}, {self.right}] exceeds domain of size {domain_size}"
            )
        return self

    def true_answer(self, frequencies: np.ndarray) -> float:
        """Exact answer of this range on a (fractional) frequency vector."""
        self.validate_for_domain(len(frequencies))
        return float(np.sum(frequencies[self.left : self.right + 1]))

    def as_tuple(self) -> tuple:
        """Return ``(left, right)``."""
        return (self.left, self.right)
