"""The pluggable post-processing subsystem shared by every estimator family.

Section 4.5 of the paper treats consistency enforcement as a first-class
accuracy lever: the noisy, unbiased estimates coming out of the frequency
oracles are *post-processed* -- a step that touches only already-privatized
data and is therefore free under LDP -- into estimates that respect the
structure the truth is known to have (non-negativity, summing to one,
parent = sum-of-children, monotone CDFs, agreeing grid marginals).

Historically that lever existed only for the hierarchical family (a
``consistency`` boolean buried in ``repro.hierarchy``); this module makes it
a uniform, composable layer for *every* decomposition family:

* :class:`PostProcessor` is the unit of post-processing: a vectorised,
  O(D * h) array kernel over one family's assembled estimates.  Each
  processor declares the estimate ``kinds`` it understands --
  ``"frequencies"`` (flat), ``"tree"`` (hierarchical level values),
  ``"haar"`` (wavelet coefficients) or ``"grid"`` (2-D level-pair grids).
* :class:`PostPipeline` composes processors in order.  Pipelines are named
  by ``"+"``-joined registry tokens (``"consistency+norm_sub"``), resolve
  through :func:`make_pipeline`, and round-trip through every protocol's
  ``spec()`` -- hence through serialization envelopes, ``Engine.open`` and
  the CLI's ``--postprocess`` flag.
* The concrete processors:

  - :class:`NonNegativeClip` -- clamp negative estimates to zero;
  - :class:`NormSub` -- Euclidean projection onto the probability simplex
    (non-negative, summing to one; the "Norm-Sub" of the LDP consistency
    literature);
  - :class:`MonotoneCdf` -- monotonize-and-clip the implied CDF (the
    clean-up previously inlined in :mod:`repro.queries.prefix`);
  - :class:`TreeWeightedAveraging` / :class:`TreeMeanConsistency` -- the
    two stages of Hay-style constrained inference (Section 4.5), whose
    math now lives here (:func:`tree_weighted_averaging`,
    :func:`tree_mean_consistency`; :mod:`repro.hierarchy.consistency`
    re-exports them for compatibility);
  - :class:`TreeLeastSquares` -- the explicit small-domain least-squares
    solution of Lemma 4.6 behind the same interface;
  - :class:`HaarCoefficientThreshold` -- zero Haar detail coefficients
    below their noise floor before inversion;
  - :class:`GridMarginalConsistency` -- reconcile every 2-D level-pair
    grid against shared per-axis 1-D marginals.

The default pipeline of every family is ``"none"`` (the hierarchical
``consistency=True`` maps to ``"consistency"``), pinned bit-identical to
the pre-pipeline outputs by the golden decomposition tests.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import ProtocolUsageError

#: Estimate kinds a processor may declare support for.
FREQUENCIES = "frequencies"
TREE = "tree"
HAAR = "haar"
GRID = "grid"

ESTIMATE_KINDS = (FREQUENCIES, TREE, HAAR, GRID)


@dataclass
class PostContext:
    """Family context handed to every processor alongside the estimates.

    ``kind`` names the estimate shape (one of :data:`ESTIMATE_KINDS`);
    the remaining fields are filled in by the owning decomposition where
    they make sense: ``branching``/``tree`` for the hierarchical family,
    ``noise_variances`` (per detail height) for the wavelet family.
    """

    kind: str
    n_users: int = 0
    level_user_counts: Optional[np.ndarray] = None
    branching: Optional[int] = None
    tree: Any = None
    noise_variances: Optional[Dict[int, float]] = None


# --------------------------------------------------------------------- #
# shared array kernels
# --------------------------------------------------------------------- #
def _validate_tree_levels(level_values: Sequence[np.ndarray], branching: int) -> List[np.ndarray]:
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    levels = [np.array(values, dtype=np.float64, copy=True) for values in level_values]
    if not levels:
        raise ValueError("level_values must contain at least the root level")
    for depth, values in enumerate(levels):
        expected = branching**depth
        if len(values) != expected:
            raise ValueError(f"level {depth} must have {expected} nodes, got {len(values)}")
    return levels


def tree_weighted_averaging(level_values: Sequence[np.ndarray], branching: int) -> List[np.ndarray]:
    """Stage 1 of constrained inference: bottom-up weighted averaging.

    ``level_values[0]`` is the root, ``level_values[-1]`` the leaves.
    Returns a new list; the input is not modified.  (Relocated verbatim
    from ``repro.hierarchy.consistency.weighted_averaging``.)
    """
    levels = _validate_tree_levels(level_values, branching)
    height = len(levels) - 1
    b = float(branching)
    # Walk from the last internal level up to the root.  A node at level
    # ``depth`` has paper-height i = height - depth + 1 (leaves have i = 1).
    for depth in range(height - 1, -1, -1):
        i = height - depth + 1
        child_sums = levels[depth + 1].reshape(-1, branching).sum(axis=1)
        numerator_self = b**i - b ** (i - 1)
        numerator_children = b ** (i - 1) - 1.0
        denominator = b**i - 1.0
        # In-place update (the levels are private copies): one temporary
        # instead of three per level.
        values = levels[depth]
        values *= numerator_self
        child_sums *= numerator_children
        values += child_sums
        values /= denominator
    return levels


def tree_mean_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: Optional[float] = None,
) -> List[np.ndarray]:
    """Stage 2 of constrained inference: top-down residual redistribution.

    If ``root_value`` is given the root is pinned to that value first (the
    hierarchical-histogram protocol passes ``1.0`` because fractions over
    the whole population must sum to one).  (Relocated verbatim from
    ``repro.hierarchy.consistency.mean_consistency``.)
    """
    levels = _validate_tree_levels(level_values, branching)
    if root_value is not None:
        levels[0] = np.array([float(root_value)])
    height = len(levels) - 1
    for depth in range(1, height + 1):
        child_sums = levels[depth].reshape(-1, branching).sum(axis=1)
        residual = (levels[depth - 1] - child_sums) / branching
        # Broadcast the per-parent residual onto the children in place.
        levels[depth].reshape(-1, branching)[...] += residual[:, None]
    return levels


def tree_enforce_consistency(
    level_values: Sequence[np.ndarray],
    branching: int,
    root_value: Optional[float] = 1.0,
) -> List[np.ndarray]:
    """Full two-stage constrained inference (Stage 1 then Stage 2)."""
    averaged = tree_weighted_averaging(level_values, branching)
    return tree_mean_consistency(averaged, branching, root_value=root_value)


def monotone_cdf_array(cdf: np.ndarray, clip: bool = True) -> np.ndarray:
    """Monotone non-decreasing version of a (noisy) CDF array.

    ``clip=True`` additionally clamps the result into ``[0, 1]``.  This is
    the one implementation behind :func:`repro.queries.prefix.monotone_cdf`
    and the :class:`MonotoneCdf` processor.
    """
    cdf = np.maximum.accumulate(np.asarray(cdf, dtype=np.float64))
    if clip:
        return np.clip(cdf, 0.0, 1.0)
    return cdf


def project_onto_simplex(values: np.ndarray, total: float = 1.0) -> np.ndarray:
    """Euclidean projection of a vector onto the simplex ``{x >= 0, sum = total}``.

    The standard O(D log D) sort-based algorithm: subtract the constant
    that makes the positive part sum to ``total`` and clamp at zero
    ("Norm-Sub").  Projection onto a convex set containing the true
    frequency vector can only reduce the L2 distance to the truth.
    """
    flat = np.asarray(values, dtype=np.float64).reshape(-1)
    if flat.size == 0:
        return flat.copy()
    sorted_desc = np.sort(flat)[::-1]
    cumulative = np.cumsum(sorted_desc)
    positions = np.arange(1, flat.size + 1)
    # The support of the projection is the longest prefix (in sorted
    # order) whose entries stay positive after the uniform subtraction.
    support = np.count_nonzero(sorted_desc + (total - cumulative) / positions > 0)
    theta = (cumulative[support - 1] - total) / support
    return np.maximum(flat - theta, 0.0)


# --------------------------------------------------------------------- #
# the processor interface
# --------------------------------------------------------------------- #
class PostProcessor(abc.ABC):
    """One vectorised post-processing step over assembled estimates.

    A processor receives the family-shaped estimates (see
    :data:`ESTIMATE_KINDS`) plus a :class:`PostContext` and returns new
    estimates of the same shape; inputs are never mutated.  Processors are
    stateless and cheap to construct, so registry tokens map to factories.
    """

    #: Registry token of this processor (also its ``spec`` spelling).
    name: ClassVar[str] = "abstract"

    #: Estimate kinds this processor can post-process.
    kinds: ClassVar[Tuple[str, ...]] = ()

    #: Effect on the hierarchical parent = sum(children) invariant:
    #: ``True`` establishes it, ``False`` may break it, ``None`` preserves
    #: whatever held before.  Folded by :meth:`PostPipeline.tree_consistent`.
    tree_consistency_effect: ClassVar[Optional[bool]] = None

    def supports(self, kind: str) -> bool:
        """Whether this processor understands ``kind`` estimates."""
        return kind in self.kinds

    def spec_token(self) -> str:
        """Registry spelling that rebuilds this exact processor.

        Parameterized processors override this to append their non-default
        parameters as a ``:`` suffix (``"haar_threshold:3.5"``) so that
        ``protocol.spec()`` round-trips remain faithful.
        """
        return self.name

    @abc.abstractmethod
    def apply(self, values: Any, context: PostContext) -> Any:
        """Return post-processed estimates (same shape as ``values``)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NonNegativeClip(PostProcessor):
    """Clamp negative estimates to zero.

    True frequencies are non-negative, so clipping is a projection onto a
    convex set containing the truth -- it never increases per-item error.
    """

    name = "clip"
    kinds = (FREQUENCIES, TREE, GRID)
    tree_consistency_effect = False

    def apply(self, values, context):
        if context.kind == TREE:
            return [np.maximum(level, 0.0) for level in values]
        if context.kind == GRID:
            return {pair: np.maximum(grid, 0.0) for pair, grid in values.items()}
        return np.maximum(np.asarray(values, dtype=np.float64), 0.0)


class NormSub(PostProcessor):
    """Project estimates onto the probability simplex (Norm-Sub).

    Frequencies become non-negative and sum to exactly one.  For the
    hierarchical family every non-root level (a distribution over that
    level's nodes) is projected independently; for the 2-D grid every
    level-pair grid is projected as a distribution over its cells.
    """

    name = "norm_sub"
    kinds = (FREQUENCIES, TREE, GRID)
    tree_consistency_effect = False

    def apply(self, values, context):
        if context.kind == TREE:
            projected = [np.array(values[0], dtype=np.float64, copy=True)]
            projected.extend(project_onto_simplex(level) for level in values[1:])
            return projected
        if context.kind == GRID:
            return {
                pair: project_onto_simplex(grid).reshape(grid.shape)
                for pair, grid in values.items()
            }
        return project_onto_simplex(values)


class MonotoneCdf(PostProcessor):
    """Clean frequencies through their CDF: monotonize, clip to [0, 1], diff.

    Equivalent to isotonic clean-up of the prefix masses -- the step the
    quantile search has always applied internally -- surfaced as an
    explicit pipeline stage.  The resulting frequencies are non-negative
    and sum to at most one.
    """

    name = "monotone_cdf"
    kinds = (FREQUENCIES,)

    @staticmethod
    def monotonize(cdf: np.ndarray, clip: bool = True) -> np.ndarray:
        """Monotone (and optionally clipped) version of a CDF array."""
        return monotone_cdf_array(cdf, clip=clip)

    def apply(self, values, context):
        cdf = monotone_cdf_array(np.cumsum(np.asarray(values, dtype=np.float64)))
        return np.diff(cdf, prepend=0.0)


class TreeWeightedAveraging(PostProcessor):
    """Stage 1 of Hay-style constrained inference (bottom-up averaging)."""

    name = "weighted_averaging"
    kinds = (TREE,)
    tree_consistency_effect = False

    def apply(self, values, context):
        if context.branching is None:
            raise ProtocolUsageError(
                "weighted_averaging needs the tree branching factor in its context"
            )
        return tree_weighted_averaging(values, context.branching)


class TreeMeanConsistency(PostProcessor):
    """Stage 2 of Hay-style constrained inference (top-down residuals).

    Pins the root to ``root_value`` first (1.0 by default: fractions of
    the whole population sum to one) and redistributes parent/children
    residuals so every parent equals the sum of its children.
    """

    name = "mean_consistency"
    kinds = (TREE,)
    tree_consistency_effect = True

    def __init__(self, root_value: Optional[float] = 1.0) -> None:
        self.root_value = root_value

    def spec_token(self) -> str:
        if self.root_value == 1.0:
            return self.name
        if self.root_value is None:
            return f"{self.name}:none"
        return f"{self.name}:{self.root_value!r}"

    def apply(self, values, context):
        if context.branching is None:
            raise ProtocolUsageError(
                "mean_consistency needs the tree branching factor in its context"
            )
        return tree_mean_consistency(values, context.branching, root_value=self.root_value)


class TreeLeastSquares(PostProcessor):
    """Explicit least-squares constrained inference (Lemma 4.6).

    Solves ``(H^T H)^{-1} H^T x`` over the materialised node-by-leaf
    design matrix -- exact, but only practical for small domains; the
    two-stage ``"consistency"`` pipeline computes the same solution in
    linear time.
    """

    name = "least_squares"
    kinds = (TREE,)
    tree_consistency_effect = True

    def apply(self, values, context):
        if context.tree is None:
            raise ProtocolUsageError("least_squares needs the domain tree in its context")
        from repro.hierarchy.least_squares import least_squares_levels

        return least_squares_levels(context.tree, values)


class HaarCoefficientThreshold(PostProcessor):
    """Zero Haar detail coefficients below their noise floor.

    A detail coefficient whose magnitude is within ``multiplier`` standard
    deviations of its estimation noise carries more noise than signal;
    hard-thresholding it to zero before inversion denoises the
    reconstruction (classic wavelet shrinkage, valid post-processing under
    LDP).  The per-height noise variances come from the decomposition's
    context (oracle variance over the users sampled at that height).
    """

    name = "haar_threshold"
    kinds = (HAAR,)

    def __init__(self, multiplier: float = 2.0) -> None:
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        self.multiplier = float(multiplier)

    def spec_token(self) -> str:
        if self.multiplier == 2.0:
            return self.name
        return f"{self.name}:{self.multiplier!r}"

    def apply(self, values, context):
        if context.noise_variances is None:
            raise ProtocolUsageError(
                "haar_threshold needs per-height noise variances in its context "
                "(the HaarDecomposition provides them when built with epsilon)"
            )
        coefficients = values.copy()
        for height_j, detail in enumerate(coefficients.details, start=1):
            variance = context.noise_variances.get(height_j)
            if variance is None or not np.isfinite(variance):
                continue
            threshold = self.multiplier * float(np.sqrt(variance))
            detail[np.abs(detail) < threshold] = 0.0
        return coefficients


class GridMarginalConsistency(PostProcessor):
    """Reconcile every 2-D level-pair grid against shared 1-D marginals.

    All grids sharing an x-level estimate the same per-axis node
    distribution through their row sums (and symmetrically for y-levels
    through column sums).  One pass per axis averages those estimates into
    a consensus marginal and redistributes each grid's residual uniformly
    across the opposing axis -- the 2-D analogue of mean consistency.
    """

    name = "grid_consistency"
    kinds = (GRID,)

    def apply(self, values, context):
        grids = {pair: np.array(grid, dtype=np.float64, copy=True) for pair, grid in values.items()}
        for axis in (0, 1):
            shared_levels = sorted({pair[axis] for pair in grids})
            for level in shared_levels:
                members = [pair for pair in grids if pair[axis] == level]
                # axis=0 shares x-levels: the marginal is the row sums
                # (summed over axis 1), and residuals spread over columns.
                marginals = [grids[pair].sum(axis=1 - axis) for pair in members]
                consensus = np.mean(marginals, axis=0)
                for pair, marginal in zip(members, marginals):
                    grid = grids[pair]
                    residual = (consensus - marginal) / grid.shape[1 - axis]
                    if axis == 0:
                        grid += residual[:, None]
                    else:
                        grid += residual[None, :]
        return grids


# --------------------------------------------------------------------- #
# pipelines and the string registry
# --------------------------------------------------------------------- #
class PostPipeline:
    """An ordered composition of :class:`PostProcessor` steps.

    Pipelines are immutable, truthy only when non-empty, and apply their
    processors in order.  :attr:`spec` is the ``"+"``-joined registry
    spelling used by ``protocol.spec()`` round-trips.
    """

    def __init__(self, processors: Sequence[PostProcessor], spec: Optional[str] = None) -> None:
        self._processors: Tuple[PostProcessor, ...] = tuple(processors)
        if spec is None:
            spec = "+".join(processor.spec_token() for processor in self._processors)
        self._spec = spec or "none"

    @property
    def processors(self) -> Tuple[PostProcessor, ...]:
        """The composed processors, in application order."""
        return self._processors

    @property
    def spec(self) -> str:
        """Registry spelling of this pipeline (``"none"`` when empty)."""
        return self._spec

    def __bool__(self) -> bool:
        return bool(self._processors)

    def __len__(self) -> int:
        return len(self._processors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PostPipeline({self._spec!r})"

    def validate_for(self, kind: str) -> "PostPipeline":
        """Check every processor understands ``kind`` estimates (fail fast)."""
        if kind not in ESTIMATE_KINDS:
            raise ValueError(f"unknown estimate kind {kind!r}; expected one of {ESTIMATE_KINDS}")
        for processor in self._processors:
            if not processor.supports(kind):
                raise ValueError(
                    f"post-processor {processor.name!r} does not apply to {kind!r} "
                    f"estimates (supported kinds: {list(processor.kinds)})"
                )
        return self

    def apply(self, values: Any, context: PostContext) -> Any:
        """Run every processor in order over ``values``."""
        for processor in self._processors:
            values = processor.apply(values, context)
        return values

    def tree_consistent(self, initial: bool = False) -> bool:
        """Whether tree estimates are parent = sum(children) afterwards."""
        flag = initial
        for processor in self._processors:
            if processor.tree_consistency_effect is not None:
                flag = processor.tree_consistency_effect
        return flag


#: Registry token -> factory of the processors that token expands to.
#: Composite conveniences (``"consistency"``) expand to several processors.
POSTPROCESSORS: Dict[str, Callable[[], List[PostProcessor]]] = {
    "none": lambda: [],
    "clip": lambda: [NonNegativeClip()],
    "norm_sub": lambda: [NormSub()],
    "monotone_cdf": lambda: [MonotoneCdf()],
    "weighted_averaging": lambda: [TreeWeightedAveraging()],
    "mean_consistency": lambda: [TreeMeanConsistency()],
    "consistency": lambda: [TreeWeightedAveraging(), TreeMeanConsistency()],
    "least_squares": lambda: [TreeLeastSquares()],
    "haar_threshold": lambda: [HaarCoefficientThreshold()],
    "grid_consistency": lambda: [GridMarginalConsistency()],
}

#: Tokens accepting a ``:`` parameter (``"haar_threshold:3.5"``,
#: ``"mean_consistency:none"``); the factory receives the parsed value.
_PARAMETRIC_TOKENS: Dict[str, Callable[[Optional[float]], List[PostProcessor]]] = {
    "haar_threshold": lambda value: [HaarCoefficientThreshold(multiplier=value)],
    "mean_consistency": lambda value: [TreeMeanConsistency(root_value=value)],
}


def _expand_token(token: str) -> List[PostProcessor]:
    base, _, parameter = token.partition(":")
    if parameter:
        factory = _PARAMETRIC_TOKENS.get(base)
        if factory is None:
            raise ValueError(f"post-processing token {base!r} does not take a ':' parameter")
        if parameter == "none":
            value: Optional[float] = None
        else:
            try:
                value = float(parameter)
            except ValueError as exc:
                raise ValueError(f"malformed parameter in post-processing token {token!r}") from exc
        return factory(value)
    factory = POSTPROCESSORS.get(base)
    if factory is None:
        raise ValueError(
            f"unknown post-processing token {base!r}; expected "
            f"'+'-combinations of {available_pipelines()}"
        )
    return factory()


PipelineLike = Union[None, str, PostProcessor, PostPipeline, Sequence]


def available_pipelines() -> List[str]:
    """The registry tokens ``make_pipeline`` accepts (combinable with ``+``)."""
    return sorted(POSTPROCESSORS)


def make_pipeline(spec: PipelineLike) -> PostPipeline:
    """Resolve any accepted pipeline spelling into a :class:`PostPipeline`.

    Accepted forms: ``None`` / ``"none"`` (the empty pipeline), a
    ``"+"``-joined registry string (``"consistency+norm_sub"``; the
    parametric tokens take a ``:`` value, e.g. ``"haar_threshold:3.5"``),
    a single :class:`PostProcessor`, an existing :class:`PostPipeline`
    (returned as-is), or a sequence mixing tokens and processors.
    Unknown tokens raise ``ValueError`` naming the registry.  Registry
    spellings -- including parametric ones -- round-trip faithfully
    through ``protocol.spec()``; processors of classes outside the
    registry apply live but cannot be rebuilt from a spec (rebuilding
    fails loudly rather than silently changing parameters).
    """
    if isinstance(spec, PostPipeline):
        return spec
    if spec is None:
        return PostPipeline([], spec="none")
    if isinstance(spec, PostProcessor):
        return PostPipeline([spec])
    if isinstance(spec, str):
        tokens = [token.strip().lower() for token in spec.split("+") if token.strip()]
        processors: List[PostProcessor] = []
        kept: List[str] = []
        for token in tokens:
            expanded = _expand_token(token)
            if expanded:
                kept.append(token)
            processors.extend(expanded)
        return PostPipeline(processors, spec="+".join(kept) or "none")
    if isinstance(spec, Sequence):
        processors = []
        for entry in spec:
            processors.extend(make_pipeline(entry).processors)
        return PostPipeline(processors)
    raise TypeError(f"cannot build a post-processing pipeline from {type(spec).__name__}")


def resolve_postprocess(spec: PipelineLike, kind: str) -> PostPipeline:
    """``make_pipeline`` plus a fail-fast kind check (used by constructors)."""
    return make_pipeline(spec).validate_for(kind)
