"""Client/server streaming sessions for LDP range-query protocols.

The paper's protocols are distributed by nature: every user randomizes her
item locally and an untrusted aggregator combines the reports.  This module
makes that split first-class instead of hiding it inside a batch
``run()`` call:

* :class:`ProtocolClient` is the stateless user side.  ``encode(item)`` /
  ``encode_batch(items)`` perform only the epsilon-LDP randomization and
  produce a typed :class:`Report` -- the one object that ever leaves a
  user's device.
* :class:`ProtocolServer` is the aggregator side.  ``ingest(reports)``
  folds reports into a compact sufficient-statistics accumulator,
  ``merge(other)`` combines the accumulators of independently run server
  shards, and ``finalize()`` turns the current state into a
  :class:`~repro.core.protocol.RangeQueryEstimator`.
* :class:`AccumulatorState` is the mergeable, serializable state a server
  carries.  ``merge`` is exactly associative and commutative -- every
  concrete accumulator stores integer (or exact dyadic) sums -- so any
  sharding of a report stream, merged in any order, finalizes to an
  estimator that is bit-for-bit identical to single-server ingestion.
  ``to_bytes()`` / ``from_bytes()`` round-trip the state through a stable,
  pickle-free wire format (:mod:`repro.core.serialization`), enabling
  persistence and cross-process aggregation.

:meth:`RangeQueryProtocol.run` is a thin convenience wrapper over one
client plus one server; the experiments, benchmarks and CLI all keep
working unchanged on top of this streaming model.
"""

from __future__ import annotations

import abc
import warnings
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
    Union,
)

import numpy as np

from repro.core.exceptions import ProtocolUsageError
from repro.core.rng import RngLike, ensure_rng
from repro.core.serialization import (
    SerializationError,
    pack_blob,
    pack_child,
    unpack_blob,
    unpack_child,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol


# --------------------------------------------------------------------- #
# accumulator states
# --------------------------------------------------------------------- #
#: Registry mapping ``state_kind`` tags to decoders ``(header, arrays) -> state``.
_STATE_DECODERS: Dict[str, Callable[[dict, Dict[str, np.ndarray]], "AccumulatorState"]] = {}


def register_state_decoder(
    kind: str, decoder: Callable[[dict, Dict[str, np.ndarray]], "AccumulatorState"]
) -> None:
    """Register a decoder for :meth:`AccumulatorState.from_bytes` dispatch."""
    _STATE_DECODERS[str(kind)] = decoder


class AccumulatorState(abc.ABC):
    """Mergeable, serializable sufficient statistics of an aggregation.

    Concrete states guarantee *exact* merge associativity and
    commutativity: merging any sharding of the same report stream in any
    order yields bit-identical statistics, because all internal sums are
    integers (or exact dyadic rationals for the Laplace-based SHE oracle).
    """

    #: Serialization tag; concrete classes override and register a decoder.
    state_kind: ClassVar[str] = "abstract"

    @property
    @abc.abstractmethod
    def n_reports(self) -> int:
        """Number of user reports folded into this state."""

    @abc.abstractmethod
    def merge(self, other: "AccumulatorState") -> "AccumulatorState":
        """Fold ``other`` into this state in place and return ``self``."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Serialize this state with :func:`repro.core.serialization.pack_blob`."""

    @staticmethod
    def from_bytes(data: bytes) -> "AccumulatorState":
        """Decode any registered accumulator state from its packed bytes."""
        header, arrays = unpack_blob(data)
        kind = header.get("state_kind")
        decoder = _STATE_DECODERS.get(kind)
        if decoder is None:
            raise SerializationError(f"unknown accumulator state kind {kind!r}")
        try:
            return decoder(header, arrays)
        except SerializationError:
            raise
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            # A structurally valid blob with an inconsistent header (e.g. a
            # mutated field) must fail as a decode error, not leak the
            # decoder's internal KeyError/ValueError.
            raise SerializationError(
                f"corrupt {kind!r} accumulator state: {exc!r}"
            ) from exc

    def copy(self) -> "AccumulatorState":
        """An independent deep copy (default: serialize and re-load)."""
        return AccumulatorState.from_bytes(self.to_bytes())


#: Protocol-spec keys that only affect estimate assembly (finalize), never
#: the accumulated sufficient statistics.  ``consistency`` is itself a
#: post-processing step (constrained inference at finalize time), and an
#: explicit ``postprocess`` pipeline overrides -- and re-derives -- the
#: ``consistency`` flag, so the two keys form one assembly-time identity.
_ASSEMBLY_ONLY_SPEC_KEYS = ("postprocess", "consistency")


def _comparable_config(config: dict) -> dict:
    """A config dict with post-processing identity stripped.

    Post-processing runs at assembly time only -- it never touches the
    sufficient statistics -- so two accumulators whose embedded protocol
    specs differ *only* in assembly-time keys (``postprocess``, the
    ``consistency`` flag it derives) hold exchangeable state and may be
    merged or adopted across that difference (this is how ``engine query
    --postprocess`` and the service's ``/query?postprocess=`` re-finalize
    existing statistics under a different pipeline).
    """
    protocol = config.get("protocol")
    if isinstance(protocol, dict) and any(
        key in protocol for key in _ASSEMBLY_ONLY_SPEC_KEYS
    ):
        config = dict(config)
        config["protocol"] = {
            key: value
            for key, value in protocol.items()
            if key not in _ASSEMBLY_ONLY_SPEC_KEYS
        }
    return config


class CompositeAccumulator(AccumulatorState):
    """An accumulator made of child accumulators plus a user counter.

    This is the state shape shared by every protocol server: the flat
    protocol has a single child (its oracle accumulator), the hierarchical
    protocol one child per tree level, and HaarHRR one child per detail
    height.  ``config`` carries the owning protocol's spec so that merges
    across incompatible configurations fail loudly and a server can be
    rebuilt from the state alone (see :func:`load_server`).

    ``meta`` is free-form JSON-able annotation that rides along without
    affecting identity: the :mod:`repro.engine` façade stamps each epoch
    shard with its epoch key there.  It is excluded from merge
    compatibility checks, and a state with empty ``meta`` serializes
    byte-for-byte identically to a pre-``meta`` state.
    """

    state_kind = "composite"

    def __init__(
        self,
        label: str,
        config: dict,
        children: List[AccumulatorState],
        n_users: int = 0,
        meta: Optional[dict] = None,
    ) -> None:
        self.label = str(label)
        self.config = dict(config)
        self.children = list(children)
        self.n_users = int(n_users)
        self.meta = dict(meta) if meta else {}

    @property
    def n_reports(self) -> int:
        return self.n_users

    def _check_compatible(self, other: "CompositeAccumulator") -> None:
        if not isinstance(other, CompositeAccumulator):
            raise ProtocolUsageError(
                f"cannot merge {type(other).__name__} into a composite accumulator"
            )
        if self.label != other.label or len(self.children) != len(other.children):
            raise ProtocolUsageError(
                f"cannot merge accumulator {other.label!r} into {self.label!r}"
            )
        if _comparable_config(self.config) != _comparable_config(other.config):
            raise ProtocolUsageError(
                "cannot merge accumulators of differently configured protocols: "
                f"{self.config} != {other.config}"
            )

    def merge(self, other: AccumulatorState) -> "CompositeAccumulator":
        self._check_compatible(other)
        for child, other_child in zip(self.children, other.children):
            child.merge(other_child)
        self.n_users += other.n_users
        return self

    def to_bytes(self) -> bytes:
        arrays = {
            f"child_{index}": pack_child(child.to_bytes())
            for index, child in enumerate(self.children)
        }
        header = {
            "state_kind": self.state_kind,
            "label": self.label,
            "config": self.config,
            "n_users": self.n_users,
            "num_children": len(self.children),
        }
        if self.meta:
            # Written only when present so pre-meta states stay
            # byte-for-byte stable.
            header["meta"] = self.meta
        return pack_blob(header, arrays)

    @classmethod
    def _decode(cls, header: dict, arrays: Dict[str, np.ndarray]) -> "CompositeAccumulator":
        children = [
            AccumulatorState.from_bytes(unpack_child(arrays[f"child_{index}"]))
            for index in range(int(header["num_children"]))
        ]
        return cls(
            label=header["label"],
            config=header["config"],
            children=children,
            n_users=int(header["n_users"]),
            meta=header.get("meta"),
        )


register_state_decoder(CompositeAccumulator.state_kind, CompositeAccumulator._decode)


# --------------------------------------------------------------------- #
# oracle payload (de)serialization
# --------------------------------------------------------------------- #
def _pack_payload(payload: Any, prefix: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Describe one oracle report payload as ``(meta, named arrays)``.

    Imports are deferred so that :mod:`repro.core` never depends on
    :mod:`repro.frequency_oracles` at module load time.
    """
    from repro.frequency_oracles.hrr import HadamardReports
    from repro.frequency_oracles.olh import LocalHashReports

    if isinstance(payload, HadamardReports):
        meta = {"payload_kind": "hadamard", "padded_size": int(payload.padded_size)}
        arrays = {
            f"{prefix}.indices": np.asarray(payload.indices),
            f"{prefix}.values": np.asarray(payload.values),
        }
        return meta, arrays
    if isinstance(payload, LocalHashReports):
        meta = {"payload_kind": "localhash", "num_buckets": int(payload.num_buckets)}
        arrays = {
            f"{prefix}.multipliers": np.asarray(payload.multipliers),
            f"{prefix}.offsets": np.asarray(payload.offsets),
            f"{prefix}.buckets": np.asarray(payload.buckets),
        }
        return meta, arrays
    if isinstance(payload, np.ndarray):
        return {"payload_kind": "array"}, {prefix: payload}
    raise SerializationError(
        f"cannot serialize oracle payload of type {type(payload).__name__}"
    )


def _unpack_payload(meta: dict, arrays: Dict[str, np.ndarray], prefix: str) -> Any:
    """Inverse of :func:`_pack_payload`."""
    from repro.frequency_oracles.hrr import HadamardReports
    from repro.frequency_oracles.olh import LocalHashReports

    kind = meta.get("payload_kind")
    if kind == "hadamard":
        return HadamardReports(
            indices=arrays[f"{prefix}.indices"],
            values=arrays[f"{prefix}.values"],
            padded_size=int(meta["padded_size"]),
        )
    if kind == "localhash":
        return LocalHashReports(
            multipliers=arrays[f"{prefix}.multipliers"],
            offsets=arrays[f"{prefix}.offsets"],
            buckets=arrays[f"{prefix}.buckets"],
            num_buckets=int(meta["num_buckets"]),
        )
    if kind == "array":
        return arrays[prefix]
    raise SerializationError(f"unknown oracle payload kind {kind!r}")


# --------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------- #
#: Registry mapping ``report_kind`` tags to decoders.
_REPORT_DECODERS: Dict[str, Callable[[dict, Dict[str, np.ndarray]], "Report"]] = {}


def register_report_decoder(
    kind: str, decoder: Callable[[dict, Dict[str, np.ndarray]], "Report"]
) -> None:
    """Register a decoder for :meth:`Report.from_bytes` dispatch."""
    _REPORT_DECODERS[str(kind)] = decoder


class Report(abc.ABC):
    """The privatized payload a batch of clients uploads to a server.

    A report contains only randomized data -- each entry individually
    satisfies epsilon-LDP -- plus the bookkeeping a server needs to fold it
    into its accumulator (how many users it covers and, for level-sampled
    protocols, how many landed on each level).
    """

    #: Serialization tag; concrete classes override and register a decoder.
    kind: ClassVar[str] = "abstract"

    #: Number of users whose randomized values this report carries.
    n_users: int

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Serialize with :func:`repro.core.serialization.pack_blob`."""

    @staticmethod
    def from_bytes(data: bytes) -> "Report":
        """Decode any registered report type from its packed bytes."""
        header, arrays = unpack_blob(data)
        kind = header.get("report_kind")
        decoder = _REPORT_DECODERS.get(kind)
        if decoder is None:
            # Every decomposition family serializes through the unified
            # LevelReport layout, so reports of families added after this
            # module (new Decomposition subclasses) decode without having
            # to register anything.  The layout is sniffed strictly (a
            # string tag, a dict levels map, a user count) so corrupt or
            # foreign blobs still fail fast here.
            if (
                isinstance(kind, str)
                and kind
                and isinstance(header.get("levels"), dict)
                and "n_users" in header
            ):
                decoder = LevelReport._decode
            else:
                raise SerializationError(f"unknown report kind {kind!r}")
        try:
            return decoder(header, arrays)
        except SerializationError:
            raise
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            # Same contract as AccumulatorState.from_bytes: inconsistent
            # headers surface as decode errors, not internal exceptions.
            raise SerializationError(f"corrupt {kind!r} report: {exc!r}") from exc


class LevelReport(Report):
    """The one report shape shared by every decomposition family.

    ``family`` is the decomposition tag ("flat", "hierarchical", "haar",
    "grid2d"); ``level_payloads`` maps each level key to the oracle payload
    of the users assigned there, and ``level_user_counts`` is the family's
    bookkeeping array (see
    :class:`~repro.core.decomposition.Decomposition.counts_slot`).

    One codec serves all families: ``family`` (not the class-level
    ``kind``) is the wire tag written as ``report_kind``, the layout is
    the former hierarchical one (``levels`` metadata plus ``level_<key>``
    arrays), and the decoder -- registered under every family tag, with a
    fallback for families added later -- also reads the two legacy
    layouts (``heights`` for Haar, a bare ``payload`` for flat) so
    reports serialized before the unification still load.
    """

    def __init__(
        self,
        family: str,
        level_payloads: Optional[Dict[int, Any]] = None,
        level_user_counts: Optional[np.ndarray] = None,
        n_users: int = 0,
    ) -> None:
        self.family = str(family)
        self.level_payloads: Dict[int, Any] = (
            {} if level_payloads is None else level_payloads
        )
        self.level_user_counts = (
            np.zeros(1, np.int64)
            if level_user_counts is None
            else np.asarray(level_user_counts, dtype=np.int64)
        )
        self.n_users = int(n_users)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LevelReport(family={self.family!r}, "
            f"levels={sorted(self.level_payloads)}, n_users={self.n_users})"
        )

    @property
    def payload(self) -> Any:
        """The single-level oracle payload (flat back-compat accessor)."""
        return self.level_payloads.get(0)

    @property
    def height_payloads(self) -> Dict[int, Any]:
        """Per-detail-height payloads (Haar back-compat alias)."""
        return self.level_payloads

    def to_bytes(self) -> bytes:
        arrays: Dict[str, np.ndarray] = {
            "level_user_counts": np.asarray(self.level_user_counts, dtype=np.int64)
        }
        level_meta: Dict[str, dict] = {}
        for level, payload in sorted(self.level_payloads.items()):
            meta, payload_arrays = _pack_payload(payload, f"level_{level}")
            level_meta[str(level)] = meta
            arrays.update(payload_arrays)
        header = {
            "report_kind": self.family,
            "n_users": int(self.n_users),
            "levels": level_meta,
        }
        return pack_blob(header, arrays)

    @classmethod
    def _decode(cls, header: dict, arrays: Dict[str, np.ndarray]) -> "LevelReport":
        family = header["report_kind"]
        n_users = int(header["n_users"])
        if "levels" in header:
            meta_map, prefix = header["levels"] or {}, "level"
        elif "heights" in header:  # legacy Haar layout
            meta_map, prefix = header["heights"] or {}, "height"
        else:  # legacy flat layout: a single bare payload
            payloads: Dict[int, Any] = {}
            if n_users > 0:
                payloads[0] = _unpack_payload(header["payload"], arrays, "payload")
            return cls(family, payloads, np.asarray([n_users], np.int64), n_users)
        payloads = {
            int(level): _unpack_payload(meta, arrays, f"{prefix}_{int(level)}")
            for level, meta in meta_map.items()
        }
        counts = arrays.get("level_user_counts")
        if counts is None:
            counts = np.asarray([n_users], np.int64)
        return cls(family, payloads, counts, n_users)


def _warn_deprecated_report(name: str) -> None:
    warnings.warn(
        f"{name} is deprecated; every family now uses the unified "
        "LevelReport codec -- construct LevelReport(family=...) directly",
        DeprecationWarning,
        stacklevel=3,
    )


class FlatReport(LevelReport):
    """Deprecated back-compat constructor for flat (whole-domain) reports.

    Use :class:`LevelReport` with ``family="flat"`` instead.
    """

    def __init__(self, payload: Any = None, n_users: int = 0) -> None:
        _warn_deprecated_report("FlatReport")
        payloads = {0: payload} if n_users > 0 else {}
        super().__init__(
            "flat", payloads, np.asarray([int(n_users)], np.int64), n_users
        )


class HierarchicalReport(LevelReport):
    """Deprecated back-compat constructor for hierarchical reports.

    Use :class:`LevelReport` with ``family="hierarchical"`` instead.
    """

    def __init__(
        self,
        level_payloads: Optional[Dict[int, Any]] = None,
        level_user_counts: Optional[np.ndarray] = None,
        n_users: int = 0,
    ) -> None:
        _warn_deprecated_report("HierarchicalReport")
        super().__init__("hierarchical", level_payloads, level_user_counts, n_users)


class HaarReport(LevelReport):
    """Deprecated back-compat constructor for HaarHRR wavelet reports.

    Use :class:`LevelReport` with ``family="haar"`` instead.
    """

    def __init__(
        self,
        height_payloads: Optional[Dict[int, Any]] = None,
        level_user_counts: Optional[np.ndarray] = None,
        n_users: int = 0,
    ) -> None:
        _warn_deprecated_report("HaarReport")
        super().__init__("haar", height_payloads, level_user_counts, n_users)


for _family in ("flat", "hierarchical", "haar", "grid2d"):
    register_report_decoder(_family, LevelReport._decode)


def iter_level_payloads(payloads: Dict[int, Any]):
    """Level/payload pairs in ascending level order.

    Clients build payload dicts level by level, so insertion order is
    almost always already ascending; this reuses the dict's own iteration
    in that case and only falls back to sorting for externally built
    (e.g. deserialized) reports.
    """
    previous: Optional[int] = None
    for level in payloads:
        if previous is not None and level < previous:
            return sorted(payloads.items())
        previous = level
    return payloads.items()


# --------------------------------------------------------------------- #
# client / server roles
# --------------------------------------------------------------------- #
class ProtocolClient(abc.ABC):
    """Stateless user-side encoder of one range-query protocol.

    A client holds only protocol configuration (domain, epsilon, method
    parameters) -- never data -- so a single instance can encode for any
    number of users, and constructing one per device is equally valid.
    """

    def __init__(self, protocol: "RangeQueryProtocol") -> None:
        self._protocol = protocol

    @property
    def protocol(self) -> "RangeQueryProtocol":
        """The protocol configuration this client encodes for."""
        return self._protocol

    @abc.abstractmethod
    def encode_batch(self, items: np.ndarray, rng: RngLike = None) -> Report:
        """Randomize one report per user for a batch of private items.

        Only the returned :class:`Report` may leave the clients; each
        user's entry individually satisfies epsilon-LDP.  An empty batch
        yields an empty report that servers ingest as a no-op.
        """

    def encode(self, item: int, rng: RngLike = None) -> Report:
        """Randomize a single user's item (convenience over a 1-batch)."""
        return self.encode_batch(np.asarray([item]), rng=rng)

    def encode_batches(
        self, items: np.ndarray, batch_size: int, rng: RngLike = None
    ) -> List[Report]:
        """Encode ``items`` as consecutive chunks of ``batch_size`` users.

        The chunking is the transport framing (one :class:`Report` per
        chunk -- what a device fleet uploads and what
        :meth:`ProtocolServer.ingest` consumes); inside each chunk the
        encoding is fully vectorised.  Chunks are encoded sequentially
        against one generator, so the report stream is exactly what the
        equivalent sequence of :meth:`encode_batch` calls would produce
        for the same seed.
        """
        if int(batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        batch_size = int(batch_size)
        rng = ensure_rng(rng)
        items = np.asarray(items)
        return [
            self.encode_batch(items[start : start + batch_size], rng=rng)
            for start in range(0, len(items), batch_size)
        ]

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend the client's oracles compute with."""
        for oracle in getattr(self, "_oracles", {}).values():
            backend = getattr(oracle, "kernel_backend", None)
            if backend:
                return str(backend)
        return "numpy"


class ProtocolServer(abc.ABC):
    """Incremental, mergeable aggregator of one range-query protocol.

    Servers never see raw items: they fold privatized :class:`Report`
    batches into a compact :class:`AccumulatorState` -- ``O(D)`` integer
    sums independent of the number of users for every oracle except SHE,
    whose exact-summation state grows by ``O(D)`` per ingested *batch*
    (see :class:`~repro.frequency_oracles.base.ExactSumAccumulator`) --
    merge exactly with other shards of the same protocol, and can
    finalize into an estimator at any point; further ``ingest`` /
    ``merge`` calls after a ``finalize`` are allowed.
    """

    def __init__(
        self, protocol: "RangeQueryProtocol", state: Optional[AccumulatorState] = None
    ) -> None:
        self._protocol = protocol
        empty = self._empty_state()
        if state is None:
            state = empty
        else:
            if not isinstance(state, CompositeAccumulator):
                raise ProtocolUsageError(
                    f"expected a CompositeAccumulator state, got {type(state).__name__}"
                )
            empty._check_compatible(state)
        self._state = state

    @property
    def protocol(self) -> "RangeQueryProtocol":
        """The protocol configuration this server aggregates for."""
        return self._protocol

    @property
    def state(self) -> CompositeAccumulator:
        """The live accumulator state (shared, not a copy)."""
        return self._state

    @property
    def n_reports(self) -> int:
        """Total number of user reports ingested or merged so far."""
        return self._state.n_reports

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend the server's oracles compute with.

        Purely an execution property -- it is never part of the protocol
        spec or the accumulator state, so shards running different
        backends merge freely.
        """
        for oracle in getattr(self, "_oracles", {}).values():
            backend = getattr(oracle, "kernel_backend", None)
            if backend:
                return str(backend)
        return "numpy"

    @abc.abstractmethod
    def _empty_state(self) -> CompositeAccumulator:
        """A fresh zero-report accumulator for this protocol configuration."""

    @abc.abstractmethod
    def _ingest_one(self, report: Report) -> None:
        """Fold a single report batch into the state."""

    def ingest(self, reports: Union[Report, Iterable[Report]]) -> "ProtocolServer":
        """Fold one report or an iterable of reports into the accumulator."""
        # Fast path: a single report skips the iteration machinery -- this
        # is the per-report hot path of streaming ingestion.
        if isinstance(reports, Report):
            self._ingest_one(reports)
            return self
        ingest_one = self._ingest_one
        for report in reports:
            if not isinstance(report, Report):
                raise ProtocolUsageError(
                    f"ingest expects Report instances, got {type(report).__name__}"
                )
            ingest_one(report)
        return self

    def merge(
        self, other: Union["ProtocolServer", AccumulatorState]
    ) -> "ProtocolServer":
        """Fold another shard's accumulated state into this server.

        ``other`` may be a server of the same protocol configuration or a
        bare :class:`AccumulatorState`.  Merging is exact: any merge order
        over any sharding reproduces single-server ingestion bit-for-bit.
        """
        state = other.state if isinstance(other, ProtocolServer) else other
        self._state.merge(state)
        return self

    @abc.abstractmethod
    def finalize(self) -> "RangeQueryEstimator":
        """Build the estimator for everything aggregated so far."""

    def to_bytes(self) -> bytes:
        """Serialize the accumulator state (protocol spec included)."""
        return self._state.to_bytes()

    def snapshot(self) -> CompositeAccumulator:
        """An independent deep copy of the current accumulator state.

        The snapshot is fully decoupled from the live server: further
        ``ingest`` / ``merge`` calls do not touch it, so it can serve as a
        durable checkpoint or as the base of a lazily merged window (see
        :mod:`repro.engine`).
        """
        return self._state.copy()

    def restore(
        self, state: Union[AccumulatorState, bytes, bytearray, memoryview]
    ) -> "ProtocolServer":
        """Replace the live state with a snapshot of the same configuration.

        ``state`` is a :class:`CompositeAccumulator` (e.g. from
        :meth:`snapshot`) or its packed bytes.  The state is adopted as-is
        (not copied); it must belong to an identically configured protocol.
        """
        if isinstance(state, (bytes, bytearray, memoryview)):
            state = AccumulatorState.from_bytes(bytes(state))
        if not isinstance(state, CompositeAccumulator):
            raise ProtocolUsageError(
                f"expected a CompositeAccumulator state, got {type(state).__name__}"
            )
        self._empty_state()._check_compatible(state)
        self._state = state
        return self

    def _require_reports(self) -> None:
        if self._state.n_reports <= 0:
            raise ProtocolUsageError("cannot finalize a server with zero reports")


# --------------------------------------------------------------------- #
# the generic decomposition engine
# --------------------------------------------------------------------- #
class DecompositionClient(ProtocolClient):
    """The one user-side encoder shared by every decomposition family.

    Driven entirely by the protocol's
    :class:`~repro.core.decomposition.Decomposition`: it validates the
    batch, samples a level per user (or replicates users across all
    levels), maps each level's items to coefficients, privatizes them
    through the per-level oracles and packs everything into a
    :class:`LevelReport`.  Flat, hierarchical, Haar and grid clients are
    thin instantiations of this class.
    """

    def __init__(self, protocol) -> None:
        super().__init__(protocol)
        self._decomposition = protocol.decomposition()
        self._oracles = {
            level: self._decomposition.make_level_oracle(level)
            for level in self._decomposition.levels
        }

    @property
    def decomposition(self):
        """The :class:`~repro.core.decomposition.Decomposition` in use."""
        return self._decomposition

    def encode_batch(self, items: np.ndarray, rng: RngLike = None) -> LevelReport:
        decomposition = self._decomposition
        rng = ensure_rng(rng)
        items = decomposition.validate_items(np.asarray(items))
        n_users = len(items)
        level_user_counts = np.zeros(decomposition.counts_size, dtype=np.int64)
        decomposition.record_total(level_user_counts, n_users)
        payloads: Dict[int, Any] = {}
        if n_users == 0:
            return LevelReport(decomposition.label, payloads, level_user_counts, 0)
        assignments = decomposition.assign_levels(items, rng)
        if assignments is None:
            for level in decomposition.levels:
                level_user_counts[decomposition.counts_slot(level)] = n_users
                payloads[level] = decomposition.encode_level(
                    items, level, self._oracles[level], rng
                )
            return LevelReport(decomposition.label, payloads, level_user_counts, n_users)
        # Single-pass level split: one stable argsort groups the users of
        # every level instead of one O(N) boolean mask per level.  Stable
        # ordering preserves each level's original user order, so the
        # grouped items -- and therefore every downstream rng draw -- are
        # bit-identical to the per-level masking this replaces.
        order = np.argsort(assignments, kind="stable")
        sorted_assignments = assignments[order]
        sorted_items = items[order]
        for level in decomposition.levels:
            start = np.searchsorted(sorted_assignments, level, side="left")
            stop = np.searchsorted(sorted_assignments, level, side="right")
            count = int(stop - start)
            level_user_counts[decomposition.counts_slot(level)] = count
            if count == 0:
                continue
            payloads[level] = decomposition.encode_level(
                sorted_items[start:stop], level, self._oracles[level], rng
            )
        return LevelReport(decomposition.label, payloads, level_user_counts, n_users)


class DecompositionServer(ProtocolServer):
    """The one aggregator shared by every decomposition family.

    Holds a :class:`CompositeAccumulator` with one child oracle accumulator
    per decomposition level; ``ingest`` folds each report's per-level
    payloads into the matching children, and ``finalize`` hands the
    per-level debiased estimates to the decomposition's assembly (which
    applies any consistency hook).  Merging and serialization are entirely
    inherited -- a new protocol family gets sharded aggregation and the CLI
    ``encode``/``aggregate``/``merge`` workflow for free.
    """

    def __init__(self, protocol, state: Optional[AccumulatorState] = None) -> None:
        self._decomposition = protocol.decomposition()
        self._oracles = {
            level: self._decomposition.make_level_oracle(level)
            for level in self._decomposition.levels
        }
        self._child_index = {
            level: index for index, level in enumerate(self._decomposition.levels)
        }
        super().__init__(protocol, state)

    @property
    def decomposition(self):
        """The :class:`~repro.core.decomposition.Decomposition` in use."""
        return self._decomposition

    def _empty_state(self) -> CompositeAccumulator:
        decomposition = self._decomposition
        return CompositeAccumulator(
            decomposition.label,
            {"protocol": self._protocol.spec()},
            [self._oracles[level].make_accumulator() for level in decomposition.levels],
        )

    def _ingest_one(self, report: Report) -> None:
        decomposition = self._decomposition
        if (
            not isinstance(report, LevelReport)
            or report.family != decomposition.label
        ):
            raise ProtocolUsageError(
                f"{decomposition.label} server cannot ingest a "
                f"{getattr(report, 'family', type(report).__name__)} report"
            )
        if report.n_users <= 0:
            return
        oracles = self._oracles
        children = self._state.children
        child_index = self._child_index
        level_user_counts = report.level_user_counts
        for level, payload in iter_level_payloads(report.level_payloads):
            if level not in child_index:
                raise ProtocolUsageError(
                    f"report contains unknown level {level!r} for a "
                    f"{decomposition.label} decomposition"
                )
            oracles[level].accumulate(
                children[child_index[level]],
                payload,
                n_users=int(level_user_counts[decomposition.counts_slot(level)]),
            )
        self._state.n_users += report.n_users

    def finalize(self):
        self._require_reports()
        decomposition = self._decomposition
        level_user_counts = np.zeros(decomposition.counts_size, dtype=np.int64)
        decomposition.record_total(level_user_counts, self._state.n_users)
        level_estimates: Dict[int, np.ndarray] = {}
        for level in decomposition.levels:
            accumulator = self._state.children[self._child_index[level]]
            level_user_counts[decomposition.counts_slot(level)] = accumulator.n_reports
            if accumulator.n_reports > 0:
                level_estimates[level] = self._oracles[level].finalize(accumulator)
        return decomposition.assemble(
            level_estimates, level_user_counts, self._state.n_users
        )


# --------------------------------------------------------------------- #
# rebuilding protocols and servers from serialized state
# --------------------------------------------------------------------- #
def protocol_from_spec(spec: dict):
    """Reconstruct a protocol from the dict produced by ``protocol.spec()``.

    Returns whatever class the registry maps the spec's ``name`` to -- a
    :class:`~repro.core.protocol.RangeQueryProtocol` for the 1-D families,
    a bare :class:`~repro.core.decomposition.DecompositionRoles` protocol
    (e.g. the 2-D grid) otherwise.
    """
    from repro import make_protocol  # deferred: repro imports this module

    spec = dict(spec)
    try:
        name = spec.pop("name")
        domain_size = spec.pop("domain_size")
        epsilon = spec.pop("epsilon")
    except KeyError as exc:
        raise SerializationError(f"protocol spec is missing {exc}") from exc
    kwargs = {key: value for key, value in spec.items() if value is not None}
    return make_protocol(name, domain_size, epsilon, **kwargs)


def load_server(data: bytes) -> ProtocolServer:
    """Rebuild a server (protocol included) from ``server.to_bytes()`` output."""
    state = AccumulatorState.from_bytes(data)
    if not isinstance(state, CompositeAccumulator):
        raise SerializationError(
            f"expected a protocol server state, got {type(state).__name__}"
        )
    spec = state.config.get("protocol")
    if not isinstance(spec, dict):
        raise SerializationError("server state does not embed a protocol spec")
    protocol = protocol_from_spec(spec)
    return protocol.server(state=state)


# --------------------------------------------------------------------- #
# file helpers used by the CLI and the sharded-aggregation example
# --------------------------------------------------------------------- #
def save_report_file(path: str, protocol: "RangeQueryProtocol", report: Report) -> None:
    """Write one encoded report batch plus its protocol spec to ``path``."""
    blob = pack_blob(
        {"file_kind": "report", "protocol": protocol.spec()},
        {"report": pack_child(report.to_bytes())},
    )
    with open(path, "wb") as handle:
        handle.write(blob)


def load_report_bytes(
    data: bytes, source: str = "<bytes>"
) -> Tuple["RangeQueryProtocol", Report]:
    """Decode a report blob as written by :func:`save_report_file`.

    ``source`` labels error messages (a path, ``"<stdin>"``, ...); the
    pipe-friendly twin of :func:`load_report_file`.
    """
    header, arrays = unpack_blob(data)
    if header.get("file_kind") != "report":
        raise SerializationError(f"{source} is not an encoded report file")
    protocol = protocol_from_spec(header["protocol"])
    report = Report.from_bytes(unpack_child(arrays["report"]))
    return protocol, report


def load_report_file(path: str) -> Tuple["RangeQueryProtocol", Report]:
    """Read a file written by :func:`save_report_file`."""
    with open(path, "rb") as handle:
        return load_report_bytes(handle.read(), source=path)


def save_server_file(path: str, server: ProtocolServer) -> None:
    """Write a server's accumulator state to ``path``."""
    with open(path, "wb") as handle:
        handle.write(server.to_bytes())


def load_server_file(path: str) -> ProtocolServer:
    """Rebuild a server from a file written by :func:`save_server_file`."""
    with open(path, "rb") as handle:
        return load_server(handle.read())
