"""Random number generator utilities.

Every randomized component in the library accepts either ``None`` (use a
fresh non-deterministic generator), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralising the coercion logic here keeps
the protocols deterministic and easy to test: passing the same seed to the
same protocol always produces the same reports, aggregates and estimates.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (which
        is returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    This is used by the experiment harness to give every repetition of a
    configuration its own stream while keeping the whole run reproducible
    from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
