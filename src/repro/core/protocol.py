"""Abstract interfaces for LDP range-query protocols.

Every method the paper studies (flat, hierarchical histograms, HaarHRR) is a
*protocol*: a recipe for what each user sends under epsilon-LDP and how the
untrusted aggregator turns the collected reports into an *estimator* that can
answer arbitrary range queries.  The execution model mirrors the real
deployment topology -- many clients, a fleet of aggregation servers:

* :class:`RangeQueryProtocol` is the pure configuration object (domain
  size, privacy budget, method parameters).  It is a factory for the two
  runtime roles: :meth:`RangeQueryProtocol.client` builds the stateless
  user-side encoder (:class:`~repro.core.session.ProtocolClient`, whose
  ``encode`` / ``encode_batch`` emit privatized
  :class:`~repro.core.session.Report` payloads) and
  :meth:`RangeQueryProtocol.server` builds the incremental aggregator
  (:class:`~repro.core.session.ProtocolServer`, whose ``ingest`` folds
  reports into a mergeable, serializable accumulator and whose
  ``finalize`` produces the estimator).  Server shards ``merge`` exactly:
  any sharding of a report stream, combined in any order, finalizes to the
  same estimator as single-server ingestion.
* :meth:`RangeQueryProtocol.run` is a convenience wrapper -- one client,
  one server, one batch -- so scripts and experiments can stay one-liners.
  :meth:`RangeQueryProtocol.simulate_aggregate` produces a statistically
  equivalent estimator directly from the true histogram, the same
  simulation device the paper uses to scale its OUE experiments.
* :class:`RangeQueryEstimator` answers point, range, prefix and quantile
  queries from the aggregated noisy view.

Concrete implementations live in :mod:`repro.flat`, :mod:`repro.hierarchy`
and :mod:`repro.wavelet`; the role interfaces live in
:mod:`repro.core.session`.
"""

from __future__ import annotations

import abc
import warnings
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import InvalidRangeError, ProtocolUsageError
from repro.core.rng import RngLike, ensure_rng
from repro.core.types import Domain, PrivacyParams, RangeSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.session import AccumulatorState, ProtocolClient, ProtocolServer
    from repro.queries.workload import RangeWorkload

RangeLike = Union[RangeSpec, Tuple[int, int]]

#: Workload forms accepted by the batch query methods: an array-native
#: workload object (anything exposing ``lefts``/``rights`` arrays, e.g.
#: :class:`repro.queries.workload.RangeWorkload`), an ``(N, 2)`` integer
#: array, a ``(lefts, rights)`` pair of arrays, or an iterable of
#: :class:`RangeSpec` / ``(left, right)`` tuples.
WorkloadLike = Union["RangeWorkload", np.ndarray, Tuple, Iterable[RangeLike]]


def _as_range(query: RangeLike) -> RangeSpec:
    if isinstance(query, RangeSpec):
        return query
    left, right = query
    return RangeSpec(int(left), int(right))


def as_query_arrays(queries: WorkloadLike) -> Tuple[np.ndarray, np.ndarray]:
    """Coerce any accepted workload form into ``(lefts, rights)`` arrays.

    Duck-types on ``lefts``/``rights`` attributes so :mod:`repro.core`
    never imports :mod:`repro.queries` (which imports this module).  The
    returned arrays are *not* validated here; batch kernels validate the
    whole workload in one vectorised pass.
    """
    if hasattr(queries, "lefts") and hasattr(queries, "rights"):
        return (
            np.asarray(queries.lefts, dtype=np.int64),
            np.asarray(queries.rights, dtype=np.int64),
        )
    if isinstance(queries, np.ndarray):
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise InvalidRangeError(
                f"a workload array must have shape (N, 2), got {queries.shape}"
            )
        arr = queries.astype(np.int64, copy=False)
        return arr[:, 0], arr[:, 1]
    if (
        isinstance(queries, tuple)
        and len(queries) == 2
        and isinstance(queries[0], np.ndarray)
        and isinstance(queries[1], np.ndarray)
    ):
        return (
            np.asarray(queries[0], dtype=np.int64),
            np.asarray(queries[1], dtype=np.int64),
        )
    pairs = []
    for query in queries:
        if isinstance(query, RangeSpec):
            pairs.append(query.as_tuple())
        else:
            # Strict two-element unpacking: a malformed query (e.g. an
            # endpoint array that should have been half of a
            # (lefts, rights) tuple) fails loudly instead of being
            # silently truncated to its first two values.
            left, right = query
            pairs.append((left, right))
    if not pairs:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    return arr[:, 0], arr[:, 1]


def validate_query_arrays(
    lefts: np.ndarray, rights: np.ndarray, domain_size: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot vectorised validation of a workload of closed ranges.

    Checks ``0 <= left <= right`` element-wise (and ``right <
    domain_size`` when a domain bound is given) and returns the endpoints
    as flat ``int64`` arrays.  Shared by the estimator batch kernels and
    :class:`repro.queries.workload.RangeWorkload` so the rules cannot
    diverge.
    """
    lefts = np.asarray(lefts, dtype=np.int64).reshape(-1)
    rights = np.asarray(rights, dtype=np.int64).reshape(-1)
    if lefts.shape != rights.shape:
        raise InvalidRangeError(
            f"lefts and rights must have equal length, got {len(lefts)} vs {len(rights)}"
        )
    if lefts.size:
        if int(lefts.min()) < 0:
            raise InvalidRangeError("range left endpoints must be >= 0")
        if np.any(lefts > rights):
            index = int(np.argmax(lefts > rights))
            raise InvalidRangeError(
                f"range left endpoint {int(lefts[index])} exceeds right "
                f"endpoint {int(rights[index])}"
            )
        if domain_size is not None and int(rights.max()) >= domain_size:
            index = int(np.argmax(rights >= domain_size))
            raise InvalidRangeError(
                f"range [{int(lefts[index])}, {int(rights[index])}] exceeds "
                f"domain of size {domain_size}"
            )
    return lefts, rights


class RangeQueryEstimator(abc.ABC):
    """Aggregated, bias-corrected view of the population held by the server.

    Subclasses must implement :meth:`estimated_frequencies`, returning the
    estimated fractional frequency of every item in the domain.  The default
    implementations of range / prefix / CDF / quantile queries are expressed
    in terms of prefix sums of those frequencies, which is exact for any
    *consistent* estimator (flat, post-processed hierarchical, Haar).
    Subclasses that hold richer structure (e.g. an inconsistent hierarchical
    tree) override :meth:`range_query` to use their native decomposition.
    """

    def __init__(self, domain: Domain) -> None:
        self._domain = domain
        self._prefix_cache: Optional[np.ndarray] = None
        self._monotone_cdf_cache: Optional[np.ndarray] = None

    @property
    def domain(self) -> Domain:
        """The discrete domain the estimator answers queries over."""
        return self._domain

    @property
    def domain_size(self) -> int:
        """Number of items ``D`` in the domain."""
        return self._domain.size

    @abc.abstractmethod
    def estimated_frequencies(self) -> np.ndarray:
        """Estimated fractional frequency of every item (length ``D``)."""

    def _prefix_sums(self) -> np.ndarray:
        """Cached cumulative sums of the estimated frequencies."""
        if self._prefix_cache is None:
            freqs = np.asarray(self.estimated_frequencies(), dtype=np.float64)
            self._prefix_cache = np.concatenate(([0.0], np.cumsum(freqs)))
        return self._prefix_cache

    def _monotone_cdf(self) -> np.ndarray:
        """Cached monotonized CDF used by quantile queries.

        Monotonizing the (possibly noisy, non-monotone) CDF is a valid LDP
        post-processing step; caching it makes repeated quantile queries
        O(log D) instead of O(D) each.
        """
        if self._monotone_cdf_cache is None:
            self._monotone_cdf_cache = np.maximum.accumulate(self.cdf())
        return self._monotone_cdf_cache

    def invalidate_cache(self) -> None:
        """Drop cached prefix sums (call after mutating internal state)."""
        self._prefix_cache = None
        self._monotone_cdf_cache = None

    def point_query(self, item: int) -> float:
        """Estimated frequency of a single item."""
        if item < 0 or item >= self.domain_size:
            raise InvalidRangeError(
                f"item {item} outside domain of size {self.domain_size}"
            )
        return float(self.estimated_frequencies()[item])

    def _validate_query_arrays(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-shot vectorised validation of a workload against the domain."""
        return validate_query_arrays(lefts, rights, self.domain_size)

    def range_query(self, query: RangeLike) -> float:
        """Estimated fraction of users whose item lies in ``[a, b]``."""
        spec = _as_range(query).validate_for_domain(self.domain_size)
        prefix = self._prefix_sums()
        return float(prefix[spec.right + 1] - prefix[spec.left])

    def range_queries_batch(self, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
        """Answer a whole workload of ranges with one prefix-sum gather.

        This is the batch kernel every estimator exposes: ``lefts`` and
        ``rights`` are equal-length integer arrays of inclusive endpoints,
        validated in one vectorised pass, and the answers come back as one
        float array with zero per-query Python work.  Subclasses holding
        richer structure (e.g. an inconsistent hierarchical tree) override
        this with their native vectorised decomposition.
        """
        lefts, rights = self._validate_query_arrays(lefts, rights)
        if not lefts.size:
            return np.zeros(0)
        prefix = self._prefix_sums()
        return prefix[rights + 1] - prefix[lefts]

    def range_queries(self, queries: WorkloadLike) -> np.ndarray:
        """Vectorised evaluation of many range queries.

        Accepts an array-native workload (``RangeWorkload``, an ``(N, 2)``
        array, or a ``(lefts, rights)`` array pair) as well as any iterable
        of :class:`RangeSpec` / ``(left, right)`` tuples; all forms are
        answered by :meth:`range_queries_batch`.
        """
        return self.range_queries_batch(*as_query_arrays(queries))

    def prefix_query(self, item: int) -> float:
        """Estimated fraction of users with item ``<= item``."""
        return self.range_query((0, item))

    def prefix_queries(self, endpoints: Sequence[int]) -> np.ndarray:
        """Vectorised prefix masses ``P[z <= b]`` for an array of endpoints."""
        rights = np.asarray(endpoints, dtype=np.int64).reshape(-1)
        return self.range_queries_batch(np.zeros(rights.size, np.int64), rights)

    def cdf(self) -> np.ndarray:
        """Estimated cumulative distribution function over the whole domain."""
        return self._prefix_sums()[1:].copy()

    def quantile_query(self, phi: float) -> int:
        """Smallest item ``j`` whose estimated prefix mass reaches ``phi``.

        Implements the binary search over prefix queries described in
        Section 4.7 of the paper.  ``phi`` must lie in ``[0, 1]``.  Thin
        wrapper over :meth:`quantile_queries_batch`.
        """
        return int(self.quantile_queries_batch([phi])[0])

    def quantile_queries_batch(self, phis: Sequence[float]) -> np.ndarray:
        """Evaluate an array of quantile queries with one ``searchsorted``.

        ``np.searchsorted`` over the noisy cdf is not safe without
        enforcing monotonicity first; the monotone cdf is cached across
        calls, so a workload of ``Q`` quantiles costs ``O(Q log D)`` total
        with no per-phi Python work.  Returns an ``int64`` array.
        """
        phis = np.asarray(phis, dtype=np.float64).reshape(-1)
        # The negated comparison also catches NaN (for which both `< 0`
        # and `> 1` are False), matching the seed's per-phi check.
        invalid = ~((phis >= 0.0) & (phis <= 1.0))
        if np.any(invalid):
            raise ValueError(f"phi must be in [0, 1], got {phis[invalid][0]}")
        monotone = self._monotone_cdf()
        indices = np.searchsorted(monotone, phis, side="left")
        return np.minimum(indices, self.domain_size - 1).astype(np.int64)

    def quantile_queries(self, phis: Sequence[float]) -> List[int]:
        """Evaluate several quantile queries (list form of the batch kernel)."""
        return self.quantile_queries_batch(phis).tolist()


class RangeQueryProtocol(abc.ABC):
    """Configuration of an LDP range-query mechanism.

    Parameters
    ----------
    domain_size:
        Size ``D`` of the discrete input domain.
    epsilon:
        The local differential privacy budget.
    """

    #: Human-readable name used by the experiment harness ("TreeOUECI", ...).
    name: str = "abstract"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        self._domain = Domain(int(domain_size))
        self._privacy = PrivacyParams(float(epsilon))

    @property
    def domain(self) -> Domain:
        """The discrete input domain."""
        return self._domain

    @property
    def domain_size(self) -> int:
        """Size ``D`` of the input domain."""
        return self._domain.size

    @property
    def privacy(self) -> PrivacyParams:
        """The privacy budget wrapper."""
        return self._privacy

    @property
    def epsilon(self) -> float:
        """The epsilon privacy budget."""
        return self._privacy.epsilon

    # ------------------------------------------------------------------ #
    # client / server factories
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def client(self) -> "ProtocolClient":
        """The stateless user-side encoder for this configuration."""

    @abc.abstractmethod
    def server(self, state: Optional["AccumulatorState"] = None) -> "ProtocolServer":
        """An incremental aggregator, optionally resumed from ``state``.

        ``state`` is an accumulator previously obtained from another
        server's ``state`` property or deserialized with
        :meth:`~repro.core.session.AccumulatorState.from_bytes`; it must
        belong to an identically configured protocol.
        """

    @abc.abstractmethod
    def spec(self) -> dict:
        """JSON-able description sufficient to rebuild this protocol.

        The returned dict always contains ``name`` (the
        ``PROTOCOL_REGISTRY`` handle), ``domain_size`` and ``epsilon``;
        remaining keys are constructor keyword arguments.  Serialized
        reports and accumulator states embed this spec so servers can be
        reconstructed from bytes alone (see
        :func:`repro.core.session.load_server`).
        """

    def run(self, items: np.ndarray, rng: RngLike = None) -> RangeQueryEstimator:
        """Execute the protocol end-to-end on raw private items.

        Each entry of ``items`` is one user's private value.  This is a
        thin wrapper over the streaming roles -- one client encodes the
        whole population, one server ingests the single report batch and
        finalizes -- kept for scripts and experiments that do not need
        sharded or incremental aggregation.
        """
        rng = ensure_rng(rng)
        items = np.asarray(items)
        # encode_batch performs the full domain validation; only the
        # zero-user check lives here so the error matches run()'s contract.
        if items.ndim == 1 and len(items) == 0:
            raise ProtocolUsageError("cannot run the protocol with zero users")
        server = self.server()
        server.ingest(self.client().encode_batch(items, rng=rng))
        return server.finalize()

    def simulate_aggregate(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> RangeQueryEstimator:
        """Execute a statistically equivalent simulation of the protocol.

        ``true_counts`` is the exact histogram of the population.  The
        default implementation materialises the items and calls :meth:`run`;
        subclasses override it with the faster aggregate-level simulations
        described in Section 5 of the paper (e.g. Binomial sampling of the
        aggregator's noisy counts for OUE).  This is the internal driver
        behind :meth:`repro.engine.Engine.simulate`.
        """
        counts = np.asarray(true_counts, dtype=np.int64)
        items = np.repeat(np.arange(len(counts)), counts)
        return self.run(items, rng=ensure_rng(rng))

    def run_simulated(
        self, true_counts: np.ndarray, rng: RngLike = None
    ) -> RangeQueryEstimator:
        """Deprecated alias of :meth:`simulate_aggregate`.

        Superseded by the :mod:`repro.engine` façade
        (:meth:`repro.engine.Engine.simulate`); behavior is unchanged.
        """
        warnings.warn(
            "RangeQueryProtocol.run_simulated is deprecated; use "
            "protocol.simulate_aggregate(...) or the repro.engine façade "
            "(Engine.open(protocol).simulate(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.simulate_aggregate(true_counts, rng=rng)

    @abc.abstractmethod
    def theoretical_range_variance(self, range_length: int, n_users: int) -> float:
        """Upper bound on the variance of a worst-case query of this length.

        Mirrors the paper's Fact 1 (flat), Theorem 4.3 / Eq. (1)-(2)
        (hierarchical) and Eq. (3) (Haar).
        """

    def describe(self) -> str:
        """Single-line description used in experiment reports."""
        return f"{self.name}(D={self.domain_size}, eps={self.epsilon:g})"
