"""Core abstractions shared by every protocol in :mod:`repro`.

This subpackage contains the pieces that the paper's algorithms are built
from but that are not themselves specific to any one mechanism:

* :mod:`repro.core.exceptions` -- the exception hierarchy.
* :mod:`repro.core.rng`        -- deterministic random-generator handling.
* :mod:`repro.core.types`      -- small value types (privacy parameters,
  domains, range specifications) used across the code base.
* :mod:`repro.core.protocol`   -- the abstract ``RangeQueryProtocol`` /
  ``RangeQueryEstimator`` interfaces implemented by the flat, hierarchical
  and wavelet methods.
* :mod:`repro.core.session`    -- the streaming execution roles: the
  stateless ``ProtocolClient`` encoder, the incremental ``ProtocolServer``
  aggregator, the unified ``LevelReport`` payload and the mergeable,
  serializable ``AccumulatorState``, plus the generic
  ``DecompositionClient`` / ``DecompositionServer`` engine.
* :mod:`repro.core.decomposition` -- the unified decomposition core: the
  ``Decomposition`` abstraction (flat / B-adic tree / Haar / 2-D grid
  level structures) and the ``DecomposedRangeQueryProtocol`` base every
  concrete protocol instantiates.  See ``ARCHITECTURE.md``.
* :mod:`repro.core.postprocess` -- the pluggable post-processing layer:
  ``PostProcessor`` steps composed into ``PostPipeline`` objects through
  a string registry (``"clip"``, ``"norm_sub"``, ``"consistency"``, ...)
  and applied by every decomposition's assembly.
* :mod:`repro.core.serialization` -- the pickle-free wire format reports
  and accumulator states use to cross process boundaries.
"""

from repro.core.exceptions import (
    ReproError,
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
    InvalidWindowError,
    ProtocolUsageError,
)
from repro.core.rng import ensure_rng, spawn_rngs
from repro.core.serialization import (
    FORMAT_VERSION,
    SerializationError,
    blob_version,
    pack_blob,
    unpack_blob,
)
from repro.core.types import Domain, PrivacyParams, RangeSpec
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol
from repro.core.session import (
    AccumulatorState,
    CompositeAccumulator,
    DecompositionClient,
    DecompositionServer,
    FlatReport,
    HaarReport,
    HierarchicalReport,
    LevelReport,
    ProtocolClient,
    ProtocolServer,
    Report,
    load_report_file,
    load_server,
    load_server_file,
    protocol_from_spec,
    save_report_file,
    save_server_file,
)
from repro.core.decomposition import (
    BAdicTreeDecomposition,
    DecomposedRangeQueryProtocol,
    Decomposition,
    DecompositionRoles,
    Grid2DDecomposition,
    HaarDecomposition,
    IdentityDecomposition,
    multinomial_level_split,
)
from repro.core.postprocess import (
    PostContext,
    PostPipeline,
    PostProcessor,
    available_pipelines,
    make_pipeline,
    resolve_postprocess,
)

__all__ = [
    "ReproError",
    "InvalidDomainError",
    "InvalidPrivacyBudgetError",
    "InvalidRangeError",
    "InvalidWindowError",
    "ProtocolUsageError",
    "SerializationError",
    "FORMAT_VERSION",
    "blob_version",
    "ensure_rng",
    "spawn_rngs",
    "pack_blob",
    "unpack_blob",
    "Domain",
    "PrivacyParams",
    "RangeSpec",
    "RangeQueryEstimator",
    "RangeQueryProtocol",
    "AccumulatorState",
    "CompositeAccumulator",
    "ProtocolClient",
    "ProtocolServer",
    "Report",
    "LevelReport",
    "FlatReport",
    "HierarchicalReport",
    "HaarReport",
    "DecompositionClient",
    "DecompositionServer",
    "Decomposition",
    "DecompositionRoles",
    "DecomposedRangeQueryProtocol",
    "IdentityDecomposition",
    "BAdicTreeDecomposition",
    "HaarDecomposition",
    "Grid2DDecomposition",
    "multinomial_level_split",
    "PostContext",
    "PostPipeline",
    "PostProcessor",
    "available_pipelines",
    "make_pipeline",
    "resolve_postprocess",
    "protocol_from_spec",
    "load_server",
    "save_report_file",
    "load_report_file",
    "save_server_file",
    "load_server_file",
]
