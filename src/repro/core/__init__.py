"""Core abstractions shared by every protocol in :mod:`repro`.

This subpackage contains the pieces that the paper's algorithms are built
from but that are not themselves specific to any one mechanism:

* :mod:`repro.core.exceptions` -- the exception hierarchy.
* :mod:`repro.core.rng`        -- deterministic random-generator handling.
* :mod:`repro.core.types`      -- small value types (privacy parameters,
  domains, range specifications) used across the code base.
* :mod:`repro.core.protocol`   -- the abstract ``RangeQueryProtocol`` /
  ``RangeQueryEstimator`` interfaces implemented by the flat, hierarchical
  and wavelet methods.
"""

from repro.core.exceptions import (
    ReproError,
    InvalidDomainError,
    InvalidPrivacyBudgetError,
    InvalidRangeError,
    ProtocolUsageError,
)
from repro.core.rng import ensure_rng, spawn_rngs
from repro.core.types import Domain, PrivacyParams, RangeSpec
from repro.core.protocol import RangeQueryEstimator, RangeQueryProtocol

__all__ = [
    "ReproError",
    "InvalidDomainError",
    "InvalidPrivacyBudgetError",
    "InvalidRangeError",
    "ProtocolUsageError",
    "ensure_rng",
    "spawn_rngs",
    "Domain",
    "PrivacyParams",
    "RangeSpec",
    "RangeQueryEstimator",
    "RangeQueryProtocol",
]
