"""Binary wire format for accumulator states and client reports.

Sharded aggregation only works if the intermediate objects -- the reports
clients upload and the sufficient-statistics accumulators servers keep --
can cross process and machine boundaries.  This module defines the single
container format both use:

``MAGIC | <u64 header length> | <JSON header> | <npy arrays, concatenated>``

The JSON header carries small metadata (state kind, protocol spec, report
counts, and -- for the exact summation accumulator -- arbitrary-precision
integer sums, which JSON represents losslessly).  Bulk numeric payloads are
written as standard ``.npy`` blocks in a declared order, so decoding never
needs pickle and the format is stable across Python/numpy versions.

Nested objects (e.g. the hierarchical accumulator's per-level oracle
accumulators) embed each child's packed bytes as a ``uint8`` array, which
keeps the format strictly compositional.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Dict, Mapping, Tuple

import numpy as np

#: Format tag; bump the trailing byte on incompatible layout changes.
MAGIC = b"REPROACC\x01"

_LENGTH = struct.Struct("<Q")


class SerializationError(ValueError):
    """Raised when a byte blob cannot be decoded as a packed state/report."""


def pack_blob(header: dict, arrays: Mapping[str, np.ndarray] = ()) -> bytes:
    """Serialize a JSON-able header plus named numeric arrays to bytes.

    ``header`` must be JSON serializable (Python's ``json`` keeps integer
    values exact at arbitrary precision, which the exact accumulators rely
    on).  ``arrays`` values are written as raw ``.npy`` blocks; object
    dtypes are rejected.
    """
    arrays = dict(arrays or {})
    body = io.BytesIO()
    for name, array in arrays.items():
        np.lib.format.write_array(
            body, np.ascontiguousarray(array), allow_pickle=False
        )
    document = {"header": header, "arrays": list(arrays)}
    encoded = json.dumps(document, sort_keys=True).encode("utf-8")
    return MAGIC + _LENGTH.pack(len(encoded)) + encoded + body.getvalue()


def unpack_blob(data: bytes) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_blob`: return ``(header, arrays)``."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f"expected bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    if not data.startswith(MAGIC):
        raise SerializationError("bad magic: not a packed repro state/report")
    offset = len(MAGIC)
    if len(data) < offset + _LENGTH.size:
        raise SerializationError("truncated blob: missing header length")
    (header_length,) = _LENGTH.unpack_from(data, offset)
    offset += _LENGTH.size
    if len(data) < offset + header_length:
        raise SerializationError("truncated blob: missing header")
    try:
        document = json.loads(data[offset : offset + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError("corrupt header JSON") from exc
    body = io.BytesIO(data[offset + header_length :])
    arrays: Dict[str, np.ndarray] = {}
    for name in document.get("arrays", []):
        try:
            arrays[name] = np.lib.format.read_array(body, allow_pickle=False)
        except Exception as exc:  # numpy raises several internal types here
            raise SerializationError(f"corrupt array block {name!r}") from exc
    return document.get("header", {}), arrays


def pack_child(child_bytes: bytes) -> np.ndarray:
    """View packed child bytes as a ``uint8`` array for nesting in a blob."""
    return np.frombuffer(child_bytes, dtype=np.uint8)


def unpack_child(array: np.ndarray) -> bytes:
    """Recover the packed bytes of a nested child from its ``uint8`` array."""
    return np.asarray(array, dtype=np.uint8).tobytes()
